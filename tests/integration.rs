//! Cross-crate integration tests: SCC layers inside full models, training on
//! the synthetic datasets, and agreement between the kernel implementations
//! end to end.

use dsxplore::data::cifar_like;
use dsxplore::models::{build_model, build_model_with, ConvScheme, Dataset, ModelKind};
use dsxplore::nn::{evaluate, train_epoch, Batch, CrossEntropyLoss, Layer, Sgd};
use dsxplore::scc::SccImplementation;
use dsxplore::tensor::{allclose, Tensor};

/// Pins the `par` runtime to one worker for the whole test binary.
///
/// The thread count is process-global state shared by concurrently running
/// tests, and the DSXplore-Var backward accumulates float gradients through
/// atomics whose ordering depends on the thread schedule — single-threaded
/// execution is what makes the loss values and cross-implementation
/// comparisons below bit-exact across runs and CI machines. Every test in
/// this binary calls this before touching a kernel.
fn pin_single_thread() {
    dsxplore::tensor::set_num_threads(1);
}

fn to_batches(pairs: Vec<(Tensor, Vec<usize>)>) -> Vec<Batch> {
    pairs
        .into_iter()
        .map(|(images, labels)| Batch::new(images, labels))
        .collect()
}

#[test]
fn dsxplore_mobilenet_trains_and_loss_decreases() {
    pin_single_thread();
    let spec = ModelKind::MobileNet
        .spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT)
        .scale_channels(16);
    let mut model = build_model(&spec, 1);
    let dataset = cifar_like(128, 64, 4, 3);
    let train = to_batches(dataset.train.batches(32));
    let test = to_batches(dataset.test.batches(32));
    let loss_fn = CrossEntropyLoss::new();
    let mut sgd = Sgd::with_config(0.05, 0.9, 0.0);

    let first = train_epoch(&mut model, &mut sgd, &loss_fn, &train);
    let mut last = first;
    for _ in 0..3 {
        last = train_epoch(&mut model, &mut sgd, &loss_fn, &train);
    }
    assert!(
        last.loss < first.loss,
        "training loss did not decrease: {} -> {}",
        first.loss,
        last.loss
    );
    let metrics = evaluate(&mut model, &loss_fn, &test);
    assert!(metrics.loss.is_finite());
}

#[test]
fn every_scheme_produces_a_trainable_vgg() {
    pin_single_thread();
    // Full 32x32 resolution so all five VGG pooling stages apply.
    let dataset = cifar_like(48, 16, 1, 5);
    let train = to_batches(dataset.train.batches(32));
    let loss_fn = CrossEntropyLoss::new();
    for scheme in [
        ConvScheme::Origin,
        ConvScheme::DwPw,
        ConvScheme::DwGpw { cg: 2 },
        ConvScheme::DwScc { cg: 2, co: 0.5 },
        ConvScheme::DwScc { cg: 4, co: 0.33 },
    ] {
        let spec = ModelKind::Vgg16
            .spec(Dataset::Cifar10, scheme)
            .scale_channels(16);
        let mut model = build_model(&spec, 2);
        let mut sgd = Sgd::new(0.01);
        let metrics = train_epoch(&mut model, &mut sgd, &loss_fn, &train);
        assert!(
            metrics.loss.is_finite(),
            "{}: non-finite loss",
            scheme.tag()
        );
    }
}

#[test]
fn scc_implementations_agree_inside_a_full_model() {
    pin_single_thread();
    let spec = ModelKind::MobileNet
        .spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT)
        .scale_channels(16);
    let input = Tensor::randn(&[2, 3, 32, 32], 9);
    let mut reference = build_model_with(&spec, 5, SccImplementation::Dsxplore);
    let expected = reference.forward(&input, false);
    for implementation in [
        SccImplementation::PytorchBase,
        SccImplementation::PytorchOpt,
        SccImplementation::DsxploreVar,
    ] {
        let mut model = build_model_with(&spec, 5, implementation);
        let out = model.forward(&input, false);
        assert!(
            allclose(&out, &expected, 1e-3),
            "{implementation:?} diverges from the DSXplore kernel inside a full model"
        );
    }
}

#[test]
fn model_spec_costs_agree_with_built_networks_across_models() {
    pin_single_thread();
    // ResNet is excluded: its projection shortcuts form a parallel branch the
    // flat sequential builder does not materialise (see EXPERIMENTS.md).
    for kind in [ModelKind::Vgg16, ModelKind::MobileNet] {
        let spec = kind
            .spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT)
            .scale_channels(16);
        let mut model = build_model(&spec, 3);
        assert_eq!(model.num_params(), spec.params(), "{}", kind.name());
        assert_eq!(
            model.forward_macs(&[1, 3, 32, 32]),
            spec.macs(),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn gpu_cost_model_reproduces_headline_orderings_end_to_end() {
    pin_single_thread();
    use dsxplore::gpusim::{estimate_training_step, GpuModel};
    let gpu = GpuModel::v100();
    let spec = ModelKind::Vgg16.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
    let base = estimate_training_step(&gpu, &spec, 128, SccImplementation::PytorchBase);
    let opt = estimate_training_step(&gpu, &spec, 128, SccImplementation::PytorchOpt);
    let dsx = estimate_training_step(&gpu, &spec, 128, SccImplementation::Dsxplore);
    assert!(dsx.total_s < opt.total_s && opt.total_s < base.total_s);
    // ImageNet Pytorch-Base exceeds device memory, as in §V-C.
    let imagenet = ModelKind::ResNet50.spec(Dataset::ImageNet, ConvScheme::DSXPLORE_DEFAULT);
    let base_imagenet = estimate_training_step(&gpu, &imagenet, 64, SccImplementation::PytorchBase);
    assert!(!base_imagenet.fits_in_memory);
}
