//! # DSXplore-rs
//!
//! A Rust reproduction of *DSXplore: Optimizing Convolutional Neural Networks
//! via Sliding-Channel Convolutions* (Wang, Feng, Ding — IPDPS 2021).
//!
//! This umbrella crate re-exports the workspace's public API so that examples
//! and downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense `f32` tensors and the parallel runtime.
//! * [`scc`] — the sliding-channel convolution kernels (the paper's core
//!   contribution), the operator-composition baselines, and memory/atomic
//!   instrumentation.
//! * [`nn`] — layers, losses, optimizers and the data-parallel trainer.
//! * [`models`] — VGG16/19, MobileNet, ResNet18/50 builders with pluggable
//!   convolution schemes and analytic FLOP/parameter counting.
//! * [`data`] — synthetic CIFAR-like / ImageNet-like datasets.
//! * [`gpusim`] — the V100-like GPU cost model used to reproduce the paper's
//!   runtime figures without CUDA.
//!
//! ## Quickstart
//!
//! ```
//! use dsxplore::scc::{SccConfig, SlidingChannelConv2d};
//! use dsxplore::tensor::Tensor;
//!
//! // A sliding-channel convolution with 2 channel groups and 50% overlap,
//! // mapping 16 input channels to 32 output channels.
//! let conv = SlidingChannelConv2d::new(SccConfig::new(16, 32, 2, 0.5).unwrap());
//! let input = Tensor::randn(&[1, 16, 8, 8], 42);
//! let output = conv.forward(&input);
//! assert_eq!(output.shape(), &[1, 32, 8, 8]);
//! ```

#![forbid(unsafe_code)]

pub use dsx_core as scc;
pub use dsx_data as data;
pub use dsx_gpusim as gpusim;
pub use dsx_models as models;
pub use dsx_nn as nn;
pub use dsx_tensor as tensor;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_semver_like() {
        let parts: Vec<_> = super::VERSION.split('.').collect();
        assert_eq!(parts.len(), 3);
    }
}
