//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of `rand 0.8`'s API used by the workspace: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over half-open
//! integer and float ranges. The generator is SplitMix64 — statistically
//! solid for test workloads, fully deterministic per seed, and `Send`.
//! Streams do **not** match upstream `rand` bit-for-bit; everything in the
//! workspace only relies on determinism and reasonable uniformity.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, `low..high`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {:?}",
                    self
                );
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {:?}",
                    self
                );
                let span = (self.end - self.start) as u128;
                let offset = (rng.next_u64() as u128 % span) as $t;
                self.start + offset
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {:?}",
                    self
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush when
            // used as a stream, one add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_if_eq(&mut b)).count();
        assert!(same < 8);
    }

    impl StdRng {
        fn next_if_eq(&mut self, other: &mut Self) -> bool {
            self.gen_range(0u64..u64::MAX) == other.gen_range(0u64..u64::MAX)
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn int_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
