//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of `parking_lot`'s API that the workspace actually uses
//! — [`Mutex`] and [`RwLock`] with infallible, non-poisoning lock methods —
//! implemented on top of `std::sync`. Poisoned std locks are recovered
//! transparently, matching `parking_lot`'s "no poisoning" semantics.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`-style infallible locking.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`-style infallible locking.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn const_new_in_static() {
        static L: RwLock<()> = RwLock::new(());
        let _guard = L.write();
    }
}
