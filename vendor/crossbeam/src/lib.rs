//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the two pieces of `crossbeam` the workspace uses:
//!
//! * [`scope`]d threads with the `crossbeam 0.8` calling convention
//!   (`scope(|s| { s.spawn(|_| ...) })` returning a `Result` that is `Err`
//!   when a child thread panicked). Internally a thin wrapper over
//!   `std::thread::scope`, which has been stable since Rust 1.63 and
//!   provides the same non-`'static` borrowing.
//! * [`channel`] — clonable MPMC FIFO channels (`bounded` / `unbounded`)
//!   with blocking, timeout and non-blocking operations, the request queue
//!   of the `dsx-serve` batching engine.

#![warn(missing_docs)]

pub mod channel;

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::{Scope as StdScope, ScopedJoinHandle as StdJoinHandle};

/// A scope for spawning threads that may borrow from the caller's stack.
///
/// Mirrors `crossbeam::thread::Scope`; it is `Copy` so the `|scope|` closure
/// argument can be passed by value into spawned children, matching the
/// `spawn(|_| ...)` call shape crossbeam uses.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope StdScope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: StdJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning `Err` if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope itself (by
    /// value — it is `Copy`) so nested spawns are possible, matching the
    /// crossbeam `|scope| ...` signature at every call site in practice
    /// (`|_|` closures type-check against either form).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(scope)),
        }
    }
}

/// Creates a scope in which threads borrowing the environment can be
/// spawned; all spawned threads are joined before `scope` returns.
///
/// Returns `Err` with the first panic payload if the closure or any
/// not-yet-joined child thread panicked, like `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_see_borrowed_state() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn join_returns_child_value() {
        let doubled = scope(|s| s.spawn(|_| 21 * 2).join().unwrap()).unwrap();
        assert_eq!(doubled, 42);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
