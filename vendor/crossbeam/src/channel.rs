//! Offline stand-in for `crossbeam-channel`.
//!
//! Provides the subset of the `crossbeam::channel` API the workspace uses —
//! the `dsx-serve` request queue and its response channels:
//!
//! * [`bounded`] / [`unbounded`] constructors;
//! * clonable [`Sender`] / [`Receiver`] ends (multi-producer,
//!   multi-consumer, FIFO);
//! * blocking [`Sender::send`] with backpressure on a full bounded queue;
//! * blocking [`Receiver::recv`], deadline-aware [`Receiver::recv_timeout`]
//!   and non-blocking [`Receiver::try_recv`] / [`Sender::try_send`];
//! * disconnect semantics: a send fails once every receiver is gone, a
//!   receive fails once every sender is gone *and* the queue has drained.
//!
//! Internally a `Mutex<VecDeque>` with two condvars (`not_empty`,
//! `not_full`), which matches crossbeam's observable behaviour for the FIFO
//! use-cases here (crossbeam's lock-free internals are a performance detail
//! the serving engine does not depend on — batching amortises queue
//! traffic by design).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every [`Receiver`] is gone; the
/// unsendable message is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: every sender is gone and the queue
/// is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the queue still empty.
    Timeout,
    /// Every sender is gone and the queue is empty.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// Every sender is gone and the queue is empty.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Clonable; the channel disconnects for
/// receivers once the last clone is dropped (and the queue drains).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable; receivers compete for
/// messages (each message is delivered to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded FIFO channel: sends block while `capacity` messages are
/// queued (the serving engine's backpressure). A capacity of 0 is rounded up
/// to 1 (crossbeam's zero-capacity rendezvous channel is not reproduced).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

/// Creates an unbounded FIFO channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while a bounded queue is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .shared
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `value` if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake every blocked receiver so it can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest message, blocking while the queue is empty. Fails
    /// only when the queue is empty *and* every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Receiver::recv`] but gives up once `timeout` has elapsed —
    /// what the serve batcher uses to cap how long a partially-filled batch
    /// waits for more requests.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if timed_out.timed_out() && state.queue.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Dequeues the oldest message if one is ready right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        let disconnected = state.receivers == 0;
        drop(state);
        if disconnected {
            // Wake every blocked sender so it can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn messages_arrive_in_fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_send_blocks_until_a_slot_frees_up() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let handle = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the main thread receives
            drop(tx);
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        handle.join().unwrap();
    }

    #[test]
    fn recv_fails_once_senders_drop_and_queue_drains() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn send_fails_once_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_on_an_empty_channel() {
        let (tx, rx) = unbounded::<u32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_returns_a_message_that_arrives_in_time() {
        let (tx, rx) = bounded(4);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(42));
        handle.join().unwrap();
    }

    #[test]
    fn cloned_receivers_compete_for_messages() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|r| thread::spawn(move || (0..).take_while(|_| r.recv().is_ok()).count()))
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "every message is delivered exactly once");
    }

    #[test]
    fn cloned_senders_keep_the_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
