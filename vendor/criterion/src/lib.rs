//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a minimal benchmark harness with the API surface the workspace's bench
//! files use: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (used with `harness = false` bench targets).
//!
//! Measurements are wall-clock: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints min/median/mean per iteration.
//! There is no statistical analysis, plotting, or result persistence — the
//! goal is API compatibility and honest relative numbers, so the bench
//! suite compiles, runs, and can never silently rot while offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            printed_header: false,
            _criterion: self,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a single parameter's `Display` form, as in
    /// `BenchmarkId::from_parameter(batch_size)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }

    /// Builds an id from a function name plus a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion accepted by [`BenchmarkGroup::bench_function`]: either a
/// prepared [`BenchmarkId`] or a plain string.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    printed_header: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: a short warm-up, then `sample_size` timed
    /// samples of the routine driven through [`Bencher::iter`].
    pub fn bench_function<Id, F>(&mut self, id: Id, mut routine: F) -> &mut Self
    where
        Id: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        if !self.printed_header {
            println!("\n{}", self.name);
            self.printed_header = true;
        }
        let id = id.into_benchmark_id();
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        // Warm-up: one untimed sample populates caches and page tables.
        routine(&mut bencher);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.iterations = 0;
            routine(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
            }
        }
        report(&self.name, &id.name, &mut samples);
        self
    }

    /// Ends the group. Present for API compatibility; all reporting already
    /// happened per benchmark.
    pub fn finish(self) {}
}

fn report(group: &str, bench: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("  {group}/{bench}: no samples collected");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "  {group}/{bench}: min {} | median {} | mean {} ({} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Drives the routine under measurement.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`; the number of inner iterations is
    /// chosen so one sample takes roughly a millisecond.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: run once to pick an iteration count near 1 ms/sample.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed();
        let target = Duration::from_millis(1);
        let iters = if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's historical path.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Registers a list of bench functions under a group name, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($function:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `fn main` for a `harness = false` bench target, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_runs_routine() {
        let mut calls = 0u64;
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_from_parameter_uses_display() {
        assert_eq!(BenchmarkId::from_parameter(64).name, "64");
        assert_eq!(BenchmarkId::new("gemm", "blocked").name, "gemm/blocked");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
