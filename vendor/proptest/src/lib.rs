//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with a `#![proptest_config(...)]` header and
//!   `arg in strategy` bindings;
//! * range strategies (`1usize..24`, `-2.0f32..2.0`, ...) and
//!   [`prop::sample::select`];
//! * [`prop_assert!`] and early `return Ok(())` from a test body.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! regression file: each test runs `cases` deterministic samples (the case
//! index seeds the generator), so failures reproduce exactly across runs and
//! machines — which is what a CI-gated reproduction needs most.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Namespace mirror of proptest's `prop` module (`prop::sample::select`).
pub mod prop {
    /// Strategies that sample from explicit collections.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// block is expanded into a test that runs `config.cases` deterministic
/// samples of the strategies and executes the body for each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::TestRng::deterministic(u64::from(case));
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut runner_rng);
                    )+
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            error
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $( $arg in $strategy ),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case returns an error (reported with the case number) instead of
/// panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            n in 1usize..24,
            x in -2.0f32..2.0,
            seed in 0u64..1000,
        ) {
            prop_assert!((1..24).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(seed < 1000);
        }

        #[test]
        fn select_draws_from_the_list(
            v in prop::sample::select(vec![0.25f64, 0.5, 0.75]),
        ) {
            prop_assert!([0.25, 0.5, 0.75].contains(&v));
        }

        #[test]
        fn early_ok_return_is_supported(n in 0usize..10) {
            if n % 2 == 0 {
                return Ok(());
            }
            prop_assert!(n % 2 == 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 0u32..5) {
            prop_assert!(n < 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strategy = 0usize..1000;
        let a: Vec<usize> = (0..16)
            .map(|case| strategy.sample(&mut TestRng::deterministic(case)))
            .collect();
        let b: Vec<usize> = (0..16)
            .map(|case| strategy.sample(&mut TestRng::deterministic(case)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases should vary");
    }
}
