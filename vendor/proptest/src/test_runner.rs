//! Test-run configuration, deterministic RNG, and case failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        assert!(cases > 0, "a property must run at least one case");
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-case random generator.
///
/// Each case derives its seed purely from the case index, so a failure
/// message like "failed at case 7" reproduces identically on every machine
/// and run — the offline replacement for proptest's regression files.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Generator for one test case. The constant is an arbitrary odd salt
    /// keeping property streams distinct from seeds used elsewhere.
    pub fn deterministic(case: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9).wrapping_add(0xD5)),
        }
    }

    /// Access to the underlying generator for strategies.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A failed property case (from [`prop_assert!`](crate::prop_assert) or an
/// explicit `Err` return).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
