//! Value-generation strategies: half-open ranges and list selection.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value using the deterministic test generator.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`select`]: uniform choice from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// Uniformly selects one of `items`; panics if the list is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires a non-empty list");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.rng_mut().gen_range(0..self.items.len());
        self.items[index].clone()
    }
}
