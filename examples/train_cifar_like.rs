//! Trains a channel-scaled MobileNet on the synthetic CIFAR-like dataset
//! under three DSC schemes (DW+PW, DW+GPW, DW+SCC) and reports the accuracy
//! ordering the paper's Table IV studies.
//!
//! ```sh
//! cargo run --release --example train_cifar_like
//! ```

use dsxplore::data::cifar_like;
use dsxplore::models::{build_model, ConvScheme, Dataset, ModelKind};
use dsxplore::nn::{evaluate, train_epoch, Batch, CrossEntropyLoss, Sgd};

fn to_batches(pairs: Vec<(dsxplore::tensor::Tensor, Vec<usize>)>) -> Vec<Batch> {
    pairs
        .into_iter()
        .map(|(images, labels)| Batch::new(images, labels))
        .collect()
}

fn main() {
    let schemes = [
        ConvScheme::DwPw,
        ConvScheme::DwGpw { cg: 2 },
        ConvScheme::DwScc { cg: 2, co: 0.5 },
    ];
    let dataset = cifar_like(384, 128, 2, 7);
    let train_batches = to_batches(dataset.train.batches(32));
    let test_batches = to_batches(dataset.test.batches(32));
    let epochs = 5;

    println!("Training MobileNet (1/16 width) on the synthetic CIFAR-like dataset");
    println!(
        "{:<20} {:>10} {:>12} {:>10}",
        "Scheme", "MFLOPs", "Params (M)", "Test acc."
    );
    for scheme in schemes {
        let spec = ModelKind::MobileNet
            .spec(Dataset::Cifar10, scheme)
            .scale_channels(16);
        let mut model = build_model(&spec, 11);
        let loss_fn = CrossEntropyLoss::new();
        let mut sgd = Sgd::with_config(0.05, 0.9, 5e-4);
        for epoch in 0..epochs {
            let metrics = train_epoch(&mut model, &mut sgd, &loss_fn, &train_batches);
            eprintln!(
                "  [{}] epoch {}/{}: loss {:.3}, train acc {:.1}%",
                scheme.tag(),
                epoch + 1,
                epochs,
                metrics.loss,
                metrics.accuracy * 100.0
            );
        }
        let test = evaluate(&mut model, &loss_fn, &test_batches);
        println!(
            "{:<20} {:>10.2} {:>12.3} {:>9.1}%",
            scheme.tag(),
            spec.mflops(),
            spec.params_m(),
            test.accuracy * 100.0
        );
    }
    println!(
        "\nExpected ordering (paper Table IV): DW+SCC >= DW+GPW at equal cost, close to DW+PW."
    );
}
