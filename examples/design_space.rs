//! Explores the SCC design space (the `cg` × `co` grid of §V-B) for
//! MobileNet: analytic cost of every setting plus the modelled V100
//! training-step time of the DSXplore implementation, i.e. the
//! accuracy-vs-efficiency trade-off surface DSXplore is meant to expose.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use dsxplore::gpusim::{estimate_training_step, GpuModel};
use dsxplore::models::{ConvScheme, Dataset, ModelKind};
use dsxplore::scc::SccImplementation;

fn main() {
    let gpu = GpuModel::v100();
    let baseline = ModelKind::MobileNet.spec(Dataset::Cifar10, ConvScheme::Origin);
    println!(
        "Baseline DW+PW MobileNet: {:.2} MFLOPs, {:.2}M params",
        baseline.mflops(),
        baseline.params_m()
    );
    println!(
        "\n{:<22} {:>10} {:>12} {:>16} {:>14}",
        "Setting", "MFLOPs", "Params (M)", "FLOP saving (%)", "step time (ms)"
    );
    for cg in [2usize, 4, 8] {
        for co in [0.25, 0.33, 0.5, 0.66, 0.75] {
            let scheme = ConvScheme::DwScc { cg, co };
            let spec = ModelKind::MobileNet.spec(Dataset::Cifar10, scheme);
            let est = estimate_training_step(&gpu, &spec, 128, SccImplementation::Dsxplore);
            println!(
                "{:<22} {:>10.2} {:>12.3} {:>16.1} {:>14.2}",
                scheme.tag(),
                spec.mflops(),
                spec.params_m(),
                100.0 * (1.0 - spec.mflops() / baseline.mflops()),
                est.total_s * 1e3
            );
        }
    }
    println!("\nLarger cg cuts cost roughly proportionally; co changes neither FLOPs nor");
    println!("parameters (it only affects which information each filter sees), which is");
    println!("exactly the design-exploration freedom the paper advertises.");
}
