//! Demonstrates the input-centric backward design (§IV-B): runs both backward
//! kernels on the same layer, checks they produce identical gradients, and
//! reports the atomic-update counters and wall-clock times.
//!
//! ```sh
//! cargo run --release --example backward_atomics
//! ```

use dsxplore::scc::{
    scc_backward_input_centric, scc_backward_output_centric, KernelStats, SccConfig,
};
use dsxplore::tensor::{max_abs_diff, Tensor};
use std::time::Instant;

fn main() {
    let cfg = SccConfig::new(64, 128, 2, 0.5).expect("valid configuration");
    let input = Tensor::randn(&[8, 64, 16, 16], 1);
    let weight = Tensor::randn(&[128, 32], 2);
    let grad_out = Tensor::randn(&[8, 128, 16, 16], 3);

    let out_stats = KernelStats::new();
    let start = Instant::now();
    let output_centric =
        scc_backward_output_centric(&cfg, &input, &weight, &grad_out, Some(&out_stats));
    let out_time = start.elapsed();

    let in_stats = KernelStats::new();
    let start = Instant::now();
    let input_centric =
        scc_backward_input_centric(&cfg, &input, &weight, &grad_out, Some(&in_stats));
    let in_time = start.elapsed();

    println!("Gradient agreement (max abs diff):");
    println!(
        "  grad_input  : {:.2e}",
        max_abs_diff(&output_centric.grad_input, &input_centric.grad_input)
    );
    println!(
        "  grad_weight : {:.2e}",
        max_abs_diff(&output_centric.grad_weight, &input_centric.grad_weight)
    );

    println!(
        "\n{:<28} {:>14} {:>12}",
        "Backward design", "atomic updates", "time (ms)"
    );
    println!(
        "{:<28} {:>14} {:>12.2}",
        "output-centric (DSXplore-Var)",
        out_stats.atomic_updates(),
        out_time.as_secs_f64() * 1e3
    );
    println!(
        "{:<28} {:>14} {:>12.2}",
        "input-centric (DSXplore)",
        in_stats.atomic_updates(),
        in_time.as_secs_f64() * 1e3
    );
    let reduction =
        100.0 * (1.0 - in_stats.atomic_updates() as f64 / out_stats.atomic_updates().max(1) as f64);
    println!("\nAtomic-update reduction: {reduction:.1}% (paper reports >90% on average).");
}
