//! Quickstart: create a sliding-channel convolution, run it forward and
//! backward, and compare it against the operator-composition baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsxplore::scc::{KernelStats, SccConfig, SccImplementation, SlidingChannelConv2d};
use dsxplore::tensor::Tensor;

fn main() {
    // A DSXplore layer: 64 input channels, 128 filters, 2 channel groups,
    // 50% overlap between adjacent filters (the paper's default setting).
    let cfg = SccConfig::new(64, 128, 2, 0.5).expect("valid configuration");
    println!("SCC configuration : {}", cfg.tag());
    println!(
        "  group width     : {} channels per filter",
        cfg.group_width()
    );
    println!(
        "  overlap         : {} channels between adjacent filters",
        cfg.overlap_channels()
    );
    println!("  weight params   : {}", cfg.weight_params());

    let layer = SlidingChannelConv2d::new(cfg);
    println!("  cyclic distance : {}", layer.cycle_map().cyclic_dist());

    // Forward + backward with the DSXplore kernels.
    let input = Tensor::randn(&[8, 64, 16, 16], 42);
    let output = layer.forward(&input);
    println!("\nforward: {:?} -> {:?}", input.shape(), output.shape());

    let grad_out = Tensor::ones(output.shape());
    let grads = layer.backward(&input, &grad_out);
    println!(
        "backward: grad_input {:?}, grad_weight {:?}, grad_bias {:?}",
        grads.grad_input.shape(),
        grads.grad_weight.shape(),
        grads.grad_bias.shape()
    );

    // Every implementation computes the same function; the instrumentation
    // shows why the DSXplore kernels are cheaper.
    println!("\nPer-implementation instrumentation for one forward+backward pass:");
    println!(
        "{:<14} {:>10} {:>16} {:>14} {:>10}",
        "impl", "launches", "bytes material.", "bytes moved", "atomics"
    );
    for implementation in SccImplementation::ALL {
        let l = SlidingChannelConv2d::new(cfg).with_implementation(implementation);
        let out = l.forward(&input);
        let _ = l.backward(&input, &Tensor::ones(out.shape()));
        let stats: &KernelStats = l.stats();
        println!(
            "{:<14} {:>10} {:>16} {:>14} {:>10}",
            implementation.name(),
            stats.kernel_launches(),
            stats.bytes_materialized(),
            stats.bytes_moved(),
            stats.atomic_updates()
        );
    }
}
