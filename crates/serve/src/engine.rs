//! The dynamic micro-batching engine.
//!
//! Many clients submit single-request tensors through clonable
//! [`ServeHandle`]s into one bounded MPMC queue (backpressure: submissions
//! block while the queue is full). A pool of worker threads drains the
//! queue; each worker gathers up to `max_batch` requests — waiting at most
//! `max_wait` after the first one arrives — stacks them into one batched
//! NCHW tensor ([`Tensor::cat_batch`]), runs a **single** [`Layer::infer`]
//! on the shared `Arc` model, and scatters the per-request slices of the
//! output back through per-request response channels
//! ([`Tensor::split_batch`]).
//!
//! This is the serving-side counterpart of the paper's kernel argument:
//! sliding-channel convolution wins by raising the arithmetic intensity of
//! each launch, and micro-batching raises it further by amortising every
//! per-launch cost (weight repacking, GEMM tile setup, allocator traffic)
//! over the whole batch. `infer` takes `&self`, so running a batch needs no
//! lock around the model — concurrency safety is by construction. The only
//! lock in the engine guards the *slot* holding the model `Arc`, and is
//! held just long enough to clone it: that is what makes
//! [`ServeHandle::swap_model`] a zero-drop hot swap — in-flight batches
//! finish on the model they pinned, later batches pick up the replacement.
//!
//! Two response routes exist: the in-process [`ServeHandle::submit`] hands
//! back a [`PendingResponse`] (a one-shot channel), while the network
//! front-end in `dsx-net` uses [`ServeHandle::submit_tagged`], which routes
//! every outcome — output or error — to a caller-owned channel keyed by a
//! request id, so one writer thread can stream responses back to a socket
//! in whatever order batches complete.
//!
//! `max_wait` is dynamic: it lives in an atomic the workers re-read per
//! batch, so [`ServeEngine::set_max_wait`] (or the [`AdaptiveWait`]
//! controller, when [`ServeConfig::adaptive`] is set) retunes a running
//! engine without restarting it.

use crate::adaptive::{AdaptiveWait, AdaptiveWaitConfig, EpochObservation, WaitAdjustment};
use crate::stats::{ServeSnapshot, ServeStats};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use dsx_nn::Layer;
use dsx_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the batching engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a partially-filled batch waits for more requests after its
    /// first one arrived. This is the *initial* value; it can be retuned on
    /// a running engine ([`ServeEngine::set_max_wait`], or automatically
    /// via [`ServeConfig::adaptive`]).
    pub max_wait: Duration,
    /// Bound of the shared request queue; submissions block (backpressure)
    /// while this many requests are already waiting.
    pub queue_capacity: usize,
    /// Worker threads draining the queue. Each runs its own batches, so on
    /// a multi-core host the pool adds parallelism on top of batching.
    pub workers: usize,
    /// When set, the per-request trailing dimensions (`[C, H, W]`) every
    /// submission must carry; mismatches are rejected at `submit` time with
    /// [`ServeError::InvalidRequest`] instead of poisoning a whole batch.
    pub request_dims: Option<Vec<usize>>,
    /// When set, a controller thread retunes `max_wait` each epoch from the
    /// live occupancy and queue-depth stats (see [`AdaptiveWait`]).
    pub adaptive: Option<AdaptiveWaitConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 32,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            request_dims: None,
            adaptive: None,
        }
    }
}

impl ServeConfig {
    /// Sets the largest fused batch (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the batch-formation deadline (builder style).
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the request-queue bound (builder style).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the worker-pool size (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Requires every submission to carry these trailing (`[C, H, W]`)
    /// dimensions (builder style).
    pub fn with_request_dims(mut self, dims: &[usize]) -> Self {
        self.request_dims = Some(dims.to_vec());
        self
    }

    /// Enables the adaptive `max_wait` controller (builder style).
    pub fn with_adaptive(mut self, adaptive: AdaptiveWaitConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

/// Error returned by submissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine's workers are gone (or the batch carrying this request
    /// failed); the request was not served.
    Shutdown,
    /// The submission did not match the engine's declared request shape.
    InvalidRequest(String),
    /// The request's deadline expired while it sat in the queue; it was
    /// shed at dequeue, before batch assembly — never mid-batch — so the
    /// forward pass it would have joined was not wasted on it.
    DeadlineExceeded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => f.write_str("the serving engine has shut down"),
            ServeError::InvalidRequest(why) => write!(f, "invalid serve request: {why}"),
            ServeError::DeadlineExceeded => {
                f.write_str("request deadline expired before batch assembly")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed tagged request: the id the caller supplied plus the served
/// output (or the error that prevented serving it). Delivered on the
/// channel given to [`ServeHandle::submit_tagged`].
#[derive(Debug)]
pub struct TaggedResponse {
    /// The caller's request id, echoed back.
    pub id: u64,
    /// The request's output slice, or why it was not served.
    pub result: Result<Tensor, ServeError>,
}

/// Where a request's outcome goes.
enum Route {
    /// The in-process path: a one-shot channel per request carrying the
    /// outcome (so a shed request can be told *why* it was not served).
    /// Dropping the sender unfulfilled is still an error signal on its own
    /// (the receiver's `recv` fails and maps to `Shutdown`).
    Oneshot(Sender<Result<Tensor, ServeError>>),
    /// The network path: outcomes (success *and* failure) are sent to a
    /// shared per-connection channel, tagged with the request id.
    Tagged {
        id: u64,
        done: Sender<TaggedResponse>,
    },
}

/// A request's response slot. If it is dropped before [`Responder::fulfill`]
/// — the batch panicked, or the queue rejected the send — the tagged route
/// still delivers an explicit error so no network client waits forever.
struct Responder {
    route: Option<Route>,
}

impl Responder {
    fn oneshot(tx: Sender<Result<Tensor, ServeError>>) -> Self {
        Responder {
            route: Some(Route::Oneshot(tx)),
        }
    }

    fn tagged(id: u64, done: Sender<TaggedResponse>) -> Self {
        Responder {
            route: Some(Route::Tagged { id, done }),
        }
    }

    /// Delivers the served output. A receiver that gave up (dropped its
    /// end) is not an engine error.
    fn fulfill(mut self, output: Tensor) {
        match self.route.take() {
            Some(Route::Oneshot(tx)) => {
                let _ = tx.send(Ok(output));
            }
            Some(Route::Tagged { id, done }) => {
                let _ = done.send(TaggedResponse {
                    id,
                    result: Ok(output),
                });
            }
            None => {}
        }
    }

    /// Delivers a typed failure (today: `DeadlineExceeded` from shedding).
    /// Both routes get an explicit answer, so no caller is left waiting.
    fn fail(mut self, err: ServeError) {
        match self.route.take() {
            Some(Route::Oneshot(tx)) => {
                let _ = tx.send(Err(err));
            }
            Some(Route::Tagged { id, done }) => {
                let _ = done.send(TaggedResponse {
                    id,
                    result: Err(err),
                });
            }
            None => {}
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        // An unfulfilled oneshot needs no action: dropping the sender makes
        // the client's `recv` fail, which `PendingResponse::wait` maps to
        // `ServeError::Shutdown`. The tagged route must say so explicitly.
        if let Some(Route::Tagged { id, done }) = self.route.take() {
            let _ = done.send(TaggedResponse {
                id,
                result: Err(ServeError::Shutdown),
            });
        }
    }
}

/// One queued inference request: an NCHW input (usually batch 1, but any
/// batch size — including zero — rides along), an optional deadline, plus
/// its response slot.
struct Request {
    input: Tensor,
    enqueued: Instant,
    /// When set, the instant past which the request must not be served:
    /// workers shed it at dequeue (see [`ServeError::DeadlineExceeded`]).
    deadline: Option<Instant>,
    respond: Responder,
}

impl Request {
    /// Whether the deadline has passed (`false` when none was set).
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }
}

/// The shared model slot: workers take a read lock only long enough to
/// clone the inner `Arc`, so a swap's brief write lock never stalls an
/// in-flight forward pass and every batch runs to completion on whichever
/// model it started with.
type ModelSlot = Arc<RwLock<Arc<dyn Layer>>>;

/// A client-side handle: cheap to clone, safe to use from many threads.
///
/// Dropping every handle *and* the engine's own sender is what lets the
/// workers drain and exit, so drop handles before calling
/// [`ServeEngine::shutdown`].
#[derive(Clone)]
pub struct ServeHandle {
    queue: Sender<Request>,
    request_dims: Option<Arc<[usize]>>,
    model_slot: ModelSlot,
    stats: Arc<ServeStats>,
}

/// An in-flight request; [`PendingResponse::wait`] blocks for its output.
pub struct PendingResponse {
    rx: Receiver<Result<Tensor, ServeError>>,
}

impl PendingResponse {
    /// Blocks until the batched forward pass that carries this request
    /// completes, returning this request's slice of the output — or the
    /// typed reason it was not served (`DeadlineExceeded` when shed,
    /// `Shutdown` when its batch died or the engine is gone).
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)?
    }
}

impl ServeHandle {
    /// The engine's live serving counters (shared with every worker; the
    /// net tier reads these to answer DSXN stats frames).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    fn validate(&self, input: &Tensor) -> Result<(), ServeError> {
        if input.rank() != 4 {
            return Err(ServeError::InvalidRequest(format!(
                "expected a rank-4 NCHW tensor, got rank {}",
                input.rank()
            )));
        }
        if let Some(dims) = self.request_dims.as_deref() {
            if &input.shape()[1..] != dims {
                return Err(ServeError::InvalidRequest(format!(
                    "expected per-sample dimensions {:?}, got {:?}",
                    dims,
                    &input.shape()[1..]
                )));
            }
        }
        Ok(())
    }

    /// Enqueues an inference request, blocking while the queue is full.
    /// `input` must be a rank-4 NCHW tensor (its batch axis may hold any
    /// number of samples, including zero) matching the engine's declared
    /// request dimensions, if any — a mismatch is rejected here, where only
    /// the offending client pays, not the batch it would have poisoned.
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse, ServeError> {
        self.submit_deadline(input, None)
    }

    /// Like [`ServeHandle::submit`], but the request carries a serving
    /// `deadline` (a time budget measured from this call): if it is still
    /// queued when the budget runs out, a worker sheds it at dequeue and
    /// [`PendingResponse::wait`] returns [`ServeError::DeadlineExceeded`].
    /// A request already in a batch is always served — shedding happens
    /// before batch assembly, never mid-batch. A zero budget is shed here,
    /// at admission.
    pub fn submit_deadline(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<PendingResponse, ServeError> {
        self.validate(&input)?;
        if deadline.is_some_and(|budget| budget.is_zero()) {
            self.stats.record_shed(1);
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, rx) = channel::bounded(1);
        self.queue
            .send(Request {
                input,
                enqueued: Instant::now(),
                deadline: deadline.map(|budget| Instant::now() + budget),
                respond: Responder::oneshot(tx),
            })
            .map_err(|_| ServeError::Shutdown)?;
        Ok(PendingResponse { rx })
    }

    /// Enqueues a request whose outcome — the output, a validation
    /// rejection, or a batch failure — is delivered as a [`TaggedResponse`]
    /// carrying `id` on the caller's `done` channel. This call itself never
    /// fails: every path reports through `done`, so a connection's writer
    /// loop has exactly one stream to watch.
    ///
    /// Blocks while the queue is full, like [`ServeHandle::submit`].
    pub fn submit_tagged(&self, id: u64, input: Tensor, done: &Sender<TaggedResponse>) {
        self.submit_tagged_deadline(id, input, None, done);
    }

    /// Like [`ServeHandle::submit_tagged`], but the request carries a
    /// serving `deadline` (a time budget from this call). If the budget
    /// expires while the request is queued, a worker sheds it at dequeue
    /// and `done` receives a typed [`ServeError::DeadlineExceeded`] — the
    /// wire tier turns that into a `DeadlineExceeded` error frame. Like
    /// `submit_tagged`, this never fails: every path reports via `done`.
    pub fn submit_tagged_deadline(
        &self,
        id: u64,
        input: Tensor,
        deadline: Option<Duration>,
        done: &Sender<TaggedResponse>,
    ) {
        if let Err(err) = self.validate(&input) {
            let _ = done.send(TaggedResponse {
                id,
                result: Err(err),
            });
            return;
        }
        if deadline.is_some_and(|budget| budget.is_zero()) {
            self.stats.record_shed(1);
            let _ = done.send(TaggedResponse {
                id,
                result: Err(ServeError::DeadlineExceeded),
            });
            return;
        }
        // On queue failure (engine gone) the request — and its Responder —
        // is dropped, which routes an explicit error to `done`.
        let _ = self.queue.send(Request {
            input,
            enqueued: Instant::now(),
            deadline: deadline.map(|budget| Instant::now() + budget),
            respond: Responder::tagged(id, done.clone()),
        });
    }

    /// Submits and waits: the blocking request/response round trip a client
    /// thread performs.
    pub fn infer(&self, input: Tensor) -> Result<Tensor, ServeError> {
        self.submit(input)?.wait()
    }

    /// Hot-swaps the served model and returns the new swap generation.
    ///
    /// The swap is zero-drop by construction: workers clone the model `Arc`
    /// per batch, so batches already gathered finish on the old model while
    /// every batch formed after the swap runs the new one. No request is
    /// rejected, re-queued or dropped at any point. The old model is freed
    /// once its last in-flight batch completes.
    pub fn swap_model(&self, model: Arc<dyn Layer>) -> u64 {
        // Poisoning is recoverable here by construction: the lock only
        // ever guards a plain `Arc` assignment/clone, so a panicked holder
        // cannot have left the slot mid-update.
        *self
            .model_slot
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = model;
        self.stats.record_swap()
    }

    /// The current swap generation (0 = the model the engine started with).
    pub fn swap_generation(&self) -> u64 {
        self.stats.swap_generation()
    }
}

/// The running engine: owns the worker pool and the serving counters.
pub struct ServeEngine {
    queue: Sender<Request>,
    /// A second receiver on the request queue used only as a depth gauge
    /// (never polled for messages), for the adaptive controller and
    /// [`ServeEngine::queue_depth`].
    depth_probe: Receiver<Request>,
    request_dims: Option<Arc<[usize]>>,
    model_slot: ModelSlot,
    workers: Vec<JoinHandle<()>>,
    controller: Option<JoinHandle<()>>,
    controller_stop: Arc<AtomicBool>,
    max_wait_us: Arc<AtomicU64>,
    stats: Arc<ServeStats>,
    started: Instant,
}

impl ServeEngine {
    /// Spawns the worker pool over a shared model. The model is any
    /// [`Layer`] behind an `Arc` — the `Send + Sync` bound on the trait is
    /// what makes the sharing sound.
    pub fn start(model: Arc<dyn Layer>, config: ServeConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.workers >= 1, "the worker pool needs a thread");
        let (tx, rx) = channel::bounded(config.queue_capacity);
        let stats = Arc::new(ServeStats::new());
        let max_wait_us = Arc::new(AtomicU64::new(config.max_wait.as_micros() as u64));
        stats.set_wait_gauge(config.max_wait);
        let model_slot: ModelSlot = Arc::new(RwLock::new(model));
        let workers = (0..config.workers)
            .map(|i| {
                let rx = rx.clone();
                let slot = Arc::clone(&model_slot);
                let stats = Arc::clone(&stats);
                let max_batch = config.max_batch;
                let max_wait_us = Arc::clone(&max_wait_us);
                // lint: allow(thread) — the engine's long-lived batch
                // workers block on a channel; the compute pool is for
                // finite kernel launches, not request-draining loops.
                std::thread::Builder::new()
                    .name(format!("dsx-serve-worker-{i}"))
                    .spawn(move || worker_loop(&slot, &rx, &stats, max_batch, &max_wait_us))
                    // lint: allow(panic) — at process start, before any
                    // request exists; an engine that cannot get its workers
                    // has nothing useful to degrade to.
                    .expect("spawning a serve worker failed")
            })
            .collect();
        let controller_stop = Arc::new(AtomicBool::new(false));
        let controller = config.adaptive.clone().map(|adaptive| {
            let controller = AdaptiveWait::new(adaptive, config.max_batch);
            let stats = Arc::clone(&stats);
            let depth = rx.clone();
            let wait = Arc::clone(&max_wait_us);
            let stop = Arc::clone(&controller_stop);
            // lint: allow(thread) — one long-lived controller thread that
            // sleeps between epochs; it never does kernel work.
            std::thread::Builder::new()
                .name("dsx-serve-adaptive".to_string())
                .spawn(move || controller_loop(&controller, &stats, &depth, &wait, &stop))
                // lint: allow(panic) — at process start, same argument as
                // the worker spawns above.
                .expect("spawning the adaptive controller failed")
        });
        ServeEngine {
            queue: tx,
            depth_probe: rx,
            request_dims: config.request_dims.map(Arc::from),
            model_slot,
            workers,
            controller,
            controller_stop,
            max_wait_us,
            stats,
            started: Instant::now(),
        }
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            queue: self.queue.clone(),
            request_dims: self.request_dims.clone(),
            model_slot: Arc::clone(&self.model_slot),
            stats: Arc::clone(&self.stats),
        }
    }

    /// Hot-swaps the served model (see [`ServeHandle::swap_model`]).
    pub fn swap_model(&self, model: Arc<dyn Layer>) -> u64 {
        self.handle().swap_model(model)
    }

    /// The current swap generation (0 = the model the engine started with).
    pub fn swap_generation(&self) -> u64 {
        self.stats.swap_generation()
    }

    /// The live serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// A shared handle onto the live counters alone. Unlike a
    /// [`ServeHandle`], holding one does not keep the request queue open,
    /// so a background reader (e.g. a periodic stats printer) can outlive
    /// the engine without stalling its shutdown drain.
    pub fn stats_arc(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Requests currently waiting in the shared queue.
    pub fn queue_depth(&self) -> usize {
        self.depth_probe.len()
    }

    /// The batcher's current `max_wait` (the adaptive controller moves it).
    pub fn max_wait(&self) -> Duration {
        // ORDER: a standalone tuning knob — a torn-in-time read only means
        // one batch forms under the previous deadline.
        Duration::from_micros(self.max_wait_us.load(Ordering::Relaxed))
    }

    /// Retunes the batch-formation deadline on the running engine; workers
    /// pick the new value up at their next batch.
    pub fn set_max_wait(&self, max_wait: Duration) {
        // ORDER: same knob — workers re-read it per batch; no other state
        // rides on this store.
        self.max_wait_us
            .store(max_wait.as_micros() as u64, Ordering::Relaxed); // ORDER: see above
        self.stats.set_wait_gauge(max_wait);
    }

    /// Stops accepting requests and gracefully drains: every request still
    /// in the queue — and every batch already in flight — is served before
    /// the workers exit, then the final serving report is returned.
    /// Outstanding [`ServeHandle`] clones must be dropped first or this
    /// blocks until they are (their owners may still be submitting).
    pub fn shutdown(self) -> ServeSnapshot {
        let ServeEngine {
            queue,
            depth_probe,
            request_dims: _,
            model_slot: _,
            workers,
            controller,
            controller_stop,
            max_wait_us: _,
            stats,
            started,
        } = self;
        // ORDER: a stop flag with no payload — the controller re-reads it
        // every tick and exits; nothing it protects is read afterwards.
        controller_stop.store(true, Ordering::Relaxed);
        if let Some(controller) = controller {
            // A panicked thread must not take shutdown down with it: the
            // snapshot below is still owed to the caller. The join error
            // is logged, not re-raised.
            if controller.join().is_err() {
                eprintln!("dsx-serve: the adaptive controller panicked; continuing shutdown");
            }
        }
        // Closing the engine's sender (once every handle is gone too) makes
        // the workers' `recv` fail only after the queue is empty — the
        // drain guarantee lives in the channel's disconnect semantics.
        drop(queue);
        for worker in workers {
            // Same containment as the controller: a dead worker already
            // dropped its batch's Responders (each client got an error),
            // so the remaining workers and the final report proceed.
            if worker.join().is_err() {
                eprintln!("dsx-serve: a worker panicked; continuing shutdown");
            }
        }
        drop(depth_probe);
        stats.snapshot(started.elapsed())
    }
}

/// One worker: block for a first request, top the batch up until `max_batch`
/// or the `max_wait` deadline (re-read per batch so retuning applies live),
/// run the fused pass, scatter the outputs.
fn worker_loop(
    model_slot: &RwLock<Arc<dyn Layer>>,
    rx: &Receiver<Request>,
    stats: &ServeStats,
    max_batch: usize,
    max_wait_us: &AtomicU64,
) {
    loop {
        // Deadline shedding happens exactly here — at dequeue, before the
        // request joins a batch. Once a request is in `batch` it is always
        // served: a deadline can cut queue time short, never waste a
        // forward pass already committed to.
        let first = loop {
            match rx.recv() {
                Ok(request) => match shed_if_expired(request, stats) {
                    Some(live) => break live,
                    None => continue,
                },
                Err(_) => return, // every sender gone and the queue drained
            }
        };
        // The assembly span opens when the first request arrives and
        // closes once the batch is formed, so a trace shows how long each
        // batch spent topping up against `max_wait`.
        let assemble_span = dsx_obs::span("serve", "serve.assemble");
        let mut batch = vec![first];
        // ORDER: tuning knob read once per batch; a stale deadline is
        // harmless (the controller's next value applies next batch).
        let max_wait = Duration::from_micros(max_wait_us.load(Ordering::Relaxed));
        let deadline = Instant::now() + max_wait;
        while batch.len() < max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(request) => {
                    if let Some(live) = shed_if_expired(request, stats) {
                        batch.push(live);
                    }
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        drop(assemble_span);
        // Pin the current model for this whole batch: clone the inner Arc
        // and release the read lock before running. A concurrent
        // `swap_model` replaces the slot without touching this batch, and
        // a panicking forward pass cannot poison the lock.
        // Poisoning is recoverable: the slot only ever holds a fully
        // assigned `Arc` (writers assign, readers clone — no multi-step
        // state a panic could tear).
        let model = Arc::clone(
            &model_slot
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        // A panicking batch (a model assertion on adversarial input) must
        // not take the worker down with it: contain the unwind, drop the
        // batch — each dropped Responder signals its client (a oneshot's
        // receiver fails; a tagged route gets an explicit error) — and keep
        // serving.
        let batch_len = batch.len();
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(&*model, batch, stats)
        }))
        .is_err()
        {
            stats.record_dropped(batch_len);
            eprintln!("dsx-serve: a batch panicked; its requests were dropped");
        }
    }
}

/// Sheds `request` if its deadline has passed: the caller gets a typed
/// [`ServeError::DeadlineExceeded`] and the shed counter moves. Returns the
/// request untouched when it is still live.
fn shed_if_expired(request: Request, stats: &ServeStats) -> Option<Request> {
    if request.expired(Instant::now()) {
        stats.record_shed(1);
        request.respond.fail(ServeError::DeadlineExceeded);
        None
    } else {
        Some(request)
    }
}

/// The adaptive controller: once per epoch, fold the counters' movement and
/// the instantaneous queue depth into an [`EpochObservation`] and let
/// [`AdaptiveWait::step`] retune the shared wait.
fn controller_loop(
    controller: &AdaptiveWait,
    stats: &ServeStats,
    depth: &Receiver<Request>,
    max_wait_us: &AtomicU64,
    stop: &AtomicBool,
) {
    let epoch = controller.config().epoch;
    let tick = epoch
        .min(Duration::from_millis(5))
        .max(Duration::from_micros(100));
    let mut last_batches = stats.batches();
    let mut last_requests = stats.requests();
    // ORDER: plain stop flag — the only consequence of a late read is one
    // extra tick of sleep; nothing is published through it.
    while !stop.load(Ordering::Relaxed) {
        // Sleep the epoch in small ticks so shutdown is prompt even with
        // long epochs.
        let epoch_end = Instant::now() + epoch;
        while Instant::now() < epoch_end {
            // ORDER: same stop flag as the loop condition above
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(tick);
        }
        let batches = stats.batches();
        let requests = stats.requests();
        let obs = EpochObservation {
            batches: batches - last_batches,
            requests: requests - last_requests,
            queue_depth: depth.len(),
        };
        last_batches = batches;
        last_requests = requests;
        // ORDER: the controller is this knob's only writer, so its own
        // read-modify-write sequence is race-free; workers tolerate any
        // staleness (see `max_wait`).
        let current = Duration::from_micros(max_wait_us.load(Ordering::Relaxed));
        let (next, adjustment) = controller.step(obs, current);
        if adjustment != WaitAdjustment::Held {
            max_wait_us.store(next.as_micros() as u64, Ordering::Relaxed); // ORDER: see load above
            stats.set_wait_gauge(next);
            stats.record_adaptive(adjustment == WaitAdjustment::Raised);
        }
    }
}

/// Stacks a gathered batch, runs the single shared forward pass, and routes
/// each request's output slice back to its caller.
fn run_batch(model: &dyn Layer, batch: Vec<Request>, stats: &ServeStats) {
    let _span = dsx_obs::span_arg("serve", "serve.batch", "batch", batch.len() as u64);
    let sizes: Vec<usize> = batch.iter().map(|r| r.input.dim(0)).collect();
    let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
    let stacked = Tensor::cat_batch(&inputs);
    let output = model.infer(&stacked);
    let parts = output.split_batch(&sizes);
    stats.record_batch(batch.len());
    for (request, part) in batch.into_iter().zip(parts) {
        stats.record_latency(request.enqueued.elapsed());
        request.respond.fulfill(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_nn::{GlobalAvgPool, Linear, ReLU, Sequential};

    /// A tiny model: [N, 2, 4, 4] -> [N, 3] logits.
    fn tiny_model() -> Arc<dyn Layer> {
        Arc::new(
            Sequential::new("tiny-serve")
                .push(ReLU::new())
                .push(GlobalAvgPool::new())
                .push(Linear::new(2, 3, 7)),
        )
    }

    fn request(seed: u64) -> Tensor {
        Tensor::randn(&[1, 2, 4, 4], seed)
    }

    #[test]
    fn single_request_round_trips_within_the_wait_deadline() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_wait(Duration::from_millis(1)),
        );
        let handle = engine.handle();
        let out = handle.infer(request(1)).unwrap();
        assert_eq!(out.shape(), &[1, 3]);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn burst_of_requests_is_fused_into_batches() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(4)
                .with_max_wait(Duration::from_millis(50)),
        );
        let handle = engine.handle();
        let pending: Vec<_> = (0..8)
            .map(|i| handle.submit(request(i as u64)).unwrap())
            .collect();
        for p in pending {
            assert_eq!(p.wait().unwrap().shape(), &[1, 3]);
        }
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 8);
        assert!(
            snap.batches < 8,
            "a burst must fuse into fewer forward passes, got {} batches",
            snap.batches
        );
        assert!(snap.max_batch_occupancy > 1);
        assert!(snap.mean_batch_occupancy > 1.0);
    }

    #[test]
    fn batched_outputs_match_direct_inference() {
        let model = tiny_model();
        let engine = ServeEngine::start(
            Arc::clone(&model),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(8)
                .with_max_wait(Duration::from_millis(20)),
        );
        let handle = engine.handle();
        let inputs: Vec<Tensor> = (0..6).map(|i| request(100 + i as u64)).collect();
        let pending: Vec<_> = inputs
            .iter()
            .map(|input| handle.submit(input.clone()).unwrap())
            .collect();
        for (input, p) in inputs.iter().zip(pending) {
            let served = p.wait().unwrap();
            let direct = model.infer(input);
            assert!(dsx_tensor::allclose(&served, &direct, 1e-6));
        }
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn multi_sample_and_zero_sample_requests_ride_along() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let wide = handle.submit(Tensor::randn(&[3, 2, 4, 4], 5)).unwrap();
        // A zero-size batch must flow through stacking, the kernels and the
        // scatter without tripping any chunk math.
        let empty = handle.submit(Tensor::zeros(&[0, 2, 4, 4])).unwrap();
        assert_eq!(wide.wait().unwrap().shape(), &[3, 3]);
        assert_eq!(empty.wait().unwrap().shape(), &[0, 3]);
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn declared_request_dims_reject_mismatches_at_submit_time() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_request_dims(&[2, 4, 4]),
        );
        let handle = engine.handle();
        assert!(matches!(
            handle.submit(Tensor::zeros(&[1, 2, 5, 5])),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            handle.submit(Tensor::zeros(&[4])),
            Err(ServeError::InvalidRequest(_))
        ));
        // Conforming requests (any batch size) still flow.
        assert_eq!(handle.infer(request(3)).unwrap().shape(), &[1, 3]);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 1, "rejected submissions never enqueue");
    }

    #[test]
    fn a_poison_batch_fails_its_requests_but_not_the_engine() {
        // No declared request dims, so a bad shape only surfaces inside the
        // worker: [1, 3, 4, 4] sails through ReLU and GlobalAvgPool and
        // panics in Linear's feature check, however it was batched. The
        // affected client must see an error, later requests must still be
        // served, and shutdown must not observe a dead worker.
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let bad = handle.submit(Tensor::zeros(&[1, 3, 4, 4])).unwrap();
        assert_eq!(bad.wait(), Err(ServeError::Shutdown));
        // The worker survived the poison batch and keeps serving.
        assert_eq!(handle.infer(request(2)).unwrap().shape(), &[1, 3]);
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn shutdown_reports_queue_latency() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        for i in 0..4 {
            handle.infer(request(i)).unwrap();
        }
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 4);
        assert!(snap.throughput_rps > 0.0);
        assert!(snap.max_latency_us as f64 >= snap.mean_latency_us);
        assert!(snap.p50_latency_us <= snap.p99_latency_us);
        assert!(snap.p99_latency_us <= snap.max_latency_us);
    }

    #[test]
    fn submissions_fail_cleanly_after_shutdown() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        // Workers only exit once every sender is gone, so test the client
        // side of the contract: a handle whose engine (and sibling handles)
        // are gone gets `Shutdown`, not a hang or a panic.
        let probe = handle.clone();
        drop(handle);
        let rx_dead = {
            let engine_queue_gone = probe.submit(request(1)).unwrap();
            engine_queue_gone.wait().unwrap()
        };
        assert_eq!(rx_dead.shape(), &[1, 3]);
        drop(probe);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_every_queued_request() {
        // Queue up more work than one slow-waiting worker has started on,
        // drop the handle, and shut down: every response must still arrive
        // — the drain guarantee.
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(2)
                .with_queue_capacity(64)
                .with_max_wait(Duration::from_millis(1)),
        );
        let handle = engine.handle();
        let pending: Vec<_> = (0..24)
            .map(|i| handle.submit(request(i as u64)).unwrap())
            .collect();
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 24, "shutdown must drain the queue");
        for p in pending {
            assert_eq!(p.wait().unwrap().shape(), &[1, 3]);
        }
    }

    #[test]
    fn tagged_submissions_route_everything_through_one_channel() {
        let model = tiny_model();
        let engine = ServeEngine::start(
            Arc::clone(&model),
            ServeConfig::default()
                .with_workers(1)
                .with_request_dims(&[2, 4, 4]),
        );
        let handle = engine.handle();
        let (done_tx, done_rx) = channel::unbounded();
        // Two good requests and one shape reject, interleaved ids.
        handle.submit_tagged(7, request(1), &done_tx);
        handle.submit_tagged(9, Tensor::zeros(&[1, 9, 9, 9]), &done_tx);
        handle.submit_tagged(8, request(2), &done_tx);
        let mut ok = Vec::new();
        let mut rejected = Vec::new();
        for _ in 0..3 {
            let response = done_rx.recv().unwrap();
            match response.result {
                Ok(output) => {
                    assert_eq!(output.shape(), &[1, 3]);
                    ok.push(response.id);
                }
                Err(ServeError::InvalidRequest(_)) => rejected.push(response.id),
                Err(other) => panic!("unexpected error for id {}: {other}", response.id),
            }
        }
        ok.sort_unstable();
        assert_eq!(ok, vec![7, 8]);
        assert_eq!(rejected, vec![9]);
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn tagged_requests_in_a_poison_batch_get_explicit_errors() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let (done_tx, done_rx) = channel::unbounded();
        // Sails through validation (no declared dims) but panics in Linear.
        handle.submit_tagged(42, Tensor::zeros(&[1, 3, 4, 4]), &done_tx);
        let response = done_rx.recv().unwrap();
        assert_eq!(response.id, 42);
        assert_eq!(response.result.unwrap_err(), ServeError::Shutdown);
        // The worker is still alive for tagged traffic afterwards.
        handle.submit_tagged(43, request(5), &done_tx);
        let response = done_rx.recv().unwrap();
        assert_eq!(response.id, 43);
        assert!(response.result.is_ok());
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn set_max_wait_retunes_the_running_engine() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_wait(Duration::from_millis(2)),
        );
        assert_eq!(engine.max_wait(), Duration::from_millis(2));
        engine.set_max_wait(Duration::from_micros(137));
        assert_eq!(engine.max_wait(), Duration::from_micros(137));
        let handle = engine.handle();
        // Requests still round-trip under the retuned deadline.
        assert_eq!(handle.infer(request(1)).unwrap().shape(), &[1, 3]);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.max_wait_us, 137);
    }

    #[test]
    fn swap_model_switches_outputs_and_bumps_the_generation() {
        let v1 = tiny_model();
        let v2: Arc<dyn Layer> = Arc::new(
            Sequential::new("tiny-serve-v2")
                .push(ReLU::new())
                .push(GlobalAvgPool::new())
                .push(Linear::new(2, 3, 99)), // different seed => different weights
        );
        let engine = ServeEngine::start(Arc::clone(&v1), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let input = request(1);
        let before = handle.infer(input.clone()).unwrap();
        assert!(dsx_tensor::allclose(&before, &v1.infer(&input), 1e-6));
        assert_eq!(engine.swap_generation(), 0);
        assert_eq!(handle.swap_model(Arc::clone(&v2)), 1);
        assert_eq!(engine.swap_generation(), 1);
        let after = handle.infer(input.clone()).unwrap();
        assert!(dsx_tensor::allclose(&after, &v2.infer(&input), 1e-6));
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.swap_generation, 1);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.dropped_requests, 0);
    }

    #[test]
    fn dropped_requests_counter_tracks_poison_batches() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let bad = handle.submit(Tensor::zeros(&[1, 3, 4, 4])).unwrap();
        assert_eq!(bad.wait(), Err(ServeError::Shutdown));
        assert_eq!(handle.infer(request(2)).unwrap().shape(), &[1, 3]);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.dropped_requests, 1);
        assert_eq!(snap.requests, 1, "the poison request never completed");
        assert!(format!("{snap}").contains("DROPPED 1 requests"));
    }

    /// An identity layer that sleeps per forward pass — lets tests pin a
    /// worker down long enough for queued deadlines to expire.
    struct SlowIdentity {
        delay: Duration,
    }

    impl Layer for SlowIdentity {
        fn name(&self) -> String {
            "slow-identity".to_string()
        }

        fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
            self.infer(input)
        }

        fn infer(&self, input: &Tensor) -> Tensor {
            std::thread::sleep(self.delay);
            input.clone()
        }

        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            grad_output.clone()
        }

        fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
            input_shape.to_vec()
        }
    }

    #[test]
    fn queued_requests_past_their_deadline_are_shed_with_a_typed_error() {
        // One worker, batch size 1, a 60 ms model: the first request pins
        // the worker, so the second (5 ms budget) is long expired when the
        // worker returns to the queue — it must be shed at dequeue, never
        // served, and told so with `DeadlineExceeded`.
        let engine = ServeEngine::start(
            Arc::new(SlowIdentity {
                delay: Duration::from_millis(60),
            }),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_max_wait(Duration::ZERO),
        );
        let handle = engine.handle();
        let pinned = handle.submit(request(1)).unwrap();
        let doomed = handle
            .submit_deadline(request(2), Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(pinned.wait().unwrap().shape(), &[1, 2, 4, 4]);
        assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
        // The worker is alive and serving after the shed.
        assert!(handle.infer(request(3)).is_ok());
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.shed_requests, 1);
        assert_eq!(snap.dropped_requests, 0, "a shed is not a drop");
        assert_eq!(snap.requests, 2, "the shed request never joined a batch");
        assert!(format!("{snap}").contains("SHED 1 requests past deadline"));
    }

    #[test]
    fn generous_deadlines_never_shed() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        for i in 0..8 {
            let out = handle
                .submit_deadline(request(i), Some(Duration::from_secs(30)))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(out.shape(), &[1, 3]);
        }
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.shed_requests, 0);
        assert_eq!(snap.requests, 8);
    }

    #[test]
    fn zero_budget_is_shed_at_admission() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        assert_eq!(
            handle
                .submit_deadline(request(1), Some(Duration::ZERO))
                .err(),
            Some(ServeError::DeadlineExceeded)
        );
        let (done_tx, done_rx) = channel::unbounded();
        handle.submit_tagged_deadline(11, request(2), Some(Duration::ZERO), &done_tx);
        let response = done_rx.recv().unwrap();
        assert_eq!(response.id, 11);
        assert_eq!(response.result.unwrap_err(), ServeError::DeadlineExceeded);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.shed_requests, 2);
        assert_eq!(snap.requests, 0);
    }

    #[test]
    fn tagged_deadline_sheds_route_through_the_done_channel() {
        let engine = ServeEngine::start(
            Arc::new(SlowIdentity {
                delay: Duration::from_millis(60),
            }),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_max_wait(Duration::ZERO),
        );
        let handle = engine.handle();
        let (done_tx, done_rx) = channel::unbounded();
        handle.submit_tagged(1, request(1), &done_tx);
        handle.submit_tagged_deadline(2, request(2), Some(Duration::from_millis(5)), &done_tx);
        let mut served = Vec::new();
        let mut shed = Vec::new();
        for _ in 0..2 {
            let response = done_rx.recv().unwrap();
            match response.result {
                Ok(_) => served.push(response.id),
                Err(ServeError::DeadlineExceeded) => shed.push(response.id),
                Err(other) => panic!("unexpected error for id {}: {other}", response.id),
            }
        }
        assert_eq!(served, vec![1]);
        assert_eq!(shed, vec![2]);
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn queue_depth_probe_reports_waiting_requests() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        assert_eq!(engine.queue_depth(), 0);
        // (A non-zero depth is racy to observe with a live worker; the
        // adaptive integration test exercises that under saturation.)
        engine.shutdown();
    }
}
