//! The dynamic micro-batching engine.
//!
//! Many clients submit single-request tensors through clonable
//! [`ServeHandle`]s into one bounded MPMC queue (backpressure: submissions
//! block while the queue is full). A pool of worker threads drains the
//! queue; each worker gathers up to `max_batch` requests — waiting at most
//! `max_wait` after the first one arrives — stacks them into one batched
//! NCHW tensor ([`Tensor::cat_batch`]), runs a **single** [`Layer::infer`]
//! on the shared `Arc` model, and scatters the per-request slices of the
//! output back through per-request response channels
//! ([`Tensor::split_batch`]).
//!
//! This is the serving-side counterpart of the paper's kernel argument:
//! sliding-channel convolution wins by raising the arithmetic intensity of
//! each launch, and micro-batching raises it further by amortising every
//! per-launch cost (weight repacking, GEMM tile setup, allocator traffic)
//! over the whole batch. `infer` takes `&self`, so the engine needs no lock
//! around the model — concurrency safety is by construction.

use crate::stats::{ServeSnapshot, ServeStats};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use dsx_nn::Layer;
use dsx_tensor::Tensor;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the batching engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a partially-filled batch waits for more requests after its
    /// first one arrived.
    pub max_wait: Duration,
    /// Bound of the shared request queue; submissions block (backpressure)
    /// while this many requests are already waiting.
    pub queue_capacity: usize,
    /// Worker threads draining the queue. Each runs its own batches, so on
    /// a multi-core host the pool adds parallelism on top of batching.
    pub workers: usize,
    /// When set, the per-request trailing dimensions (`[C, H, W]`) every
    /// submission must carry; mismatches are rejected at `submit` time with
    /// [`ServeError::InvalidRequest`] instead of poisoning a whole batch.
    pub request_dims: Option<Vec<usize>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 32,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            request_dims: None,
        }
    }
}

impl ServeConfig {
    /// Sets the largest fused batch (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the batch-formation deadline (builder style).
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the request-queue bound (builder style).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the worker-pool size (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Requires every submission to carry these trailing (`[C, H, W]`)
    /// dimensions (builder style).
    pub fn with_request_dims(mut self, dims: &[usize]) -> Self {
        self.request_dims = Some(dims.to_vec());
        self
    }
}

/// Error returned by submissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine's workers are gone (or the batch carrying this request
    /// failed); the request was not served.
    Shutdown,
    /// The submission did not match the engine's declared request shape.
    InvalidRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => f.write_str("the serving engine has shut down"),
            ServeError::InvalidRequest(why) => write!(f, "invalid serve request: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued inference request: an NCHW input (usually batch 1, but any
/// batch size — including zero — rides along) plus its response channel.
struct Request {
    input: Tensor,
    enqueued: Instant,
    respond: Sender<Tensor>,
}

/// A client-side handle: cheap to clone, safe to use from many threads.
///
/// Dropping every handle *and* the engine's own sender is what lets the
/// workers drain and exit, so drop handles before calling
/// [`ServeEngine::shutdown`].
#[derive(Clone)]
pub struct ServeHandle {
    queue: Sender<Request>,
    request_dims: Option<Arc<[usize]>>,
}

/// An in-flight request; [`PendingResponse::wait`] blocks for its output.
pub struct PendingResponse {
    rx: Receiver<Tensor>,
}

impl PendingResponse {
    /// Blocks until the batched forward pass that carries this request
    /// completes, returning this request's slice of the output.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)
    }
}

impl ServeHandle {
    /// Enqueues an inference request, blocking while the queue is full.
    /// `input` must be a rank-4 NCHW tensor (its batch axis may hold any
    /// number of samples, including zero) matching the engine's declared
    /// request dimensions, if any — a mismatch is rejected here, where only
    /// the offending client pays, not the batch it would have poisoned.
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse, ServeError> {
        if input.rank() != 4 {
            return Err(ServeError::InvalidRequest(format!(
                "expected a rank-4 NCHW tensor, got rank {}",
                input.rank()
            )));
        }
        if let Some(dims) = self.request_dims.as_deref() {
            if &input.shape()[1..] != dims {
                return Err(ServeError::InvalidRequest(format!(
                    "expected per-sample dimensions {:?}, got {:?}",
                    dims,
                    &input.shape()[1..]
                )));
            }
        }
        let (tx, rx) = channel::bounded(1);
        self.queue
            .send(Request {
                input,
                enqueued: Instant::now(),
                respond: tx,
            })
            .map_err(|_| ServeError::Shutdown)?;
        Ok(PendingResponse { rx })
    }

    /// Submits and waits: the blocking request/response round trip a client
    /// thread performs.
    pub fn infer(&self, input: Tensor) -> Result<Tensor, ServeError> {
        self.submit(input)?.wait()
    }
}

/// The running engine: owns the worker pool and the serving counters.
pub struct ServeEngine {
    queue: Sender<Request>,
    request_dims: Option<Arc<[usize]>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServeStats>,
    started: Instant,
}

impl ServeEngine {
    /// Spawns the worker pool over a shared model. The model is any
    /// [`Layer`] behind an `Arc` — the `Send + Sync` bound on the trait is
    /// what makes the sharing sound.
    pub fn start(model: Arc<dyn Layer>, config: ServeConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.workers >= 1, "the worker pool needs a thread");
        let (tx, rx) = channel::bounded(config.queue_capacity);
        let stats = Arc::new(ServeStats::new());
        let workers = (0..config.workers)
            .map(|i| {
                let rx = rx.clone();
                let model = Arc::clone(&model);
                let stats = Arc::clone(&stats);
                let (max_batch, max_wait) = (config.max_batch, config.max_wait);
                std::thread::Builder::new()
                    .name(format!("dsx-serve-worker-{i}"))
                    .spawn(move || worker_loop(&*model, &rx, &stats, max_batch, max_wait))
                    .expect("spawning a serve worker failed")
            })
            .collect();
        ServeEngine {
            queue: tx,
            request_dims: config.request_dims.map(Arc::from),
            workers,
            stats,
            started: Instant::now(),
        }
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            queue: self.queue.clone(),
            request_dims: self.request_dims.clone(),
        }
    }

    /// The live serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Stops accepting requests, waits for the workers to drain everything
    /// still queued, and returns the final serving report. Outstanding
    /// [`ServeHandle`] clones must be dropped first or this blocks until
    /// they are.
    pub fn shutdown(self) -> ServeSnapshot {
        let ServeEngine {
            queue,
            request_dims: _,
            workers,
            stats,
            started,
        } = self;
        drop(queue);
        for worker in workers {
            worker.join().expect("serve worker panicked");
        }
        stats.snapshot(started.elapsed())
    }
}

/// One worker: block for a first request, top the batch up until `max_batch`
/// or the `max_wait` deadline, run the fused pass, scatter the outputs.
fn worker_loop(
    model: &dyn Layer,
    rx: &Receiver<Request>,
    stats: &ServeStats,
    max_batch: usize,
    max_wait: Duration,
) {
    loop {
        let first = match rx.recv() {
            Ok(request) => request,
            Err(_) => return, // every sender gone and the queue drained
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + max_wait;
        while batch.len() < max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // A panicking batch (a model assertion on adversarial input) must
        // not take the worker down with it: contain the unwind, drop the
        // batch — its response senders go with it, so every affected client
        // observes `ServeError::Shutdown` — and keep serving.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(model, batch, stats)
        }))
        .is_err()
        {
            eprintln!("dsx-serve: a batch panicked; its requests were dropped");
        }
    }
}

/// Stacks a gathered batch, runs the single shared forward pass, and routes
/// each request's output slice back to its caller.
fn run_batch(model: &dyn Layer, batch: Vec<Request>, stats: &ServeStats) {
    let sizes: Vec<usize> = batch.iter().map(|r| r.input.dim(0)).collect();
    let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
    let stacked = Tensor::cat_batch(&inputs);
    let output = model.infer(&stacked);
    let parts = output.split_batch(&sizes);
    stats.record_batch(batch.len());
    for (request, part) in batch.into_iter().zip(parts) {
        stats.record_latency(request.enqueued.elapsed());
        // A client that gave up on its response is not an engine error.
        let _ = request.respond.send(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_nn::{GlobalAvgPool, Linear, ReLU, Sequential};

    /// A tiny model: [N, 2, 4, 4] -> [N, 3] logits.
    fn tiny_model() -> Arc<dyn Layer> {
        Arc::new(
            Sequential::new("tiny-serve")
                .push(ReLU::new())
                .push(GlobalAvgPool::new())
                .push(Linear::new(2, 3, 7)),
        )
    }

    fn request(seed: u64) -> Tensor {
        Tensor::randn(&[1, 2, 4, 4], seed)
    }

    #[test]
    fn single_request_round_trips_within_the_wait_deadline() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_wait(Duration::from_millis(1)),
        );
        let handle = engine.handle();
        let out = handle.infer(request(1)).unwrap();
        assert_eq!(out.shape(), &[1, 3]);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn burst_of_requests_is_fused_into_batches() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(4)
                .with_max_wait(Duration::from_millis(50)),
        );
        let handle = engine.handle();
        let pending: Vec<_> = (0..8)
            .map(|i| handle.submit(request(i as u64)).unwrap())
            .collect();
        for p in pending {
            assert_eq!(p.wait().unwrap().shape(), &[1, 3]);
        }
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 8);
        assert!(
            snap.batches < 8,
            "a burst must fuse into fewer forward passes, got {} batches",
            snap.batches
        );
        assert!(snap.max_batch_occupancy > 1);
        assert!(snap.mean_batch_occupancy > 1.0);
    }

    #[test]
    fn batched_outputs_match_direct_inference() {
        let model = tiny_model();
        let engine = ServeEngine::start(
            Arc::clone(&model),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(8)
                .with_max_wait(Duration::from_millis(20)),
        );
        let handle = engine.handle();
        let inputs: Vec<Tensor> = (0..6).map(|i| request(100 + i as u64)).collect();
        let pending: Vec<_> = inputs
            .iter()
            .map(|input| handle.submit(input.clone()).unwrap())
            .collect();
        for (input, p) in inputs.iter().zip(pending) {
            let served = p.wait().unwrap();
            let direct = model.infer(input);
            assert!(dsx_tensor::allclose(&served, &direct, 1e-6));
        }
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn multi_sample_and_zero_sample_requests_ride_along() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let wide = handle.submit(Tensor::randn(&[3, 2, 4, 4], 5)).unwrap();
        // A zero-size batch must flow through stacking, the kernels and the
        // scatter without tripping any chunk math.
        let empty = handle.submit(Tensor::zeros(&[0, 2, 4, 4])).unwrap();
        assert_eq!(wide.wait().unwrap().shape(), &[3, 3]);
        assert_eq!(empty.wait().unwrap().shape(), &[0, 3]);
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn declared_request_dims_reject_mismatches_at_submit_time() {
        let engine = ServeEngine::start(
            tiny_model(),
            ServeConfig::default()
                .with_workers(1)
                .with_request_dims(&[2, 4, 4]),
        );
        let handle = engine.handle();
        assert!(matches!(
            handle.submit(Tensor::zeros(&[1, 2, 5, 5])),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            handle.submit(Tensor::zeros(&[4])),
            Err(ServeError::InvalidRequest(_))
        ));
        // Conforming requests (any batch size) still flow.
        assert_eq!(handle.infer(request(3)).unwrap().shape(), &[1, 3]);
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 1, "rejected submissions never enqueue");
    }

    #[test]
    fn a_poison_batch_fails_its_requests_but_not_the_engine() {
        // No declared request dims, so a bad shape only surfaces inside the
        // worker: [1, 3, 4, 4] sails through ReLU and GlobalAvgPool and
        // panics in Linear's feature check, however it was batched. The
        // affected client must see an error, later requests must still be
        // served, and shutdown must not observe a dead worker.
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        let bad = handle.submit(Tensor::zeros(&[1, 3, 4, 4])).unwrap();
        assert_eq!(bad.wait(), Err(ServeError::Shutdown));
        // The worker survived the poison batch and keeps serving.
        assert_eq!(handle.infer(request(2)).unwrap().shape(), &[1, 3]);
        drop(handle);
        engine.shutdown();
    }

    #[test]
    fn shutdown_reports_queue_latency() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        for i in 0..4 {
            handle.infer(request(i)).unwrap();
        }
        drop(handle);
        let snap = engine.shutdown();
        assert_eq!(snap.requests, 4);
        assert!(snap.throughput_rps > 0.0);
        assert!(snap.max_latency_us as f64 >= snap.mean_latency_us);
    }

    #[test]
    fn submissions_fail_cleanly_after_shutdown() {
        let engine = ServeEngine::start(tiny_model(), ServeConfig::default().with_workers(1));
        let handle = engine.handle();
        // Workers only exit once every sender is gone, so test the client
        // side of the contract: a handle whose engine (and sibling handles)
        // are gone gets `Shutdown`, not a hang or a panic.
        let probe = handle.clone();
        drop(handle);
        let rx_dead = {
            let engine_queue_gone = probe.submit(request(1)).unwrap();
            engine_queue_gone.wait().unwrap()
        };
        assert_eq!(rx_dead.shape(), &[1, 3]);
        drop(probe);
        engine.shutdown();
    }
}
