//! Adaptive `max_wait` tuning from live occupancy and queue-depth signals.
//!
//! The batcher's `max_wait` knob trades latency for occupancy: a longer
//! wait lets a trickle of requests accumulate into fuller (cheaper per
//! request) batches, but under saturating load the queue already holds a
//! full batch the moment a worker looks, so any wait is pure added
//! latency. The right setting therefore depends on the *live* arrival
//! rate — which is exactly what [`ServeStats`](crate::ServeStats) already
//! observes. [`AdaptiveWait`] closes that loop: once per epoch it looks at
//! the batches completed since the last epoch and the current queue depth,
//! and nudges `max_wait`:
//!
//! * **shrink toward zero under saturation** — the queue is at least a
//!   full batch deep, or batches are already running (nearly) full, so
//!   waiting buys no occupancy and only stretches the latency tail;
//! * **raise under light, under-occupied load** — batches complete mostly
//!   empty while the queue is shallow, so giving stragglers more time to
//!   arrive is the only way to fuse them;
//! * **hold** otherwise (occupancy healthy, queue moving).
//!
//! The decision function is pure (`step` takes the observed deltas and
//! returns the new wait) so its direction of movement is unit-testable
//! without threads; the engine runs it on a small controller thread
//! against the live counters.

use std::time::Duration;

/// Tuning knobs of the adaptive-wait controller.
#[derive(Debug, Clone)]
pub struct AdaptiveWaitConfig {
    /// How often the controller re-evaluates `max_wait`.
    pub epoch: Duration,
    /// Lower clamp of the tuned wait (usually zero).
    pub min_wait: Duration,
    /// Upper clamp of the tuned wait — the worst queueing latency the
    /// controller may introduce chasing occupancy.
    pub max_wait: Duration,
    /// Occupancy below this fraction of `max_batch` counts as
    /// under-occupied (a raise candidate).
    pub low_occupancy_frac: f64,
    /// Occupancy at or above this fraction of `max_batch` counts as
    /// saturated even with an empty queue: batches fill before the
    /// deadline, so the deadline is not the binding constraint.
    pub full_occupancy_frac: f64,
    /// Queue depth (in units of `max_batch`) at or above which the system
    /// is saturated regardless of occupancy.
    pub saturation_depth_batches: f64,
    /// Queue depth (in units of `max_batch`) below which the queue counts
    /// as shallow (a raise is allowed).
    pub low_depth_batches: f64,
    /// Multiplier applied when raising (`> 1`).
    pub grow: f64,
    /// Multiplier applied when shrinking (`< 1`).
    pub shrink: f64,
    /// The wait a raise jumps to when the current wait is (near) zero —
    /// multiplying zero would go nowhere.
    pub grow_floor: Duration,
}

impl Default for AdaptiveWaitConfig {
    fn default() -> Self {
        AdaptiveWaitConfig {
            epoch: Duration::from_millis(10),
            min_wait: Duration::ZERO,
            max_wait: Duration::from_millis(10),
            low_occupancy_frac: 0.5,
            full_occupancy_frac: 0.95,
            saturation_depth_batches: 1.0,
            low_depth_batches: 0.5,
            grow: 2.0,
            shrink: 0.5,
            grow_floor: Duration::from_micros(100),
        }
    }
}

/// What one controller epoch observed (deltas since the previous epoch
/// plus the instantaneous queue depth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochObservation {
    /// Batches completed during the epoch.
    pub batches: usize,
    /// Requests completed during the epoch.
    pub requests: usize,
    /// Requests waiting in the queue at epoch end.
    pub queue_depth: usize,
}

/// The direction `step` moved the wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitAdjustment {
    /// The wait grew (under-occupied batches, shallow queue).
    Raised,
    /// The wait shrank (saturation).
    Shrunk,
    /// No change (healthy occupancy, or an idle epoch).
    Held,
}

/// The stateful controller: owns the config and the per-epoch decision.
#[derive(Debug, Clone)]
pub struct AdaptiveWait {
    config: AdaptiveWaitConfig,
    max_batch: usize,
}

impl AdaptiveWait {
    /// A controller for an engine fusing up to `max_batch` requests.
    pub fn new(config: AdaptiveWaitConfig, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        assert!(config.grow > 1.0, "grow must exceed 1");
        assert!(
            config.shrink > 0.0 && config.shrink < 1.0,
            "shrink must be in (0, 1)"
        );
        assert!(
            config.min_wait <= config.max_wait,
            "min_wait must not exceed max_wait"
        );
        AdaptiveWait { config, max_batch }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdaptiveWaitConfig {
        &self.config
    }

    /// One epoch of the control loop: given what the epoch observed and
    /// the current wait, returns the new wait and which way it moved.
    pub fn step(&self, obs: EpochObservation, current: Duration) -> (Duration, WaitAdjustment) {
        let cfg = &self.config;
        let saturation_depth =
            (self.max_batch as f64 * cfg.saturation_depth_batches).ceil() as usize;
        let low_depth = (self.max_batch as f64 * cfg.low_depth_batches).ceil() as usize;
        let occupancy = if obs.batches == 0 {
            None
        } else {
            Some(obs.requests as f64 / obs.batches as f64)
        };

        let saturated = obs.queue_depth >= saturation_depth.max(1)
            || occupancy.is_some_and(|o| o >= cfg.full_occupancy_frac * self.max_batch as f64);
        if saturated {
            let shrunk = Duration::from_micros((current.as_micros() as f64 * cfg.shrink) as u64)
                .max(cfg.min_wait);
            return if shrunk < current {
                (shrunk, WaitAdjustment::Shrunk)
            } else {
                (current, WaitAdjustment::Held)
            };
        }

        // An idle epoch (no batches at all) teaches nothing: the wait only
        // matters once a first request has arrived.
        let Some(occupancy) = occupancy else {
            return (current, WaitAdjustment::Held);
        };

        if occupancy < cfg.low_occupancy_frac * self.max_batch as f64
            && obs.queue_depth < low_depth.max(1)
            && self.max_batch > 1
        {
            let grown = Duration::from_micros((current.as_micros() as f64 * cfg.grow) as u64)
                .max(cfg.grow_floor)
                .min(cfg.max_wait);
            return if grown > current {
                (grown, WaitAdjustment::Raised)
            } else {
                (current, WaitAdjustment::Held)
            };
        }

        (current, WaitAdjustment::Held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveWait {
        AdaptiveWait::new(AdaptiveWaitConfig::default(), 8)
    }

    fn obs(batches: usize, requests: usize, queue_depth: usize) -> EpochObservation {
        EpochObservation {
            batches,
            requests,
            queue_depth,
        }
    }

    #[test]
    fn under_occupied_low_depth_raises_the_wait() {
        let ctl = controller();
        // 10 batches of ~1 request, empty queue: a trickle worth waiting for.
        let (next, adj) = ctl.step(obs(10, 12, 0), Duration::from_micros(500));
        assert_eq!(adj, WaitAdjustment::Raised);
        assert_eq!(next, Duration::from_micros(1000));
    }

    #[test]
    fn a_raise_from_zero_jumps_to_the_grow_floor() {
        let ctl = controller();
        let (next, adj) = ctl.step(obs(5, 5, 0), Duration::ZERO);
        assert_eq!(adj, WaitAdjustment::Raised);
        assert_eq!(next, ctl.config().grow_floor);
    }

    #[test]
    fn raises_clamp_at_the_configured_cap() {
        let ctl = controller();
        let cap = ctl.config().max_wait;
        let (next, adj) = ctl.step(obs(3, 3, 0), cap);
        assert_eq!(adj, WaitAdjustment::Held, "already at the cap");
        assert_eq!(next, cap);
        // One step below the cap still raises, but only up to the cap.
        let (next, adj) = ctl.step(obs(3, 3, 0), cap - Duration::from_micros(1));
        assert_eq!(adj, WaitAdjustment::Raised);
        assert_eq!(next, cap);
    }

    #[test]
    fn a_deep_queue_shrinks_the_wait() {
        let ctl = controller();
        // Queue at 8 = one full batch deep: saturated.
        let (next, adj) = ctl.step(obs(4, 8, 8), Duration::from_micros(2000));
        assert_eq!(adj, WaitAdjustment::Shrunk);
        assert_eq!(next, Duration::from_micros(1000));
    }

    #[test]
    fn full_batches_shrink_even_with_an_empty_queue() {
        let ctl = controller();
        // Every batch ran full: the deadline is not binding, stop paying it.
        let (next, adj) = ctl.step(obs(4, 32, 0), Duration::from_micros(2000));
        assert_eq!(adj, WaitAdjustment::Shrunk);
        assert!(next < Duration::from_micros(2000));
    }

    #[test]
    fn shrinking_converges_to_the_min_and_then_holds() {
        let ctl = controller();
        let mut wait = Duration::from_micros(4000);
        let mut shrinks = 0;
        for _ in 0..64 {
            let (next, adj) = ctl.step(obs(4, 8, 16), wait);
            match adj {
                WaitAdjustment::Shrunk => {
                    assert!(next < wait);
                    shrinks += 1;
                }
                WaitAdjustment::Held => {
                    assert_eq!(next, ctl.config().min_wait);
                    break;
                }
                WaitAdjustment::Raised => panic!("saturation must never raise"),
            }
            wait = next;
        }
        assert!(shrinks >= 2, "expected a multiplicative descent");
        assert_eq!(wait.max(ctl.config().min_wait), wait);
    }

    #[test]
    fn healthy_occupancy_holds_steady() {
        let ctl = controller();
        // Mean occupancy 6/8 = 75%: above low (50%), below full (95%),
        // shallow queue — nothing to fix.
        let current = Duration::from_micros(1500);
        let (next, adj) = ctl.step(obs(4, 24, 1), current);
        assert_eq!(adj, WaitAdjustment::Held);
        assert_eq!(next, current);
    }

    #[test]
    fn idle_epochs_hold_steady() {
        let ctl = controller();
        let current = Duration::from_micros(800);
        let (next, adj) = ctl.step(obs(0, 0, 0), current);
        assert_eq!(adj, WaitAdjustment::Held);
        assert_eq!(next, current);
    }

    #[test]
    fn max_batch_one_never_raises() {
        // Waiting can never fuse anything when batches hold one request.
        let ctl = AdaptiveWait::new(AdaptiveWaitConfig::default(), 1);
        let (next, adj) = ctl.step(obs(10, 10, 0), Duration::ZERO);
        assert_eq!(adj, WaitAdjustment::Held);
        assert_eq!(next, Duration::ZERO);
    }
}
