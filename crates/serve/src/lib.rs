//! # dsx-serve
//!
//! A dynamic micro-batching inference engine over the DSXplore model zoo:
//! many concurrent clients share one forward pass.
//!
//! The crate builds on the `Layer::infer(&self)` path added to `dsx-nn`
//! (evaluation-mode inference with no activation caches), which makes a
//! built model `Send + Sync` — one `Arc<dyn Layer>` serves every thread
//! with zero locks:
//!
//! * [`engine`] — the batching engine: a bounded MPMC request queue (with
//!   backpressure), a worker pool that drains up to `max_batch` requests or
//!   a `max_wait` deadline, stacks them into one batched tensor, runs a
//!   single `infer` and scatters the per-request outputs back — through a
//!   per-request one-shot channel ([`ServeHandle::submit`]) or tagged onto
//!   a caller-owned channel by request id ([`ServeHandle::submit_tagged`],
//!   the route the `dsx-net` TCP front-end streams responses from);
//! * [`adaptive`] — the [`AdaptiveWait`] controller that retunes the
//!   batcher's `max_wait` each epoch from live occupancy and queue-depth
//!   stats (raise when batches run under-occupied at low queue depth,
//!   shrink toward zero under saturation);
//! * [`stats`] — per-request latency (mean, max and p50/p95/p99
//!   percentiles), batch occupancy and throughput counters;
//! * [`loadgen`] — the serving workload model, a multi-threaded load
//!   generator and the serial-unbatched baseline (what the `dsx-serve`
//!   binary and the `serve_throughput` bench drive).
//!
//! ## Example
//!
//! ```
//! use dsx_serve::{ServeConfig, ServeEngine};
//! use dsx_nn::{GlobalAvgPool, Layer, Linear, Sequential};
//! use dsx_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let model: Arc<dyn Layer> = Arc::new(
//!     Sequential::new("m").push(GlobalAvgPool::new()).push(Linear::new(2, 3, 1)),
//! );
//! let engine = ServeEngine::start(model, ServeConfig::default());
//! let handle = engine.handle();
//! let logits = handle.infer(Tensor::randn(&[1, 2, 4, 4], 7)).unwrap();
//! assert_eq!(logits.shape(), &[1, 3]);
//! drop(handle);
//! let report = engine.shutdown();
//! assert_eq!(report.requests, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod engine;
pub mod loadgen;
pub mod stats;

pub use adaptive::{AdaptiveWait, AdaptiveWaitConfig, EpochObservation, WaitAdjustment};
pub use engine::{
    PendingResponse, ServeConfig, ServeEngine, ServeError, ServeHandle, TaggedResponse,
};
pub use loadgen::{
    build_serving_model, request_input, run_load, run_serial, serving_spec, serving_spec_with,
    LoadConfig, SerialReport,
};
pub use stats::{ServeSnapshot, ServeStats};
