//! Serving-side instrumentation: request latency (mean, maximum and
//! log-bucketed percentiles), batch occupancy and throughput counters
//! shared between the engine's worker threads, plus the adaptive-wait
//! controller's gauge and adjustment counters.
//!
//! The latency distribution lives in [`dsx_obs::Histogram`] (the
//! 256-bucket log histogram with sub-bucket interpolated percentiles grew
//! up here and was promoted into `dsx-obs` so netload and pool stats share
//! it); this module keeps the serving-specific counters around it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

pub use dsx_obs::Histogram;
use dsx_obs::MetricsSnapshot;

/// Thread-safe serving counters. Workers record into these as batches
/// complete; [`ServeStats::snapshot`] folds them into a report.
///
/// **Memory ordering.** Every field is an independent counter or gauge:
/// no thread ever derives a *decision that guards other memory* from one,
/// readers only produce reports, and torn multi-field snapshots are
/// acceptable by design (a report racing a live batch may see the batch
/// counted but not its latency yet). `Relaxed` is therefore sound on every
/// access — each per-site `// ORDER:` tag below points back to this
/// argument.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicUsize,
    batches: AtomicUsize,
    batch_size_sum: AtomicUsize,
    batch_size_max: AtomicUsize,
    /// Queue-to-response latency distribution in µs (count, sum, max and
    /// log-bucketed percentiles all live in the histogram).
    latency: Histogram,
    /// The batcher's *current* `max_wait` in µs — a gauge the engine (and
    /// the adaptive controller) keeps up to date, not a counter.
    wait_gauge_us: AtomicU64,
    adaptive_raises: AtomicUsize,
    adaptive_shrinks: AtomicUsize,
    /// How many times a new model was hot-swapped in (generation counter:
    /// 0 means the engine still runs the model it started with).
    swap_generation: AtomicU64,
    /// Requests whose batch failed and were never served. The zero-drop
    /// hot-swap guarantee is CI-gated on this staying 0.
    dropped_requests: AtomicUsize,
    /// Requests shed because their deadline expired before a worker
    /// dequeued them (each one was answered with a typed
    /// `DeadlineExceeded`, so unlike `dropped_requests` nothing is lost —
    /// the client was told).
    shed_requests: AtomicUsize,
}

impl ServeStats {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.requests.fetch_add(size, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.batch_size_sum.fetch_add(size, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.batch_size_max.fetch_max(size, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Records one request's queue-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency.as_micros() as u64);
    }

    /// Updates the `max_wait` gauge (the engine calls this at start and on
    /// every adaptive retune).
    pub fn set_wait_gauge(&self, wait: Duration) {
        self.wait_gauge_us
            .store(wait.as_micros() as u64, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Records one adaptive-wait adjustment (`raised = true` when the wait
    /// grew, `false` when it shrank).
    pub fn record_adaptive(&self, raised: bool) {
        if raised {
            self.adaptive_raises.fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        } else {
            self.adaptive_shrinks.fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        }
    }

    /// Records one completed model hot swap, returning the new generation.
    pub fn record_swap(&self) -> u64 {
        self.swap_generation.fetch_add(1, Ordering::Relaxed) + 1 // ORDER: racy-tolerant counter (see struct doc)
    }

    /// The current swap generation (0 = the model the engine started with).
    pub fn swap_generation(&self) -> u64 {
        self.swap_generation.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Records `count` requests that were dropped unserved (their batch
    /// panicked).
    pub fn record_dropped(&self, count: usize) {
        self.dropped_requests.fetch_add(count, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Requests dropped unserved so far.
    pub fn dropped_requests(&self) -> usize {
        self.dropped_requests.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Records `count` requests shed past their deadline (each answered
    /// with a typed `DeadlineExceeded`, never silently discarded).
    pub fn record_shed(&self, count: usize) {
        self.shed_requests.fetch_add(count, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Requests shed past their deadline so far.
    pub fn shed_requests(&self) -> usize {
        self.shed_requests.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Requests completed so far.
    pub fn requests(&self) -> usize {
        self.requests.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Batches executed so far.
    pub fn batches(&self) -> usize {
        self.batches.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded latencies
    /// in µs — see [`Histogram::percentile`] for the estimator's contract
    /// (sub-bucket linear interpolation, bounded by the observed maximum).
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        self.latency.percentile(q)
    }

    /// Appends this engine's counters to a metrics snapshot under the
    /// `serve.` prefix (the DSXN `Stats` frame payload).
    pub fn export_metrics(&self, snap: &mut MetricsSnapshot) {
        snap.push("serve.requests", self.requests() as u64);
        snap.push("serve.batches", self.batches() as u64);
        snap.push(
            "serve.batch_size_max",
            self.batch_size_max.load(Ordering::Relaxed) as u64, // ORDER: racy-tolerant counter (see struct doc)
        );
        snap.push("serve.latency.count", self.latency.count());
        snap.push("serve.latency.mean_us", self.latency.mean().round() as u64);
        snap.push("serve.latency.p50_us", self.latency.percentile(0.50));
        snap.push("serve.latency.p95_us", self.latency.percentile(0.95));
        snap.push("serve.latency.p99_us", self.latency.percentile(0.99));
        snap.push("serve.latency.max_us", self.latency.max());
        snap.push(
            "serve.max_wait_us",
            self.wait_gauge_us.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
        );
        snap.push(
            "serve.adaptive_raises",
            self.adaptive_raises.load(Ordering::Relaxed) as u64, // ORDER: racy-tolerant counter (see struct doc)
        );
        snap.push(
            "serve.adaptive_shrinks",
            self.adaptive_shrinks.load(Ordering::Relaxed) as u64, // ORDER: racy-tolerant counter (see struct doc)
        );
        snap.push("serve.swap_generation", self.swap_generation());
        snap.push("serve.dropped_requests", self.dropped_requests() as u64);
        snap.push("serve.shed_requests", self.shed_requests() as u64);
    }

    /// Folds the counters into a report for a serving window of `elapsed`
    /// wall-clock time.
    pub fn snapshot(&self, elapsed: Duration) -> ServeSnapshot {
        let requests = self.requests();
        let batches = self.batches();
        let secs = elapsed.as_secs_f64();
        ServeSnapshot {
            requests,
            batches,
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                // ORDER: racy-tolerant counter (see struct doc)
                self.batch_size_sum.load(Ordering::Relaxed) as f64 / batches as f64
            },
            max_batch_occupancy: self.batch_size_max.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            mean_latency_us: if requests == 0 {
                0.0
            } else {
                self.latency.sum() as f64 / requests as f64
            },
            p50_latency_us: self.latency.percentile(0.50),
            p95_latency_us: self.latency.percentile(0.95),
            p99_latency_us: self.latency.percentile(0.99),
            max_latency_us: self.latency.max(),
            max_wait_us: self.wait_gauge_us.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            adaptive_raises: self.adaptive_raises.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            adaptive_shrinks: self.adaptive_shrinks.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            swap_generation: self.swap_generation.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            dropped_requests: self.dropped_requests.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            shed_requests: self.shed_requests.load(Ordering::Relaxed), // ORDER: racy-tolerant counter (see struct doc)
            elapsed_secs: secs,
            throughput_rps: if secs > 0.0 {
                requests as f64 / secs
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Requests completed in the window.
    pub requests: usize,
    /// Batches executed in the window.
    pub batches: usize,
    /// Mean requests per executed batch.
    pub mean_batch_occupancy: f64,
    /// Largest batch executed.
    pub max_batch_occupancy: usize,
    /// Mean queue-to-response latency in microseconds.
    pub mean_latency_us: f64,
    /// Median queue-to-response latency in microseconds (histogram
    /// estimate with sub-bucket linear interpolation).
    pub p50_latency_us: u64,
    /// 95th-percentile queue-to-response latency in microseconds.
    pub p95_latency_us: u64,
    /// 99th-percentile queue-to-response latency in microseconds.
    pub p99_latency_us: u64,
    /// Worst queue-to-response latency in microseconds.
    pub max_latency_us: u64,
    /// The batcher's `max_wait` at snapshot time, in microseconds (moves
    /// under the adaptive controller).
    pub max_wait_us: u64,
    /// How many times the adaptive controller raised `max_wait`.
    pub adaptive_raises: usize,
    /// How many times the adaptive controller shrank `max_wait`.
    pub adaptive_shrinks: usize,
    /// Hot-swap generation at snapshot time (0 = the starting model).
    pub swap_generation: u64,
    /// Requests dropped unserved (their batch panicked). The zero-drop
    /// hot-swap guarantee is gated on this being 0.
    pub dropped_requests: usize,
    /// Requests shed past their deadline before batch assembly. Unlike
    /// drops, every shed request received a typed `DeadlineExceeded`.
    pub shed_requests: usize,
    /// Wall-clock length of the serving window in seconds.
    pub elapsed_secs: f64,
    /// Completed requests per second over the window.
    pub throughput_rps: f64,
}

impl std::fmt::Display for ServeSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {:.2} s ({:.1} req/s) over {} batches \
             (occupancy mean {:.2}, max {}); latency mean {:.0} us, \
             p50 {} us, p95 {} us, p99 {} us, max {} us; max_wait {} us",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.batches,
            self.mean_batch_occupancy,
            self.max_batch_occupancy,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.max_latency_us,
            self.max_wait_us,
        )?;
        if self.adaptive_raises > 0 || self.adaptive_shrinks > 0 {
            write!(
                f,
                " (adaptive: {} raises, {} shrinks)",
                self.adaptive_raises, self.adaptive_shrinks
            )?;
        }
        if self.swap_generation > 0 {
            write!(f, " (model generation {})", self.swap_generation)?;
        }
        if self.dropped_requests > 0 {
            write!(f, "; DROPPED {} requests", self.dropped_requests)?;
        }
        if self.shed_requests > 0 {
            write!(f, "; SHED {} requests past deadline", self.shed_requests)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_means_and_throughput() {
        let stats = ServeStats::new();
        stats.record_batch(8);
        stats.record_batch(4);
        for _ in 0..12 {
            stats.record_latency(Duration::from_micros(500));
        }
        let snap = stats.snapshot(Duration::from_secs(2));
        assert_eq!(snap.requests, 12);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.mean_batch_occupancy, 6.0);
        assert_eq!(snap.max_batch_occupancy, 8);
        assert_eq!(snap.mean_latency_us, 500.0);
        assert_eq!(snap.max_latency_us, 500);
        assert_eq!(snap.throughput_rps, 6.0);
        // The report renders without panicking.
        assert!(format!("{snap}").contains("12 requests"));
    }

    #[test]
    fn empty_window_snapshots_to_zeroes() {
        let snap = ServeStats::new().snapshot(Duration::ZERO);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.mean_batch_occupancy, 0.0);
        assert_eq!(snap.mean_latency_us, 0.0);
        assert_eq!(snap.p50_latency_us, 0);
        assert_eq!(snap.p99_latency_us, 0);
        assert_eq!(snap.throughput_rps, 0.0);
    }

    #[test]
    fn sub_16us_percentiles_are_exact() {
        // Latencies below 16 µs get one bucket each, so percentiles over
        // them are exact — 100 samples of 1..=10 µs, 10 of each.
        let stats = ServeStats::new();
        for us in 1..=10u64 {
            for _ in 0..10 {
                stats.record_latency(Duration::from_micros(us));
            }
        }
        assert_eq!(stats.latency_percentile_us(0.50), 5);
        assert_eq!(stats.latency_percentile_us(0.95), 10);
        assert_eq!(stats.latency_percentile_us(0.99), 10);
        assert_eq!(stats.latency_percentile_us(0.01), 1);
        assert_eq!(stats.latency_percentile_us(1.0), 10);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        let stats = ServeStats::new();
        for us in [3u64, 120, 950, 4_000, 60_000, 2_000_000] {
            stats.record_latency(Duration::from_micros(us));
        }
        let p50 = stats.latency_percentile_us(0.50);
        let p95 = stats.latency_percentile_us(0.95);
        let p99 = stats.latency_percentile_us(0.99);
        let snap = stats.snapshot(Duration::from_secs(1));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= snap.max_latency_us);
        // Log buckets never over-report: each estimate stays inside the
        // bucket holding its rank.
        assert!(p50 <= 950);
    }

    #[test]
    fn interpolation_keeps_percentiles_distinct_within_one_wide_bucket() {
        // 100 samples spread across [49200, 57200) µs — all inside ONE log
        // bucket ([49152, 57344)). The pre-interpolation floor estimate
        // collapsed p50 == p95 == p99 == 49152 exactly like the
        // BENCH_PR3.json rows this satellite fixes; sub-bucket linear
        // interpolation must keep them distinct, ordered and bounded.
        let stats = ServeStats::new();
        for i in 0..100u64 {
            stats.record_latency(Duration::from_micros(49_200 + i * 80));
        }
        let p50 = stats.latency_percentile_us(0.50);
        let p95 = stats.latency_percentile_us(0.95);
        let p99 = stats.latency_percentile_us(0.99);
        assert!(p50 < p95 && p95 < p99, "{p50} {p95} {p99} must be distinct");
        assert!(p50 >= 49_152 && p99 <= 57_120, "{p50} {p99}");
        // The median estimate lands near the middle of the bucket, not at
        // its floor.
        assert!(p50 > 51_000 && p50 < 55_000, "{p50}");
    }

    #[test]
    fn interpolation_distinguishes_percentiles_on_a_spread_distribution() {
        // A long-tailed spread across many buckets: percentiles must be
        // strictly ordered and each estimate must stay at or below the
        // sample it approximates.
        let stats = ServeStats::new();
        for i in 1..=200u64 {
            stats.record_latency(Duration::from_micros(i * i)); // 1 .. 40_000
        }
        let p50 = stats.latency_percentile_us(0.50);
        let p90 = stats.latency_percentile_us(0.90);
        let p99 = stats.latency_percentile_us(0.99);
        assert!(p50 < p90 && p90 < p99, "{p50} {p90} {p99}");
        assert!(p50 <= 100 * 100 && p50 > 80 * 80, "{p50}");
        assert!(p99 <= 198 * 198 && p99 > 180 * 180, "{p99}");
    }

    #[test]
    fn adaptive_counters_and_gauge_surface_in_the_snapshot() {
        let stats = ServeStats::new();
        stats.set_wait_gauge(Duration::from_micros(750));
        stats.record_adaptive(true);
        stats.record_adaptive(true);
        stats.record_adaptive(false);
        let snap = stats.snapshot(Duration::from_secs(1));
        assert_eq!(snap.max_wait_us, 750);
        assert_eq!(snap.adaptive_raises, 2);
        assert_eq!(snap.adaptive_shrinks, 1);
        assert!(format!("{snap}").contains("adaptive: 2 raises, 1 shrinks"));
    }

    #[test]
    fn swap_and_drop_counters_surface_in_the_snapshot() {
        let stats = ServeStats::new();
        assert_eq!(stats.swap_generation(), 0);
        let quiet = stats.snapshot(Duration::from_secs(1));
        assert_eq!(quiet.swap_generation, 0);
        assert_eq!(quiet.dropped_requests, 0);
        let rendered = format!("{quiet}");
        assert!(!rendered.contains("generation"));
        assert!(!rendered.contains("DROPPED"));

        assert_eq!(stats.record_swap(), 1);
        assert_eq!(stats.record_swap(), 2);
        stats.record_dropped(3);
        let snap = stats.snapshot(Duration::from_secs(1));
        assert_eq!(snap.swap_generation, 2);
        assert_eq!(snap.dropped_requests, 3);
        let rendered = format!("{snap}");
        assert!(rendered.contains("model generation 2"));
        assert!(rendered.contains("DROPPED 3 requests"));
    }

    #[test]
    fn shed_counter_surfaces_in_snapshot_display_and_export() {
        let stats = ServeStats::new();
        let quiet = stats.snapshot(Duration::from_secs(1));
        assert_eq!(quiet.shed_requests, 0);
        assert!(!format!("{quiet}").contains("SHED"));

        stats.record_shed(2);
        stats.record_shed(1);
        let snap = stats.snapshot(Duration::from_secs(1));
        assert_eq!(snap.shed_requests, 3);
        assert!(format!("{snap}").contains("SHED 3 requests past deadline"));
        let mut exported = MetricsSnapshot::new();
        stats.export_metrics(&mut exported);
        assert_eq!(exported.get("serve.shed_requests"), Some(3));
    }

    #[test]
    fn export_metrics_carries_the_serve_prefix() {
        let stats = ServeStats::new();
        stats.record_batch(4);
        for _ in 0..4 {
            stats.record_latency(Duration::from_micros(100));
        }
        let mut snap = MetricsSnapshot::new();
        stats.export_metrics(&mut snap);
        assert_eq!(snap.get("serve.requests"), Some(4));
        assert_eq!(snap.get("serve.batches"), Some(1));
        assert_eq!(snap.get("serve.latency.count"), Some(4));
        assert_eq!(snap.get("serve.latency.max_us"), Some(100));
        assert_eq!(snap.get("serve.dropped_requests"), Some(0));
    }
}
