//! Serving-side instrumentation: request latency, batch occupancy and
//! throughput counters shared between the engine's worker threads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Thread-safe serving counters. Workers record into these as batches
/// complete; [`ServeStats::snapshot`] folds them into a report.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicUsize,
    batches: AtomicUsize,
    batch_size_sum: AtomicUsize,
    batch_size_max: AtomicUsize,
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
}

impl ServeStats {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(size, Ordering::Relaxed);
        self.batch_size_sum.fetch_add(size, Ordering::Relaxed);
        self.batch_size_max.fetch_max(size, Ordering::Relaxed);
    }

    /// Records one request's queue-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros() as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Requests completed so far.
    pub fn requests(&self) -> usize {
        self.requests.load(Ordering::Relaxed)
    }

    /// Batches executed so far.
    pub fn batches(&self) -> usize {
        self.batches.load(Ordering::Relaxed)
    }

    /// Folds the counters into a report for a serving window of `elapsed`
    /// wall-clock time.
    pub fn snapshot(&self, elapsed: Duration) -> ServeSnapshot {
        let requests = self.requests();
        let batches = self.batches();
        let secs = elapsed.as_secs_f64();
        ServeSnapshot {
            requests,
            batches,
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                self.batch_size_sum.load(Ordering::Relaxed) as f64 / batches as f64
            },
            max_batch_occupancy: self.batch_size_max.load(Ordering::Relaxed),
            mean_latency_us: if requests == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / requests as f64
            },
            max_latency_us: self.latency_max_us.load(Ordering::Relaxed),
            elapsed_secs: secs,
            throughput_rps: if secs > 0.0 {
                requests as f64 / secs
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Requests completed in the window.
    pub requests: usize,
    /// Batches executed in the window.
    pub batches: usize,
    /// Mean requests per executed batch.
    pub mean_batch_occupancy: f64,
    /// Largest batch executed.
    pub max_batch_occupancy: usize,
    /// Mean queue-to-response latency in microseconds.
    pub mean_latency_us: f64,
    /// Worst queue-to-response latency in microseconds.
    pub max_latency_us: u64,
    /// Wall-clock length of the serving window in seconds.
    pub elapsed_secs: f64,
    /// Completed requests per second over the window.
    pub throughput_rps: f64,
}

impl std::fmt::Display for ServeSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {:.2} s ({:.1} req/s) over {} batches \
             (occupancy mean {:.2}, max {}); latency mean {:.0} us, max {} us",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.batches,
            self.mean_batch_occupancy,
            self.max_batch_occupancy,
            self.mean_latency_us,
            self.max_latency_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_means_and_throughput() {
        let stats = ServeStats::new();
        stats.record_batch(8);
        stats.record_batch(4);
        for _ in 0..12 {
            stats.record_latency(Duration::from_micros(500));
        }
        let snap = stats.snapshot(Duration::from_secs(2));
        assert_eq!(snap.requests, 12);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.mean_batch_occupancy, 6.0);
        assert_eq!(snap.max_batch_occupancy, 8);
        assert_eq!(snap.mean_latency_us, 500.0);
        assert_eq!(snap.max_latency_us, 500);
        assert_eq!(snap.throughput_rps, 6.0);
        // The report renders without panicking.
        assert!(format!("{snap}").contains("12 requests"));
    }

    #[test]
    fn empty_window_snapshots_to_zeroes() {
        let snap = ServeStats::new().snapshot(Duration::ZERO);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.mean_batch_occupancy, 0.0);
        assert_eq!(snap.mean_latency_us, 0.0);
        assert_eq!(snap.throughput_rps, 0.0);
    }
}
