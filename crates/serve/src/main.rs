//! `dsx-serve` — drives the micro-batching engine with a built-in load
//! generator and prints batched vs. serial-unbatched throughput.
//!
//! ```text
//! dsx-serve [--requests N] [--concurrency N] [--backend <naive|blocked>]
//!           [--max-batch N] [--max-wait-us N] [--workers N]
//!           [--queue-capacity N] [--par-threads N] [--skip-serial]
//! ```
//!
//! Every flag is parsed (and validated) *before* the model is built: the
//! kernel backend is a process-wide construction-time default in `dsx-core`,
//! so a flag error after construction would be both too late and misleading.
//! Invalid flags exit with status 2.

use dsx_core::BackendKind;
use dsx_serve::{build_serving_model, run_load, run_serial, serving_spec, LoadConfig, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    requests: usize,
    concurrency: usize,
    backend: BackendKind,
    max_batch: usize,
    max_wait: Duration,
    workers: usize,
    queue_capacity: usize,
    /// Kernel-level threads inside one forward pass. Defaults to 1 so the
    /// worker pool (request-level parallelism) is the only thread source
    /// and batched-vs-serial numbers compare like for like.
    par_threads: usize,
    skip_serial: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            requests: 256,
            concurrency: 16,
            backend: BackendKind::Blocked,
            max_batch: 8,
            max_wait: Duration::from_micros(2000),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 32,
            par_threads: 1,
            skip_serial: false,
        }
    }
}

const USAGE: &str = "usage: dsx-serve [--requests N] [--concurrency N] \
[--backend <naive|blocked>] [--max-batch N] [--max-wait-us N] [--workers N] \
[--queue-capacity N] [--par-threads N] [--skip-serial]";

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline_value) = match arg.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |flag: &str| -> Result<String, String> {
            match &inline_value {
                Some(v) => Ok(v.clone()),
                None => iter
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value\n{USAGE}")),
            }
        };
        let parse_usize = |flag: &str, value: String| -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|e| format!("{flag} must be a non-negative integer: {e}\n{USAGE}"))
        };
        match flag {
            "--requests" => cli.requests = parse_usize(flag, value(flag)?)?,
            "--concurrency" => cli.concurrency = parse_usize(flag, value(flag)?)?.max(1),
            "--backend" => cli.backend = value(flag)?.parse::<BackendKind>()?,
            "--max-batch" => {
                cli.max_batch = parse_usize(flag, value(flag)?)?;
                if cli.max_batch == 0 {
                    return Err(format!("--max-batch must be at least 1\n{USAGE}"));
                }
            }
            "--max-wait-us" => {
                cli.max_wait = Duration::from_micros(parse_usize(flag, value(flag)?)? as u64)
            }
            "--workers" => cli.workers = parse_usize(flag, value(flag)?)?.max(1),
            "--queue-capacity" => cli.queue_capacity = parse_usize(flag, value(flag)?)?.max(1),
            "--par-threads" => cli.par_threads = parse_usize(flag, value(flag)?)?,
            "--skip-serial" => cli.skip_serial = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    // Flags are fully validated; only now may construction-time state be
    // touched (the backend default is read when layers are built).
    dsx_core::set_default_backend(cli.backend);
    dsx_tensor::set_num_threads(cli.par_threads);

    let spec = serving_spec();
    println!(
        "serving model: {} ({:.2} MFLOPs/request, backend {})",
        spec.name,
        spec.mflops(),
        cli.backend
    );
    let model = build_serving_model(&spec, cli.backend);

    let serial = if cli.skip_serial {
        None
    } else {
        let report = run_serial(&*model, cli.requests.clamp(1, 64));
        println!(
            "serial-unbatched: {} requests, {:.1} req/s ({:.3} ms/request)",
            report.requests,
            report.throughput_rps,
            1e3 * report.elapsed_secs / report.requests as f64
        );
        Some(report)
    };

    let cfg = LoadConfig {
        requests: cli.requests,
        concurrency: cli.concurrency,
        engine: ServeConfig {
            max_batch: cli.max_batch,
            max_wait: cli.max_wait,
            queue_capacity: cli.queue_capacity,
            workers: cli.workers,
            // run_load fills in the serving model's request shape.
            request_dims: None,
        },
    };
    println!(
        "batched engine: max_batch {}, max_wait {} us, {} workers, {} clients",
        cli.max_batch,
        cli.max_wait.as_micros(),
        cli.workers,
        cli.concurrency
    );
    let snapshot = run_load(Arc::clone(&model), &cfg);
    println!("batched: {snapshot}");

    if let Some(serial) = serial {
        println!(
            "speedup: {:.2}x batched over serial-unbatched",
            snapshot.throughput_rps / serial.throughput_rps
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_with_no_flags() {
        let cli = parse_cli(&[]).unwrap();
        assert_eq!(cli, Cli::default());
    }

    #[test]
    fn flags_parse_in_both_spellings() {
        let cli = parse_cli(&args(&[
            "--requests",
            "32",
            "--backend=naive",
            "--max-batch=4",
            "--max-wait-us",
            "500",
            "--skip-serial",
        ]))
        .unwrap();
        assert_eq!(cli.requests, 32);
        assert_eq!(cli.backend, BackendKind::Naive);
        assert_eq!(cli.max_batch, 4);
        assert_eq!(cli.max_wait, Duration::from_micros(500));
        assert!(cli.skip_serial);
    }

    #[test]
    fn invalid_backend_is_a_parse_error_not_a_warning() {
        let err = parse_cli(&args(&["--backend", "cuda"])).unwrap_err();
        assert!(err.contains("unknown kernel backend"), "{err}");
    }

    #[test]
    fn unknown_flags_and_missing_values_error_out() {
        assert!(parse_cli(&args(&["--frobnicate"])).is_err());
        assert!(parse_cli(&args(&["--requests"])).is_err());
        assert!(parse_cli(&args(&["--max-batch", "0"])).is_err());
        assert!(parse_cli(&args(&["--requests", "many"])).is_err());
    }
}
