//! The built-in load generator: a serving workload model, concurrent
//! clients hammering a [`ServeEngine`], and the serial-unbatched baseline
//! the batched numbers are compared against.

use crate::engine::{ServeConfig, ServeEngine};
use crate::stats::ServeSnapshot;
use dsx_core::{BackendKind, SccImplementation};
use dsx_models::{build_model_with_backend, ConvKind, ConvLayerSpec, Dataset, ModelSpec};
use dsx_nn::Layer;
use dsx_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spatial size of one serving request (square, RGB).
pub const INPUT_HW: usize = 8;

/// Class count of the serving model's classifier head.
pub const CLASSES: usize = 10;

/// Default channel width of the serving tower.
pub const DEFAULT_CHANNELS: usize = 256;

/// Default number of serving-tower blocks.
pub const DEFAULT_BLOCKS: usize = 3;

/// The default serving workload model.
///
/// See [`serving_spec_with`] for why the tower is shaped the way it is.
pub fn serving_spec() -> ModelSpec {
    serving_spec_with(DEFAULT_CHANNELS, DEFAULT_BLOCKS)
}

/// A compact low-resolution "serving tower": a strided stem down to 4×4,
/// then `blocks` repetitions of `Standard 3×3 → DW 3×3 → SCC`, strided to
/// 2×2 mid-tower.
///
/// The shape is deliberately the regime where request batching pays most on
/// a CPU: at batch 1 the GEMM behind each dense 3×3 convolution has only
/// `plane` (16, then 4) output columns, so its unit-stride inner loops are
/// a few elements long and per-call fixed costs (weight repacking, tile
/// setup, allocator traffic) rival the arithmetic. Fusing 8 requests widens
/// every GEMM 8× at unchanged fixed cost — the same raise-the-work-per-
/// launch argument the paper makes for the SCC kernel itself. The DW+SCC
/// pairs keep the workload paper-shaped and make the `--backend` choice
/// matter.
pub fn serving_spec_with(channels: usize, blocks: usize) -> ModelSpec {
    assert!(
        channels >= 4 && channels.is_multiple_of(2),
        "need an even tower width"
    );
    let mut convs = vec![ConvLayerSpec {
        name: "stem".into(),
        kind: ConvKind::Standard {
            kernel: 3,
            groups: 1,
        },
        cin: 3,
        cout: channels,
        in_hw: INPUT_HW,
        stride: 2,
        with_bn: true,
    }];
    let mut hw = INPUT_HW / 2;
    for b in 0..blocks {
        // Halve the plane once mid-tower: the 2×2 tail is where a batch-1
        // GEMM is most starved (4 output columns), so it is where fusing
        // requests pays the most.
        let stride = if b == blocks / 2 && hw > 2 { 2 } else { 1 };
        convs.push(ConvLayerSpec {
            name: format!("dense{b}"),
            kind: ConvKind::Standard {
                kernel: 3,
                groups: 1,
            },
            cin: channels,
            cout: channels,
            in_hw: hw,
            stride,
            with_bn: true,
        });
        hw /= stride;
        convs.push(ConvLayerSpec {
            name: format!("dw{b}"),
            kind: ConvKind::Depthwise { kernel: 3 },
            cin: channels,
            cout: channels,
            in_hw: hw,
            stride: 1,
            with_bn: true,
        });
        convs.push(ConvLayerSpec {
            name: format!("scc{b}"),
            kind: ConvKind::SlidingChannel { cg: 2, co: 0.5 },
            cin: channels,
            cout: channels,
            in_hw: hw,
            stride: 1,
            with_bn: true,
        });
    }
    ModelSpec {
        name: format!("ServeTower{channels}x{blocks}"),
        dataset: Dataset::Cifar10,
        scheme_tag: "DW+SCC-cg2-co50%".into(),
        convs,
        classifier_in: channels,
        classes: CLASSES,
    }
}

/// Builds the shared serving model on an explicit kernel backend. The
/// result is `Send + Sync` (every [`Layer`] is), so one `Arc` serves every
/// worker and client thread.
pub fn build_serving_model(spec: &ModelSpec, backend: BackendKind) -> Arc<dyn Layer> {
    Arc::new(build_model_with_backend(
        spec,
        0x5E21E,
        SccImplementation::Dsxplore,
        backend,
    ))
}

/// A deterministic single-sample request input, `[1, 3, INPUT_HW,
/// INPUT_HW]`; distinct seeds give distinct requests.
pub fn request_input(seed: u64) -> Tensor {
    Tensor::randn(&[1, 3, INPUT_HW, INPUT_HW], seed)
}

/// Load-generator shape: how many requests, from how many client threads,
/// against which engine configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to send.
    pub requests: usize,
    /// Concurrent client threads submitting them.
    pub concurrency: usize,
    /// Engine configuration under test.
    pub engine: ServeConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 256,
            concurrency: 16,
            engine: ServeConfig::default(),
        }
    }
}

/// Report of the serial-unbatched baseline: the same requests issued one at
/// a time, each as its own `infer` call.
#[derive(Debug, Clone, PartialEq)]
pub struct SerialReport {
    /// Requests issued.
    pub requests: usize,
    /// Wall-clock seconds for all of them.
    pub elapsed_secs: f64,
    /// Requests per second.
    pub throughput_rps: f64,
}

/// Drives the engine with `cfg.concurrency` client threads submitting
/// `cfg.requests` single-sample requests in total and returns the engine's
/// final serving report. Every response is shape-checked, so a hung or
/// misrouted request fails loudly.
pub fn run_load(model: Arc<dyn Layer>, cfg: &LoadConfig) -> ServeSnapshot {
    assert!(cfg.concurrency >= 1, "need at least one client");
    let mut engine_cfg = cfg.engine.clone();
    // The load generator always speaks the serving model's request shape;
    // declaring it lets the engine reject stray submissions at the door.
    engine_cfg
        .request_dims
        .get_or_insert_with(|| vec![3, INPUT_HW, INPUT_HW]);
    let engine = ServeEngine::start(model, engine_cfg);
    std::thread::scope(|scope| {
        for client in 0..cfg.concurrency {
            // Front clients take the remainder so exactly `requests` flow.
            let share = cfg.requests / cfg.concurrency
                + usize::from(client < cfg.requests % cfg.concurrency);
            let handle = engine.handle();
            scope.spawn(move || {
                for i in 0..share {
                    let seed = (client * 1_000_003 + i) as u64;
                    let out = handle
                        .infer(request_input(seed))
                        // lint: allow(panic) — load-measurement harness: a
                        // mid-run failure voids the sample, so die loudly.
                        .expect("engine shut down mid-load");
                    assert_eq!(out.shape(), &[1, CLASSES], "response shape mismatch");
                }
            });
        }
    });
    engine.shutdown()
}

/// The serial-unbatched baseline: one thread, one request per forward pass,
/// no queueing. This is what the batched engine must beat.
pub fn run_serial(model: &dyn Layer, requests: usize) -> SerialReport {
    let start = Instant::now();
    for i in 0..requests {
        let out = model.infer(&request_input(i as u64));
        assert_eq!(out.shape(), &[1, CLASSES], "response shape mismatch");
    }
    let elapsed = start.elapsed().max(Duration::from_nanos(1));
    SerialReport {
        requests,
        elapsed_secs: elapsed.as_secs_f64(),
        throughput_rps: requests as f64 / elapsed.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_spec_chains_and_counts() {
        let spec = serving_spec();
        let mut prev = spec.convs[0].cin;
        for conv in &spec.convs {
            assert_eq!(conv.cin, prev, "layer {} breaks the chain", conv.name);
            prev = conv.cout;
        }
        assert_eq!(spec.classifier_in, prev);
        assert_eq!(spec.scc_layers().len(), DEFAULT_BLOCKS);
        assert!(spec.mflops() > 0.0);
    }

    #[test]
    fn small_load_run_completes_on_both_backends() {
        let spec = serving_spec_with(16, 1);
        for backend in [BackendKind::Naive, BackendKind::Blocked] {
            let model = build_serving_model(&spec, backend);
            let cfg = LoadConfig {
                requests: 12,
                concurrency: 3,
                engine: ServeConfig::default()
                    .with_workers(2)
                    .with_max_batch(4)
                    .with_max_wait(Duration::from_millis(5)),
            };
            let snap = run_load(Arc::clone(&model), &cfg);
            assert_eq!(snap.requests, 12, "{backend}");
            assert!(snap.batches <= 12);
            let serial = run_serial(&*model, 4);
            assert_eq!(serial.requests, 4);
            assert!(serial.throughput_rps > 0.0);
        }
    }
}
