//! End-to-end behaviour of the adaptive `max_wait` controller on a running
//! engine: a low-rate phase must *raise* the wait (chasing occupancy), a
//! saturating phase must *shrink* it (cutting pointless queueing latency).
//!
//! The phases poll with generous deadlines instead of asserting exact
//! timings, so the test stays robust on loaded single-core runners; the
//! fine-grained decision function is covered deterministically by the unit
//! tests in `dsx_serve::adaptive`.

use dsx_nn::{GlobalAvgPool, Layer, Linear, ReLU, Sequential};
use dsx_serve::{AdaptiveWaitConfig, ServeConfig, ServeEngine};
use dsx_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_model() -> Arc<dyn Layer> {
    Arc::new(
        Sequential::new("tiny-adaptive")
            .push(ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(2, 3, 11)),
    )
}

fn request(seed: u64) -> Tensor {
    Tensor::randn(&[1, 2, 4, 4], seed)
}

#[test]
fn adaptive_wait_raises_on_trickle_and_shrinks_under_saturation() {
    let initial = Duration::from_micros(400);
    let engine = ServeEngine::start(
        tiny_model(),
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_queue_capacity(16)
            .with_max_wait(initial)
            .with_adaptive(AdaptiveWaitConfig {
                epoch: Duration::from_millis(15),
                max_wait: Duration::from_millis(8),
                ..AdaptiveWaitConfig::default()
            }),
    );
    let handle = engine.handle();

    // Phase 1 — low rate: one blocking round trip at a time with a pause in
    // between keeps occupancy at ~1 and the queue empty, so the controller
    // must raise the wait. Poll until it has (or a generous deadline).
    let phase1_deadline = Instant::now() + Duration::from_secs(20);
    let mut seed = 0u64;
    while engine.max_wait() <= initial {
        assert!(
            Instant::now() < phase1_deadline,
            "controller never raised max_wait above {initial:?} under trickle load \
             (stuck at {:?})",
            engine.max_wait()
        );
        handle.infer(request(seed)).expect("engine died mid-test");
        seed += 1;
        std::thread::sleep(Duration::from_millis(4));
    }
    let raised_to = engine.max_wait();
    assert!(raised_to > initial, "phase 1 must raise: {raised_to:?}");
    assert!(
        engine
            .stats()
            .snapshot(Duration::from_secs(1))
            .adaptive_raises
            > 0,
        "the raise must be counted in stats"
    );

    // Phase 2 — saturation: 8 clients hammering a max_batch=4 engine keep
    // every batch full and the queue deep, so the controller must shrink
    // the wait back below its phase-1 peak. Clients run until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for client in 0..8u64 {
            let handle = engine.handle();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    handle
                        .infer(request(client * 1_000_000 + i))
                        .expect("engine died mid-saturation");
                    i += 1;
                }
            });
        }
        let phase2_deadline = Instant::now() + Duration::from_secs(20);
        while engine.max_wait() >= raised_to {
            assert!(
                Instant::now() < phase2_deadline,
                "controller never shrank max_wait below the phase-1 peak {raised_to:?} \
                 under saturating load (stuck at {:?}, queue depth {})",
                engine.max_wait(),
                engine.queue_depth()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let shrunk_to = engine.max_wait();
    assert!(
        shrunk_to < raised_to,
        "phase 2 must shrink: {shrunk_to:?} vs peak {raised_to:?}"
    );

    drop(handle);
    let snap = engine.shutdown();
    assert!(snap.adaptive_raises > 0, "raises recorded: {snap}");
    assert!(snap.adaptive_shrinks > 0, "shrinks recorded: {snap}");
    // The saturating phase fused requests: occupancy must beat the
    // trickle's 1-per-batch floor, which is what the tuning buys.
    assert!(
        snap.mean_batch_occupancy > 1.0,
        "saturation must have fused batches: {snap}"
    );
    assert_eq!(snap.max_wait_us, shrunk_to.as_micros() as u64);
}
