//! End-to-end tracing: one served request must leave batch-assembly,
//! batch-execution and per-layer spans in the global trace recorder.

use std::sync::Arc;
use std::time::Duration;

use dsx_nn::{GlobalAvgPool, Layer, Linear, ReLU, Sequential};
use dsx_serve::{ServeConfig, ServeEngine};
use dsx_tensor::Tensor;

#[test]
fn traced_request_produces_assemble_batch_and_layer_spans() {
    let model: Arc<dyn Layer> = Arc::new(
        Sequential::new("traced-serve")
            .push(ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(2, 3, 7)),
    );
    dsx_obs::enable(true);
    let engine = ServeEngine::start(
        model,
        ServeConfig::default()
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1)),
    );
    let handle = engine.handle();
    let out = handle.infer(Tensor::randn(&[1, 2, 4, 4], 3)).unwrap();
    assert_eq!(out.shape(), &[1, 3]);
    drop(handle);
    engine.shutdown();
    dsx_obs::enable(false);

    let events = dsx_obs::trace::collected_events();
    let has = |cat: &str, name: &str| {
        events
            .iter()
            .any(|e| e.cat == cat && e.name.starts_with(name))
    };
    assert!(has("serve", "serve.assemble"), "missing assembly span");
    assert!(has("serve", "serve.batch"), "missing batch span");
    assert!(has("layer", "0:ReLU"), "missing per-layer span");
    assert!(has("layer", "2:Linear"), "missing per-layer span");

    // The batch span carries its occupancy as a numeric argument.
    let batch = events
        .iter()
        .find(|e| e.name == "serve.batch")
        .expect("batch span");
    assert_eq!(batch.arg, Some(("batch", 1)));

    // And the whole thing renders as Chrome trace JSON with X phases.
    let json = dsx_obs::trace::chrome_trace_json();
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("serve.batch"));
}
