//! Concurrency parity: a model shared behind an `Arc` and hammered by many
//! threads through the batching engine must produce exactly the outputs a
//! single-threaded `forward(train=false)` pass produces — the race-freedom
//! acceptance test of the shared-state inference path.

use dsx_core::BackendKind;
use dsx_serve::{request_input, ServeConfig, ServeEngine};
use dsx_tensor::{allclose, Tensor, TEST_TOLERANCE};
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 8;

fn spec() -> dsx_models::ModelSpec {
    // Small enough to keep the test quick, deep enough to cross every layer
    // kind the serving tower uses (dense conv, DW, SCC, BN, pooling, linear).
    dsx_serve::serving_spec_with(32, 2)
}

#[test]
fn concurrent_batched_inference_matches_single_threaded_forward() {
    // One deterministic kernel thread: any cross-request data race would
    // come from the engine itself, which is the point of the test.
    dsx_tensor::set_num_threads(1);
    for backend in BackendKind::ALL {
        let shared = dsx_serve::build_serving_model(&spec(), backend);
        // An identically-seeded twin provides the single-threaded oracle
        // through the training-path entry point.
        let mut oracle = dsx_models::build_model_with_backend(
            &spec(),
            0x5E21E,
            dsx_core::SccImplementation::Dsxplore,
            backend,
        );

        let engine = ServeEngine::start(
            Arc::clone(&shared),
            ServeConfig::default()
                .with_workers(THREADS)
                .with_max_batch(8)
                .with_max_wait(Duration::from_millis(2)),
        );
        let outputs: Vec<Vec<(u64, Tensor)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let handle = engine.handle();
                    scope.spawn(move || {
                        (0..REQUESTS_PER_THREAD)
                            .map(|i| {
                                let seed = (t * 1000 + i) as u64;
                                let out = handle
                                    .infer(request_input(seed))
                                    .expect("engine shut down mid-test");
                                (seed, out)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let report = engine.shutdown();
        assert_eq!(report.requests, THREADS * REQUESTS_PER_THREAD, "{backend}");

        for (seed, served) in outputs.into_iter().flatten() {
            let expected = {
                use dsx_nn::Layer;
                oracle.forward(&request_input(seed), false)
            };
            assert!(
                allclose(&served, &expected, TEST_TOLERANCE),
                "{backend}: request {seed} diverges between concurrent batched \
                 infer and single-threaded forward(train=false)"
            );
        }
    }
}

#[test]
fn backends_agree_through_the_engine() {
    dsx_tensor::set_num_threads(1);
    let spec = spec();
    let naive = dsx_serve::build_serving_model(&spec, BackendKind::Naive);
    let blocked = dsx_serve::build_serving_model(&spec, BackendKind::Blocked);
    let input = request_input(99);
    let engine = ServeEngine::start(blocked, ServeConfig::default().with_workers(1));
    let handle = engine.handle();
    let served = handle.infer(input.clone()).unwrap();
    drop(handle);
    engine.shutdown();
    assert!(allclose(&served, &naive.infer(&input), 1e-3));
}
