//! Adversarial load shapes against the adaptive `max_wait` controller.
//!
//! The happy paths (one trickle phase, one saturating phase) live in
//! `tests/adaptive.rs`; this file attacks the controller with the shapes
//! that historically break occupancy tuners:
//!
//! * **burst–silence square waves** — saturation must shrink the wait on
//!   every burst, and the trickle after every burst must re-expand it:
//!   the controller may not stay latched at zero once saturation ends;
//! * **a ramp past saturation** — once the queue crosses the saturation
//!   depth, the wait must move monotonically down, never up, no matter
//!   how the ramp continues;
//! * **deadline-carrying trickle below saturation** — an engine that is
//!   never saturated must serve every deadline-tagged request: the shed
//!   and drop counters stay at exactly zero.
//!
//! The square-wave and ramp tests drive the pure [`AdaptiveWait::step`]
//! function with synthetic epochs, so they are deterministic; the engine
//! test polls with generous deadlines like `tests/adaptive.rs`.

use dsx_nn::{GlobalAvgPool, Layer, Linear, ReLU, Sequential};
use dsx_serve::{
    AdaptiveWait, AdaptiveWaitConfig, EpochObservation, ServeConfig, ServeEngine, WaitAdjustment,
};
use dsx_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn obs(batches: usize, requests: usize, queue_depth: usize) -> EpochObservation {
    EpochObservation {
        batches,
        requests,
        queue_depth,
    }
}

/// A saturated epoch for a `max_batch = 8` controller: full batches over a
/// queue two batches deep.
fn burst_epoch() -> EpochObservation {
    obs(16, 128, 16)
}

/// A trickle epoch: mostly-empty batches, empty queue — the shape a raise
/// exists for.
fn trickle_epoch() -> EpochObservation {
    obs(6, 7, 0)
}

#[test]
fn square_wave_load_shrinks_on_every_burst_and_reexpands_after_it() {
    let ctl = AdaptiveWait::new(AdaptiveWaitConfig::default(), 8);
    let cap = ctl.config().max_wait;
    let mut wait = Duration::from_micros(2000);

    for cycle in 0..3 {
        // Burst half of the wave: every epoch must shrink (or hold once at
        // the floor) — and it must reach the floor well within 32 epochs.
        let before_burst = wait;
        for _ in 0..32 {
            let (next, adj) = ctl.step(burst_epoch(), wait);
            assert_ne!(
                adj,
                WaitAdjustment::Raised,
                "cycle {cycle}: a saturated epoch must never raise"
            );
            wait = next;
            if wait == ctl.config().min_wait {
                break;
            }
        }
        assert_eq!(
            wait,
            ctl.config().min_wait,
            "cycle {cycle}: the burst must drive the wait to the floor \
             (started the burst at {before_burst:?})"
        );

        // Silence teaches nothing: the wait must hold, not drift.
        for _ in 0..8 {
            let (next, adj) = ctl.step(obs(0, 0, 0), wait);
            assert_eq!(adj, WaitAdjustment::Held, "cycle {cycle}: idle epoch moved");
            assert_eq!(next, wait, "cycle {cycle}: idle epoch changed the wait");
        }

        // The trickle after the burst must re-expand from the floor all the
        // way back to the cap — the controller may not latch at zero.
        let mut raises = 0;
        for _ in 0..32 {
            let (next, adj) = ctl.step(trickle_epoch(), wait);
            if adj == WaitAdjustment::Raised {
                assert!(next > wait, "cycle {cycle}: a raise must grow the wait");
                raises += 1;
            }
            wait = next;
            if wait == cap {
                break;
            }
        }
        assert!(
            raises >= 2,
            "cycle {cycle}: re-expansion must be a multiplicative climb"
        );
        assert_eq!(
            wait, cap,
            "cycle {cycle}: the post-burst trickle must re-expand the wait to the cap"
        );
    }
}

#[test]
fn a_ramp_past_saturation_only_ever_shrinks_once_it_crosses() {
    let ctl = AdaptiveWait::new(AdaptiveWaitConfig::default(), 8);
    // Saturation depth for max_batch = 8 at the default 1.0 batches.
    let saturation_depth = 8;
    let mut wait = Duration::from_micros(2000);
    let mut crossed = false;
    let mut wait_at_crossing = wait;

    // Queue depth ramps 0, 2, 4, ... 40: from idle through saturation and
    // far past it, with occupancy filling in as the queue builds.
    for depth in (0..=40).step_by(2) {
        let requests_per_batch = (depth + 1).min(8);
        let (next, adj) = ctl.step(obs(8, 8 * requests_per_batch, depth), wait);
        if depth >= saturation_depth {
            if !crossed {
                crossed = true;
                wait_at_crossing = wait;
            }
            assert_ne!(
                adj,
                WaitAdjustment::Raised,
                "depth {depth}: raised past the saturation threshold"
            );
            assert!(
                next <= wait,
                "depth {depth}: the wait must be monotone non-increasing past saturation"
            );
        }
        wait = next;
    }
    assert!(crossed, "the ramp must have crossed saturation");
    assert!(
        wait < wait_at_crossing,
        "the saturated tail of the ramp must have shrunk the wait \
         ({wait:?} vs {wait_at_crossing:?} at crossing)"
    );
    assert_eq!(
        wait.max(ctl.config().min_wait),
        wait,
        "clamped at the floor"
    );
}

fn tiny_model() -> Arc<dyn Layer> {
    Arc::new(
        Sequential::new("tiny-adversarial")
            .push(ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(2, 3, 13)),
    )
}

fn request(seed: u64) -> Tensor {
    Tensor::randn(&[1, 2, 4, 4], seed)
}

/// A burst then a trickle against a live engine, every request carrying a
/// generous deadline: the burst must shrink `max_wait`, the trickle after
/// it must re-expand it, and — the fault-tolerance invariant — nothing is
/// ever shed or dropped because the engine never runs past its budget.
#[test]
fn after_a_real_burst_the_wait_reexpands_and_nothing_was_shed() {
    let initial = Duration::from_micros(400);
    let budget = Some(Duration::from_secs(30));
    let engine = ServeEngine::start(
        tiny_model(),
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_queue_capacity(16)
            .with_max_wait(initial)
            .with_adaptive(AdaptiveWaitConfig {
                epoch: Duration::from_millis(15),
                max_wait: Duration::from_millis(8),
                ..AdaptiveWaitConfig::default()
            }),
    );
    let handle = engine.handle();

    // Burst: 8 clients hammer the engine until the controller shrinks the
    // wait below its starting point.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for client in 0..8u64 {
            let handle = engine.handle();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    handle
                        .submit_deadline(request(client * 1_000_000 + i), budget)
                        .expect("engine died mid-burst")
                        .wait()
                        .expect("a 30 s budget must never expire in-test");
                    i += 1;
                }
            });
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while engine.max_wait() >= initial {
            assert!(
                Instant::now() < deadline,
                "the burst never shrank max_wait below {initial:?} (stuck at {:?})",
                engine.max_wait()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let after_burst = engine.max_wait();
    assert!(after_burst < initial, "burst must shrink: {after_burst:?}");

    // Trickle: paced round trips, still deadline-tagged. The controller
    // must climb back above the post-burst wait — it ended the burst at or
    // near zero, and a latched-at-zero controller would fail here.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut seed = 1_000_000_000u64;
    while engine.max_wait() <= after_burst {
        assert!(
            Instant::now() < deadline,
            "max_wait never re-expanded above the post-burst {after_burst:?} \
             (stuck at {:?})",
            engine.max_wait()
        );
        handle
            .submit_deadline(request(seed), budget)
            .expect("engine died mid-trickle")
            .wait()
            .expect("a 30 s budget must never expire in-test");
        seed += 1;
        std::thread::sleep(Duration::from_millis(4));
    }
    assert!(engine.max_wait() > after_burst, "trickle must re-expand");

    drop(handle);
    let snap = engine.shutdown();
    assert!(snap.adaptive_shrinks > 0, "shrinks recorded: {snap}");
    assert!(snap.adaptive_raises > 0, "raises recorded: {snap}");
    assert_eq!(
        snap.shed_requests, 0,
        "nothing ran past a 30 s budget below saturation: {snap}"
    );
    assert_eq!(snap.dropped_requests, 0, "nothing was dropped: {snap}");
}
