//! Hot swap under concurrent load: the zero-drop guarantee.
//!
//! Client threads hammer the engine while the main thread repeatedly swaps
//! the model. Every single request must be served (no errors, no drops),
//! the swap generation must climb monotonically, and each response must
//! match one of the two models bit-for-bit — a batch is never served by a
//! half-installed model.

use dsx_nn::{GlobalAvgPool, Layer, Linear, ReLU, Sequential};
use dsx_serve::{ServeConfig, ServeEngine};
use dsx_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model(seed: u64) -> Arc<dyn Layer> {
    Arc::new(
        Sequential::new("hot-swap")
            .push(ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(2, 3, seed)),
    )
}

#[test]
fn concurrent_clients_observe_zero_drops_across_swaps() {
    const CLIENTS: usize = 6;
    const SWAPS: u64 = 8;
    let v1 = model(7);
    let v2 = model(99);
    // One fixed probe input, so every response must equal v1's or v2's
    // output on it exactly.
    let probe = Tensor::randn(&[1, 2, 4, 4], 5);
    let expect_v1 = v1.infer(&probe);
    let expect_v2 = v2.infer(&probe);

    let engine = ServeEngine::start(
        Arc::clone(&v1),
        ServeConfig::default()
            .with_workers(3)
            .with_max_batch(4)
            .with_max_wait(Duration::from_micros(300)),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let handle = engine.handle();
            let probe = probe.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    handle.infer(probe.clone()).expect("a request was dropped");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Alternate v1 <-> v2 under load; the generation must climb by exactly
    // one per swap and the swap itself should be quick (it only replaces
    // an Arc behind a briefly-held write lock).
    let mut last_generation = engine.swap_generation();
    assert_eq!(last_generation, 0);
    let mut worst_swap = Duration::ZERO;
    for i in 0..SWAPS {
        std::thread::sleep(Duration::from_millis(15));
        let next = if i % 2 == 0 { &v2 } else { &v1 };
        let begin = Instant::now();
        let generation = engine.swap_model(Arc::clone(next));
        worst_swap = worst_swap.max(begin.elapsed());
        assert_eq!(
            generation,
            last_generation + 1,
            "generation must be monotonic"
        );
        last_generation = generation;
    }
    stop.store(true, Ordering::Relaxed);
    let served: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let snap = engine.shutdown();

    assert!(served > 0, "the clients never got a request through");
    assert_eq!(snap.requests, served, "every submitted request was served");
    assert_eq!(snap.dropped_requests, 0, "hot swap must drop zero requests");
    assert_eq!(snap.swap_generation, SWAPS);
    assert!(
        worst_swap < Duration::from_secs(1),
        "swap took {worst_swap:?}; it should only replace an Arc"
    );
    println!("worst swap_model latency under load: {worst_swap:?}");

    // Spot-check atomicity: a fresh engine's response flips between the two
    // expected outputs and nothing else.
    let engine = ServeEngine::start(Arc::clone(&v1), ServeConfig::default().with_workers(1));
    let handle = engine.handle();
    let before = handle.infer(probe.clone()).unwrap();
    assert_eq!(before.as_slice(), expect_v1.as_slice());
    engine.swap_model(Arc::clone(&v2));
    let after = handle.infer(probe.clone()).unwrap();
    assert_eq!(after.as_slice(), expect_v2.as_slice());
    drop(handle);
    engine.shutdown();
}
