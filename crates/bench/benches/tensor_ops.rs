//! Substrate microbenchmarks: GEMM variants, im2col lowering and the channel
//! slicing/concatenation operators that the composition baselines are built
//! from (the ablation benches called out in DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsx_tensor::conv::im2col;
use dsx_tensor::matmul::{matmul_blocked, matmul_naive, matmul_parallel};
use dsx_tensor::Tensor;
use std::hint::black_box;

fn bench_gemm_variants(c: &mut Criterion) {
    let (m, k, n) = (96usize, 128usize, 96usize);
    let a = Tensor::randn(&[m, k], 1).into_vec();
    let b = Tensor::randn(&[k, n], 2).into_vec();
    let mut group = c.benchmark_group("gemm_variants");
    group.sample_size(10);
    group.bench_function("naive", |bch| {
        bch.iter(|| black_box(matmul_naive(black_box(&a), black_box(&b), m, k, n)))
    });
    group.bench_function("blocked", |bch| {
        bch.iter(|| black_box(matmul_blocked(black_box(&a), black_box(&b), m, k, n)))
    });
    group.bench_function("parallel", |bch| {
        bch.iter(|| black_box(matmul_parallel(black_box(&a), black_box(&b), m, k, n)))
    });
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group.sample_size(10);
    for hw in [16usize, 32] {
        let input = Tensor::randn(&[4, 16, hw, hw], 3);
        group.bench_function(BenchmarkId::from_parameter(hw), |b| {
            b.iter(|| black_box(im2col(black_box(&input), 3, 1, 1)))
        });
    }
    group.finish();
}

fn bench_channel_ops(c: &mut Criterion) {
    let input = Tensor::randn(&[8, 64, 16, 16], 4);
    let mut group = c.benchmark_group("channel_ops");
    group.sample_size(10);
    group.bench_function("narrow_cyclic", |b| {
        b.iter(|| black_box(input.narrow_channels_cyclic(black_box(48), 32)))
    });
    group.bench_function("cat_channels_x4", |b| {
        let parts = input.split_channels(4);
        let refs: Vec<&Tensor> = parts.iter().collect();
        b.iter(|| black_box(Tensor::cat_channels(black_box(&refs))))
    });
    group.bench_function("repeat_channels_x4", |b| {
        b.iter(|| black_box(input.repeat_channels(4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_variants,
    bench_im2col,
    bench_channel_ops
);
criterion_main!(benches);
