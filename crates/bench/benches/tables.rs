//! Benches regenerating the table workloads: the analytic cost sweeps behind
//! Tables I–IV and the inference latency estimate of Table V.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsx_core::SccImplementation;
use dsx_gpusim::{estimate_inference, GpuModel};
use dsx_models::{ConvScheme, Dataset, ModelKind};
use std::hint::black_box;

fn bench_table2_model_specs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_model_specs");
    group.sample_size(20);
    for kind in ModelKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let origin = kind.spec(Dataset::Cifar10, ConvScheme::Origin);
                let dsx = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
                black_box((origin.mflops(), origin.params(), dsx.mflops(), dsx.params()))
            })
        });
    }
    group.finish();
}

fn bench_table4_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_mobilenet_ablation");
    group.sample_size(20);
    for cg in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(format!("cg{cg}")), |b| {
            b.iter(|| {
                let gpw = ModelKind::MobileNet.spec(Dataset::Cifar10, ConvScheme::DwGpw { cg });
                let scc =
                    ModelKind::MobileNet.spec(Dataset::Cifar10, ConvScheme::DwScc { cg, co: 0.5 });
                black_box((gpw.params(), scc.params()))
            })
        });
    }
    group.finish();
}

fn bench_table5_inference(c: &mut Criterion) {
    let gpu = GpuModel::v100();
    let gpw = ModelKind::Vgg16.spec(Dataset::Cifar10, ConvScheme::DwGpw { cg: 2 });
    let scc = ModelKind::Vgg16.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
    let mut group = c.benchmark_group("table5_inference");
    group.sample_size(20);
    for batch in [16usize, 128, 512] {
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| {
                let a = estimate_inference(&gpu, &gpw, batch, SccImplementation::Dsxplore);
                let d = estimate_inference(&gpu, &scc, batch, SccImplementation::Dsxplore);
                black_box((a.total_s, d.total_s))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table2_model_specs,
    bench_table4_ablation,
    bench_table5_inference
);
criterion_main!(benches);
