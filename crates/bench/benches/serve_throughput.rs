//! Serving throughput workload: batched engine vs. serial-unbatched
//! requests, per kernel backend, with a machine-readable report for the CI
//! `serve` gate.
//!
//! Writes `BENCH_PR3.json` at the repo root (override with
//! `DSX_SERVE_BENCH_JSON`) and exits non-zero when the blocked backend's
//! batched-over-serial speedup at `max_batch = 8` falls below
//! `DSX_SERVE_MIN_SPEEDUP` (the CI serve gate sets `2.0`).
//!
//! Environment knobs:
//!
//! * `DSX_SERVE_BENCH_JSON` — output path (default `<repo>/BENCH_PR3.json`).
//! * `DSX_SERVE_REQUESTS` — batched request count (default 128).
//! * `DSX_SERVE_MIN_SPEEDUP` — when set, enforce the gate.
//! * `DSX_OBS_MAX_OVERHEAD` — when set, enforce that *enabling* dsx-obs
//!   tracing costs at most this factor of batched throughput (the
//!   disabled-tracing cost is already inside every number above — spans are
//!   always compiled in — so the `DSX_SERVE_MIN_SPEEDUP` gate guards it).
//!
//! Both kernel-level threading and the engine's worker pool are pinned to
//! ONE thread so the measured speedup isolates request *batching*: the
//! serial baseline is one thread issuing one request per forward pass, the
//! engine is the same single thread fusing up to `max_batch` requests per
//! pass. On a multi-core runner a worker pool would clear the gate by
//! parallelism alone and a batching regression (occupancy collapsing to 1)
//! would slip through. The `dsx-serve` binary's CI smoke still runs the
//! default multi-worker pool.

use dsx_core::BackendKind;
use dsx_serve::{build_serving_model, run_load, run_serial, serving_spec, LoadConfig, ServeConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const MAX_BATCH: usize = 8;
const MAX_WAIT: Duration = Duration::from_micros(2000);
const CONCURRENCY: usize = 16;
const DEFAULT_REQUESTS: usize = 128;
/// One worker on purpose — see the module docs: the gate measures batching,
/// not core count.
const WORKERS: usize = 1;

/// One backend's measurements.
struct BackendRow {
    backend: BackendKind,
    serial_rps: f64,
    batched_rps: f64,
    mean_batch_occupancy: f64,
    mean_latency_us: f64,
    p50_latency_us: u64,
    p95_latency_us: u64,
    p99_latency_us: u64,
}

impl BackendRow {
    fn speedup(&self) -> f64 {
        self.batched_rps / self.serial_rps
    }
}

fn json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_SERVE_BENCH_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR3.json")
}

fn render_json(rows: &[BackendRow], obs: &ObsRow, requests: usize, workers: usize) -> String {
    let spec = serving_spec();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/serve-throughput/1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"model\": \"{}\", \"input_hw\": {}, \"classes\": {}, \
         \"mflops_per_request\": {:.2}}},\n",
        spec.name,
        dsx_serve::loadgen::INPUT_HW,
        dsx_serve::loadgen::CLASSES,
        spec.mflops(),
    ));
    out.push_str(&format!(
        "  \"engine\": {{\"max_batch\": {MAX_BATCH}, \"max_wait_us\": {}, \"workers\": {workers}, \
         \"concurrency\": {CONCURRENCY}, \"requests\": {requests}}},\n",
        MAX_WAIT.as_micros(),
    ));
    out.push_str("  \"backends\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"serial_rps\": {:.1}, \"batched_rps\": {:.1}, \
             \"speedup_batched_vs_serial\": {:.3}, \"mean_batch_occupancy\": {:.2}, \
             \"mean_latency_us\": {:.0}, \"p50_latency_us\": {}, \"p95_latency_us\": {}, \
             \"p99_latency_us\": {}}}{}\n",
            row.backend,
            row.serial_rps,
            row.batched_rps,
            row.speedup(),
            row.mean_batch_occupancy,
            row.mean_latency_us,
            row.p50_latency_us,
            row.p95_latency_us,
            row.p99_latency_us,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs\": {{\"disabled_rps\": {:.1}, \"enabled_rps\": {:.1}, \
         \"enabled_overhead\": {:.3}, \"disabled_span_ns\": {:.2}}},\n",
        obs.disabled_rps,
        obs.enabled_rps,
        obs.overhead(),
        obs.disabled_span_ns,
    ));
    let blocked = rows
        .iter()
        .find(|r| r.backend == BackendKind::Blocked)
        .map(|r| format!("{:.3}", r.speedup()))
        .unwrap_or_else(|| "null".to_string());
    out.push_str(&format!(
        "  \"blocked_speedup_batched_vs_serial\": {blocked}\n"
    ));
    out.push_str("}\n");
    out
}

/// What the tracing layer costs: batched throughput with recording on vs.
/// off (same engine shape as the gate rows), and the per-call price of a
/// disabled span.
struct ObsRow {
    disabled_rps: f64,
    enabled_rps: f64,
    disabled_span_ns: f64,
}

impl ObsRow {
    /// > 1.0 means enabling tracing slowed serving down by that factor.
    fn overhead(&self) -> f64 {
        self.disabled_rps / self.enabled_rps.max(1e-9)
    }
}

/// Median batched throughput over `runs` load runs.
fn median_batched_rps(model: &Arc<dyn dsx_nn::Layer>, requests: usize, runs: usize) -> f64 {
    let mut rps: Vec<f64> = (0..runs)
        .map(|_| {
            run_load(
                Arc::clone(model),
                &LoadConfig {
                    requests,
                    concurrency: CONCURRENCY,
                    engine: ServeConfig::default()
                        .with_max_batch(MAX_BATCH)
                        .with_max_wait(MAX_WAIT)
                        .with_workers(WORKERS),
                },
            )
            .throughput_rps
        })
        .collect();
    rps.sort_by(|a, b| a.total_cmp(b));
    rps[rps.len() / 2]
}

/// Enabled-vs-disabled tracing cost on the blocked backend. Runs
/// interleave (off, on, off, on, ...) so drift in machine load lands on
/// both sides of the ratio.
fn measure_obs_overhead(requests: usize) -> ObsRow {
    let model = build_serving_model(&serving_spec(), BackendKind::Blocked);
    run_serial(&*model, 2); // warm
    const RUNS: usize = 3;
    let (mut off, mut on) = (Vec::with_capacity(RUNS), Vec::with_capacity(RUNS));
    for _ in 0..RUNS {
        dsx_obs::enable(false);
        off.push(median_batched_rps(&model, requests, 1));
        dsx_obs::enable(true);
        on.push(median_batched_rps(&model, requests, 1));
    }
    dsx_obs::enable(false);
    off.sort_by(|a, b| a.total_cmp(b));
    on.sort_by(|a, b| a.total_cmp(b));

    // The hot-path contract, priced directly: one disabled span call.
    let iters = 1_000_000u64;
    let started = std::time::Instant::now();
    for i in 0..iters {
        // Create + drop, the real per-call shape of a disabled span.
        let guard = dsx_obs::span_arg("bench", "obs.disabled", "i", std::hint::black_box(i));
        std::hint::black_box(&guard);
    }
    let disabled_span_ns = started.elapsed().as_nanos() as f64 / iters as f64;

    ObsRow {
        disabled_rps: off[RUNS / 2],
        enabled_rps: on[RUNS / 2],
        disabled_span_ns,
    }
}

fn main() {
    // One kernel thread per forward pass: request-level parallelism (the
    // engine's worker pool) is part of what is being measured; kernel-level
    // threads oversubscribing it is not.
    dsx_tensor::set_num_threads(1);
    let requests = std::env::var("DSX_SERVE_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_REQUESTS);
    let workers = WORKERS;
    let spec = serving_spec();
    println!(
        "serve throughput workload: {} ({:.2} MFLOPs/request), {} requests, \
         max_batch {MAX_BATCH}, {} workers",
        spec.name,
        spec.mflops(),
        requests,
        workers
    );

    let mut rows = Vec::new();
    for backend in BackendKind::ALL {
        let model = build_serving_model(&spec, backend);
        // Warm both code paths (page-in weights, JIT-ish first-call costs).
        run_serial(&*model, 2);
        let serial = run_serial(&*model, (requests / 2).max(8));
        let snapshot = run_load(
            Arc::clone(&model),
            &LoadConfig {
                requests,
                concurrency: CONCURRENCY,
                engine: ServeConfig::default()
                    .with_max_batch(MAX_BATCH)
                    .with_max_wait(MAX_WAIT)
                    .with_workers(workers),
            },
        );
        println!(
            "  {:<8} serial {:>8.1} req/s | batched {:>8.1} req/s | {:.2}x | occupancy {:.2} | \
             latency mean {:.0} us, p50 {} us, p99 {} us",
            backend.name(),
            serial.throughput_rps,
            snapshot.throughput_rps,
            snapshot.throughput_rps / serial.throughput_rps,
            snapshot.mean_batch_occupancy,
            snapshot.mean_latency_us,
            snapshot.p50_latency_us,
            snapshot.p99_latency_us,
        );
        rows.push(BackendRow {
            backend,
            serial_rps: serial.throughput_rps,
            batched_rps: snapshot.throughput_rps,
            mean_batch_occupancy: snapshot.mean_batch_occupancy,
            mean_latency_us: snapshot.mean_latency_us,
            p50_latency_us: snapshot.p50_latency_us,
            p95_latency_us: snapshot.p95_latency_us,
            p99_latency_us: snapshot.p99_latency_us,
        });
    }

    let obs = measure_obs_overhead(requests);
    println!(
        "  obs      tracing off {:>8.1} req/s | on {:>8.1} req/s | {:.3}x overhead | \
         disabled span {:.2} ns/call",
        obs.disabled_rps,
        obs.enabled_rps,
        obs.overhead(),
        obs.disabled_span_ns,
    );

    let json = render_json(&rows, &obs, requests, workers);
    let path = json_path();
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("cannot write serve report {}: {e}", path.display()));
    println!("  wrote {}", path.display());

    if let Ok(max) = std::env::var("DSX_OBS_MAX_OVERHEAD") {
        let max: f64 = max
            .parse()
            .unwrap_or_else(|e| panic!("DSX_OBS_MAX_OVERHEAD must be a float: {e}"));
        let got = obs.overhead();
        if got > max {
            eprintln!(
                "OBS GATE FAILED: enabling tracing costs {got:.3}x batched throughput \
                 (allowed {max:.3}x)"
            );
            std::process::exit(1);
        }
        println!("  obs gate passed: {got:.3}x <= {max:.3}x");
    }

    if let Ok(min) = std::env::var("DSX_SERVE_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .unwrap_or_else(|e| panic!("DSX_SERVE_MIN_SPEEDUP must be a float: {e}"));
        let got = rows
            .iter()
            .find(|r| r.backend == BackendKind::Blocked)
            .expect("blocked backend was measured")
            .speedup();
        if got < min {
            eprintln!(
                "SERVE GATE FAILED: batched throughput is only {got:.2}x serial-unbatched \
                 at max_batch={MAX_BATCH} on the blocked backend (required {min:.2}x)"
            );
            std::process::exit(1);
        }
        println!("  serve gate passed: {got:.2}x >= {min:.2}x");
    }
}
