//! Serving throughput workload: batched engine vs. serial-unbatched
//! requests, per kernel backend, with a machine-readable report for the CI
//! `serve` gate.
//!
//! Writes `BENCH_PR3.json` at the repo root (override with
//! `DSX_SERVE_BENCH_JSON`) and exits non-zero when the blocked backend's
//! batched-over-serial speedup at `max_batch = 8` falls below
//! `DSX_SERVE_MIN_SPEEDUP` (the CI serve gate sets `2.0`).
//!
//! Environment knobs:
//!
//! * `DSX_SERVE_BENCH_JSON` — output path (default `<repo>/BENCH_PR3.json`).
//! * `DSX_SERVE_REQUESTS` — batched request count (default 128).
//! * `DSX_SERVE_MIN_SPEEDUP` — when set, enforce the gate.
//!
//! Both kernel-level threading and the engine's worker pool are pinned to
//! ONE thread so the measured speedup isolates request *batching*: the
//! serial baseline is one thread issuing one request per forward pass, the
//! engine is the same single thread fusing up to `max_batch` requests per
//! pass. On a multi-core runner a worker pool would clear the gate by
//! parallelism alone and a batching regression (occupancy collapsing to 1)
//! would slip through. The `dsx-serve` binary's CI smoke still runs the
//! default multi-worker pool.

use dsx_core::BackendKind;
use dsx_serve::{build_serving_model, run_load, run_serial, serving_spec, LoadConfig, ServeConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const MAX_BATCH: usize = 8;
const MAX_WAIT: Duration = Duration::from_micros(2000);
const CONCURRENCY: usize = 16;
const DEFAULT_REQUESTS: usize = 128;
/// One worker on purpose — see the module docs: the gate measures batching,
/// not core count.
const WORKERS: usize = 1;

/// One backend's measurements.
struct BackendRow {
    backend: BackendKind,
    serial_rps: f64,
    batched_rps: f64,
    mean_batch_occupancy: f64,
    mean_latency_us: f64,
    p50_latency_us: u64,
    p95_latency_us: u64,
    p99_latency_us: u64,
}

impl BackendRow {
    fn speedup(&self) -> f64 {
        self.batched_rps / self.serial_rps
    }
}

fn json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_SERVE_BENCH_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR3.json")
}

fn render_json(rows: &[BackendRow], requests: usize, workers: usize) -> String {
    let spec = serving_spec();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/serve-throughput/1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"model\": \"{}\", \"input_hw\": {}, \"classes\": {}, \
         \"mflops_per_request\": {:.2}}},\n",
        spec.name,
        dsx_serve::loadgen::INPUT_HW,
        dsx_serve::loadgen::CLASSES,
        spec.mflops(),
    ));
    out.push_str(&format!(
        "  \"engine\": {{\"max_batch\": {MAX_BATCH}, \"max_wait_us\": {}, \"workers\": {workers}, \
         \"concurrency\": {CONCURRENCY}, \"requests\": {requests}}},\n",
        MAX_WAIT.as_micros(),
    ));
    out.push_str("  \"backends\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"serial_rps\": {:.1}, \"batched_rps\": {:.1}, \
             \"speedup_batched_vs_serial\": {:.3}, \"mean_batch_occupancy\": {:.2}, \
             \"mean_latency_us\": {:.0}, \"p50_latency_us\": {}, \"p95_latency_us\": {}, \
             \"p99_latency_us\": {}}}{}\n",
            row.backend,
            row.serial_rps,
            row.batched_rps,
            row.speedup(),
            row.mean_batch_occupancy,
            row.mean_latency_us,
            row.p50_latency_us,
            row.p95_latency_us,
            row.p99_latency_us,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let blocked = rows
        .iter()
        .find(|r| r.backend == BackendKind::Blocked)
        .map(|r| format!("{:.3}", r.speedup()))
        .unwrap_or_else(|| "null".to_string());
    out.push_str(&format!(
        "  \"blocked_speedup_batched_vs_serial\": {blocked}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    // One kernel thread per forward pass: request-level parallelism (the
    // engine's worker pool) is part of what is being measured; kernel-level
    // threads oversubscribing it is not.
    dsx_tensor::set_num_threads(1);
    let requests = std::env::var("DSX_SERVE_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_REQUESTS);
    let workers = WORKERS;
    let spec = serving_spec();
    println!(
        "serve throughput workload: {} ({:.2} MFLOPs/request), {} requests, \
         max_batch {MAX_BATCH}, {} workers",
        spec.name,
        spec.mflops(),
        requests,
        workers
    );

    let mut rows = Vec::new();
    for backend in BackendKind::ALL {
        let model = build_serving_model(&spec, backend);
        // Warm both code paths (page-in weights, JIT-ish first-call costs).
        run_serial(&*model, 2);
        let serial = run_serial(&*model, (requests / 2).max(8));
        let snapshot = run_load(
            Arc::clone(&model),
            &LoadConfig {
                requests,
                concurrency: CONCURRENCY,
                engine: ServeConfig::default()
                    .with_max_batch(MAX_BATCH)
                    .with_max_wait(MAX_WAIT)
                    .with_workers(workers),
            },
        );
        println!(
            "  {:<8} serial {:>8.1} req/s | batched {:>8.1} req/s | {:.2}x | occupancy {:.2} | \
             latency mean {:.0} us, p50 {} us, p99 {} us",
            backend.name(),
            serial.throughput_rps,
            snapshot.throughput_rps,
            snapshot.throughput_rps / serial.throughput_rps,
            snapshot.mean_batch_occupancy,
            snapshot.mean_latency_us,
            snapshot.p50_latency_us,
            snapshot.p99_latency_us,
        );
        rows.push(BackendRow {
            backend,
            serial_rps: serial.throughput_rps,
            batched_rps: snapshot.throughput_rps,
            mean_batch_occupancy: snapshot.mean_batch_occupancy,
            mean_latency_us: snapshot.mean_latency_us,
            p50_latency_us: snapshot.p50_latency_us,
            p95_latency_us: snapshot.p95_latency_us,
            p99_latency_us: snapshot.p99_latency_us,
        });
    }

    let json = render_json(&rows, requests, workers);
    let path = json_path();
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("cannot write serve report {}: {e}", path.display()));
    println!("  wrote {}", path.display());

    if let Ok(min) = std::env::var("DSX_SERVE_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .unwrap_or_else(|e| panic!("DSX_SERVE_MIN_SPEEDUP must be a float: {e}"));
        let got = rows
            .iter()
            .find(|r| r.backend == BackendKind::Blocked)
            .expect("blocked backend was measured")
            .speedup();
        if got < min {
            eprintln!(
                "SERVE GATE FAILED: batched throughput is only {got:.2}x serial-unbatched \
                 at max_batch={MAX_BATCH} on the blocked backend (required {min:.2}x)"
            );
            std::process::exit(1);
        }
        println!("  serve gate passed: {got:.2}x >= {min:.2}x");
    }
}
