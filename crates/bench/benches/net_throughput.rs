//! Network-path serving throughput: batched serving over a real TCP
//! socket vs. the serial-unbatched network baseline, per kernel backend,
//! with a machine-readable report for the CI `serve` gate.
//!
//! Writes `BENCH_PR4.json` at the repo root (override with
//! `DSX_NET_BENCH_JSON`) and exits non-zero when the blocked backend
//! misses either gate:
//!
//! * `DSX_NET_MIN_SPEEDUP` — required batched-over-serial speedup at
//!   `max_batch = 8` (the acceptance bar is 1.5);
//! * `DSX_NET_MIN_RPS` — required absolute batched network throughput in
//!   requests/second (set generously for shared runners).
//!
//! A third measurement reruns the blocked batched load through the
//! fault-tolerant client path — `infer_retry` under the default
//! [`RetryPolicy`] plus a generous per-request deadline — and writes
//! `BENCH_PR10.json` (override with `DSX_NET_RESILIENCE_JSON`). On the
//! happy path none of that machinery fires, so its cost must be noise:
//!
//! * `DSX_NET_MAX_RETRY_OVERHEAD` — maximum allowed
//!   `plain_rps / resilient_rps` ratio (the acceptance bar is 1.05,
//!   i.e. retry/deadline plumbing may cost at most 5% throughput).
//!
//! Other knobs: `DSX_NET_REQUESTS` (batched request count, default 96).
//!
//! Methodology mirrors `serve_throughput`, moved onto the wire:
//!
//! * the **serial baseline** is its own server at `max_batch = 1` (so a
//!   lone connection pays no batch-formation wait) driven by ONE
//!   connection doing blocking round trips — one request per forward pass,
//!   plus the full protocol cost: encode, syscalls, loopback RTT, decode;
//! * the **batched run** is a fresh server at `max_batch = 8` driven by 16
//!   concurrent connections, everything else identical.
//!
//! Kernel threads and the engine worker pool are pinned to ONE thread so
//! the measured speedup isolates request batching (plus the protocol's
//! ability to keep the batcher fed), not core count.

use dsx_core::BackendKind;
use dsx_net::{run_net_load, NetLoadConfig, NetLoadReport, NetServer, RetryPolicy};
use dsx_serve::loadgen::INPUT_HW;
use dsx_serve::{build_serving_model, serving_spec, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAX_BATCH: usize = 8;
const MAX_WAIT: Duration = Duration::from_micros(2000);
const CONCURRENCY: usize = 16;
const DEFAULT_REQUESTS: usize = 96;
/// One worker on purpose — see the module docs: the gate measures
/// batching, not core count.
const WORKERS: usize = 1;

/// One backend's measurements.
struct BackendRow {
    backend: BackendKind,
    serial: NetLoadReport,
    batched: NetLoadReport,
}

impl BackendRow {
    fn speedup(&self) -> f64 {
        self.batched.throughput_rps / self.serial.throughput_rps
    }
}

/// A happy-path deadline far above any loopback round trip: the wire
/// carries it and the engine checks it, but nothing ever expires.
const RESILIENT_DEADLINE: Duration = Duration::from_secs(30);

fn json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_NET_BENCH_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR4.json")
}

fn resilience_json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_NET_RESILIENCE_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json")
}

fn render_json(rows: &[BackendRow], requests: usize) -> String {
    let spec = serving_spec();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/net-throughput/1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"model\": \"{}\", \"input_hw\": {}, \
         \"mflops_per_request\": {:.2}, \"transport\": \"tcp-loopback\"}},\n",
        spec.name,
        INPUT_HW,
        spec.mflops(),
    ));
    out.push_str(&format!(
        "  \"engine\": {{\"max_batch\": {MAX_BATCH}, \"max_wait_us\": {}, \
         \"workers\": {WORKERS}, \"connections\": {CONCURRENCY}, \"requests\": {requests}}},\n",
        MAX_WAIT.as_micros(),
    ));
    out.push_str("  \"backends\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"serial_rps\": {:.1}, \"batched_rps\": {:.1}, \
             \"speedup_batched_vs_serial\": {:.3}, \"serial_p50_us\": {}, \
             \"batched_p50_us\": {}, \"batched_p95_us\": {}, \"batched_p99_us\": {}}}{}\n",
            row.backend,
            row.serial.throughput_rps,
            row.batched.throughput_rps,
            row.speedup(),
            row.serial.p50_latency_us,
            row.batched.p50_latency_us,
            row.batched.p95_latency_us,
            row.batched.p99_latency_us,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let blocked = rows.iter().find(|r| r.backend == BackendKind::Blocked);
    out.push_str(&format!(
        "  \"blocked_net_speedup_batched_vs_serial\": {},\n",
        blocked
            .map(|r| format!("{:.3}", r.speedup()))
            .unwrap_or_else(|| "null".to_string())
    ));
    out.push_str(&format!(
        "  \"blocked_net_batched_rps\": {}\n",
        blocked
            .map(|r| format!("{:.1}", r.batched.throughput_rps))
            .unwrap_or_else(|| "null".to_string())
    ));
    out.push_str("}\n");
    out
}

/// Renders the fault-tolerance happy-path report: the plain batched
/// blocked run next to the same load through retry + deadline plumbing.
fn render_resilience_json(plain: &NetLoadReport, resilient: &NetLoadReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/net-retry-overhead/1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"backend\": \"blocked\", \"max_batch\": {MAX_BATCH}, \
         \"connections\": {CONCURRENCY}, \"deadline_us\": {}, \"retry_max_attempts\": {}}},\n",
        RESILIENT_DEADLINE.as_micros(),
        RetryPolicy::default().max_attempts,
    ));
    out.push_str(&format!(
        "  \"plain_rps\": {:.1},\n  \"resilient_rps\": {:.1},\n",
        plain.throughput_rps, resilient.throughput_rps,
    ));
    out.push_str(&format!(
        "  \"overhead_plain_over_resilient\": {:.3},\n",
        plain.throughput_rps / resilient.throughput_rps,
    ));
    out.push_str(&format!(
        "  \"resilient_shed_requests\": {},\n  \"resilient_p99_us\": {}\n",
        resilient.shed_requests, resilient.p99_latency_us,
    ));
    out.push_str("}\n");
    out
}

/// Starts a server on an ephemeral loopback port, runs one load shape
/// against it, and shuts it down.
fn measure(backend: BackendKind, max_batch: usize, load: &NetLoadConfig) -> NetLoadReport {
    let model = build_serving_model(&serving_spec(), backend);
    let server = NetServer::start(
        "127.0.0.1:0",
        model,
        ServeConfig::default()
            .with_max_batch(max_batch)
            .with_max_wait(MAX_WAIT)
            .with_workers(WORKERS)
            .with_request_dims(&[3, INPUT_HW, INPUT_HW]),
    )
    .expect("binding the bench server");
    let report = run_net_load(server.local_addr(), load);
    server.shutdown();
    report
}

fn gate(name: &str, env: &str, got: f64) -> bool {
    let Ok(min) = std::env::var(env) else {
        return true;
    };
    let min: f64 = min
        .parse()
        .unwrap_or_else(|e| panic!("{env} must be a float: {e}"));
    if got < min {
        eprintln!("NET GATE FAILED: {name} is {got:.2} (required {min:.2})");
        false
    } else {
        println!("  net gate passed: {name} {got:.2} >= {min:.2}");
        true
    }
}

/// Like [`gate`], but the environment variable is a ceiling: the gate
/// fails when `got` EXCEEDS it. Unset means pass.
fn gate_max(name: &str, env: &str, got: f64) -> bool {
    let Ok(max) = std::env::var(env) else {
        return true;
    };
    let max: f64 = max
        .parse()
        .unwrap_or_else(|e| panic!("{env} must be a float: {e}"));
    if got > max {
        eprintln!("NET GATE FAILED: {name} is {got:.3} (allowed at most {max:.3})");
        false
    } else {
        println!("  net gate passed: {name} {got:.3} <= {max:.3}");
        true
    }
}

fn main() {
    // One kernel thread per forward pass: request-level concurrency is the
    // thing under test.
    dsx_tensor::set_num_threads(1);
    let requests = std::env::var("DSX_NET_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_REQUESTS);
    let spec = serving_spec();
    println!(
        "net throughput workload: {} ({:.2} MFLOPs/request) over TCP loopback, \
         {requests} requests, max_batch {MAX_BATCH}, {WORKERS} worker",
        spec.name,
        spec.mflops(),
    );

    let mut rows = Vec::new();
    for backend in BackendKind::ALL {
        // Warm the connect path and the model once before timing.
        measure(
            backend,
            1,
            &NetLoadConfig {
                requests: 2,
                concurrency: 1,
                ..NetLoadConfig::default()
            },
        );
        let serial = measure(
            backend,
            1,
            &NetLoadConfig {
                requests: (requests / 2).max(8),
                concurrency: 1,
                ..NetLoadConfig::default()
            },
        );
        let batched = measure(
            backend,
            MAX_BATCH,
            &NetLoadConfig {
                requests,
                concurrency: CONCURRENCY,
                ..NetLoadConfig::default()
            },
        );
        println!(
            "  {:<8} serial {:>8.1} req/s | batched {:>8.1} req/s | {:.2}x | \
             batched p50/p99 {}/{} us",
            backend.name(),
            serial.throughput_rps,
            batched.throughput_rps,
            batched.throughput_rps / serial.throughput_rps,
            batched.p50_latency_us,
            batched.p99_latency_us,
        );
        rows.push(BackendRow {
            backend,
            serial,
            batched,
        });
    }

    let json = render_json(&rows, requests);
    let path = json_path();
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("cannot write net report {}: {e}", path.display()));
    println!("  wrote {}", path.display());

    let blocked = rows
        .iter()
        .find(|r| r.backend == BackendKind::Blocked)
        .expect("blocked backend was measured");

    // Fault-tolerance happy path: the identical blocked batched load, but
    // every round trip carries a 30 s deadline and runs through
    // `infer_retry` under the default policy. Nothing expires and nothing
    // retries, so the delta is the pure cost of the plumbing.
    let resilient = measure(
        BackendKind::Blocked,
        MAX_BATCH,
        &NetLoadConfig {
            requests,
            concurrency: CONCURRENCY,
            deadline_us: RESILIENT_DEADLINE.as_micros() as u64,
            retry: Some(RetryPolicy::default()),
        },
    );
    let overhead = blocked.batched.throughput_rps / resilient.throughput_rps;
    println!(
        "  blocked resilient {:>8.1} req/s (plain {:>8.1} req/s, overhead {:.3}x)",
        resilient.throughput_rps, blocked.batched.throughput_rps, overhead,
    );
    let resilience_json = render_resilience_json(&blocked.batched, &resilient);
    let resilience_path = resilience_json_path();
    std::fs::write(&resilience_path, &resilience_json).unwrap_or_else(|e| {
        panic!(
            "cannot write resilience report {}: {e}",
            resilience_path.display()
        )
    });
    println!("  wrote {}", resilience_path.display());
    assert_eq!(
        resilient.shed_requests, 0,
        "a 30 s deadline must never expire on loopback"
    );

    let speedup_ok = gate(
        "blocked batched-vs-serial network speedup",
        "DSX_NET_MIN_SPEEDUP",
        blocked.speedup(),
    );
    let rps_ok = gate(
        "blocked batched network throughput (req/s)",
        "DSX_NET_MIN_RPS",
        blocked.batched.throughput_rps,
    );
    let overhead_ok = gate_max(
        "retry/deadline happy-path overhead (plain/resilient rps)",
        "DSX_NET_MAX_RETRY_OVERHEAD",
        overhead,
    );
    if !(speedup_ok && rps_ok && overhead_ok) {
        std::process::exit(1);
    }
}
