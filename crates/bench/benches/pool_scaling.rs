//! PR5 scaling bench: persistent-pool vs scope-spawn launches, tiled vs
//! blocked kernels at 1 and N threads, and batched serving throughput per
//! backend — written to `BENCH_PR5.json` and gated in CI by
//! `DSX_POOL_MIN_SPEEDUP` / `DSX_TILED_MIN_SPEEDUP` (multi-core hosts
//! only; see `dsx_bench::pr5` for the knobs and skip rules).

use dsx_bench::pr5::{self, Pr5Report, ServeRow};
use dsx_core::BackendKind;
use dsx_serve::{build_serving_model, run_load, serving_spec, LoadConfig, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

const KERNEL_SAMPLES: usize = 11;
const POOL_REPEATS: usize = 11;
const SERVE_REQUESTS: usize = 64;

/// Batched serving throughput for the blocked and tiled backends: one
/// engine worker, `max_batch = 8`, kernel threads at the hardware default
/// so the tiled backend's pool parallelism shows up in the comparison.
fn measure_serve() -> Vec<ServeRow> {
    let spec = serving_spec();
    [BackendKind::Blocked, BackendKind::Tiled]
        .into_iter()
        .map(|backend| {
            let model = build_serving_model(&spec, backend);
            let snapshot = run_load(
                Arc::clone(&model),
                &LoadConfig {
                    requests: SERVE_REQUESTS,
                    concurrency: 8,
                    engine: ServeConfig::default()
                        .with_max_batch(8)
                        .with_max_wait(Duration::from_micros(2000))
                        .with_workers(1),
                },
            );
            ServeRow {
                backend,
                batched_rps: snapshot.throughput_rps,
            }
        })
        .collect()
}

fn main() {
    let cores = pr5::available_cores();
    println!(
        "PR5 scaling bench: {cores} cores, {} launches x {} iters per pool burst",
        pr5::POOL_LAUNCHES,
        pr5::POOL_N,
    );
    let kernels = pr5::measure_kernels(KERNEL_SAMPLES);
    let pool = pr5::measure_pool(POOL_REPEATS);
    let serve = measure_serve();
    let report = Pr5Report {
        cores,
        pool,
        kernels,
        serve,
    };
    pr5::finish_report(&report);
}
