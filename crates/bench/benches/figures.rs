//! Benches regenerating the figure workloads (Figs. 7–14): training-step cost
//! estimation sweeps plus measured CPU-kernel runs of the parameters the
//! figures vary (cg, co, batch size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsx_bench::scc_workload;
use dsx_core::SccImplementation;
use dsx_gpusim::{estimate_training_step, scaling_curve, GpuModel};
use dsx_models::{ConvScheme, Dataset, ModelKind};
use std::hint::black_box;

fn bench_fig7_training_step_estimates(c: &mut Criterion) {
    let gpu = GpuModel::v100();
    let mut group = c.benchmark_group("fig7_training_step");
    group.sample_size(10);
    for kind in [ModelKind::Vgg16, ModelKind::MobileNet, ModelKind::ResNet50] {
        let spec = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let base = estimate_training_step(&gpu, &spec, 128, SccImplementation::PytorchBase);
                let dsx = estimate_training_step(&gpu, &spec, 128, SccImplementation::Dsxplore);
                black_box(base.total_s / dsx.total_s)
            })
        });
    }
    group.finish();
}

fn bench_fig11_groups(c: &mut Criterion) {
    // Measured CPU kernels: forward+backward of one SCC layer as cg varies.
    let mut group = c.benchmark_group("fig11_groups");
    group.sample_size(10);
    for cg in [1usize, 2, 4, 8] {
        let workload = scc_workload(
            64,
            128,
            cg,
            if cg == 1 { 0.0 } else { 0.5 },
            4,
            16,
            SccImplementation::Dsxplore,
        );
        group.bench_function(BenchmarkId::from_parameter(format!("cg{cg}")), |b| {
            b.iter(|| {
                let out = workload.layer.forward(black_box(&workload.input));
                black_box(
                    workload
                        .layer
                        .backward(&workload.input, &workload.grad_output),
                );
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_fig12_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_overlap");
    group.sample_size(10);
    for co in [0.25f64, 0.5, 0.75] {
        let workload = scc_workload(64, 128, 2, co, 4, 16, SccImplementation::Dsxplore);
        group.bench_function(
            BenchmarkId::from_parameter(format!("co{}", (co * 100.0) as usize)),
            |b| {
                b.iter(|| {
                    let out = workload.layer.forward(black_box(&workload.input));
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

fn bench_fig13_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_batch_size");
    group.sample_size(10);
    for batch in [2usize, 4, 8] {
        let workload = scc_workload(64, 128, 2, 0.5, batch, 16, SccImplementation::Dsxplore);
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| black_box(workload.layer.forward(black_box(&workload.input))))
        });
    }
    group.finish();
}

fn bench_fig14_multi_gpu_model(c: &mut Criterion) {
    let gpu = GpuModel::v100();
    let spec = ModelKind::MobileNet.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
    let mut group = c.benchmark_group("fig14_multi_gpu");
    group.sample_size(20);
    group.bench_function("scaling_curve_4gpu", |b| {
        b.iter(|| {
            black_box(scaling_curve(
                &gpu,
                &spec,
                512,
                SccImplementation::Dsxplore,
                4,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig7_training_step_estimates,
    bench_fig11_groups,
    bench_fig12_overlap,
    bench_fig13_batch_size,
    bench_fig14_multi_gpu_model
);
criterion_main!(benches);
