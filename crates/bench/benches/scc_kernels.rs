//! Kernel-level microbenchmarks of the four SCC implementations.
//!
//! Covers the ablations behind Fig. 9 (input-centric vs output-centric
//! backward) and the forward comparison between the DSXplore kernel and the
//! operator-composition baselines, measured on the real CPU kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsx_bench::default_workload;
use dsx_core::SccImplementation;
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_forward");
    group.sample_size(10);
    for implementation in SccImplementation::ALL {
        let workload = default_workload(implementation);
        group.bench_function(BenchmarkId::from_parameter(implementation.name()), |b| {
            b.iter(|| black_box(workload.layer.forward(black_box(&workload.input))))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_backward");
    group.sample_size(10);
    for implementation in SccImplementation::ALL {
        let workload = default_workload(implementation);
        group.bench_function(BenchmarkId::from_parameter(implementation.name()), |b| {
            b.iter(|| {
                black_box(
                    workload
                        .layer
                        .backward(black_box(&workload.input), black_box(&workload.grad_output)),
                )
            })
        });
    }
    group.finish();
}

fn bench_cycle_map(c: &mut Criterion) {
    use dsx_core::{ChannelCycleMap, SccConfig};
    let mut group = c.benchmark_group("cyclic_map");
    group.sample_size(20);
    for (cin, cg, co) in [(64usize, 2usize, 0.5f64), (512, 8, 0.33), (1024, 2, 0.75)] {
        let cfg = SccConfig::new(cin, cin * 2, cg, co).unwrap();
        group.bench_function(
            BenchmarkId::from_parameter(format!("cin{cin}-cg{cg}-co{}", (co * 100.0) as usize)),
            |b| b.iter(|| black_box(ChannelCycleMap::build(black_box(&cfg)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward, bench_cycle_map);
criterion_main!(benches);
