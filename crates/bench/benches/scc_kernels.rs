//! Kernel-level microbenchmarks of the four SCC implementations, each run on
//! every kernel backend (naive chunked loops vs blocked/autovectorized).
//!
//! Covers the ablations behind Fig. 9 (input-centric vs output-centric
//! backward) and the forward comparison between the DSXplore kernel and the
//! operator-composition baselines, measured on the real CPU kernels.
//!
//! After the criterion groups run, the JSON perf reporter measures the
//! forward/backward medians per backend on the default workload, writes
//! `BENCH_PR2.json` at the repo root, and (when `DSX_BENCH_MIN_SPEEDUP` is
//! set, as in the CI perf job) fails the process if the blocked forward
//! speedup over naive drops below the threshold.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dsx_bench::default_workload_with_backend;
use dsx_core::{BackendKind, SccImplementation};
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_forward");
    group.sample_size(10);
    for implementation in SccImplementation::ALL {
        for backend in BackendKind::ALL {
            let workload = default_workload_with_backend(implementation, backend);
            let id = BenchmarkId::from_parameter(format!("{}[{}]", implementation.name(), backend));
            group.bench_function(id, |b| {
                b.iter(|| black_box(workload.layer.forward(black_box(&workload.input))))
            });
        }
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_backward");
    group.sample_size(10);
    for implementation in SccImplementation::ALL {
        // Only the DSXplore input-centric backward dispatches through the
        // kernel backend; the composed autograd emulations and the
        // DSXplore-Var atomic scatter are deliberately backend-independent,
        // so benching them per backend would duplicate identical code.
        let backends: &[BackendKind] = if implementation == SccImplementation::Dsxplore {
            &BackendKind::ALL
        } else {
            &[BackendKind::Naive]
        };
        for &backend in backends {
            let workload = default_workload_with_backend(implementation, backend);
            let label = if backends.len() > 1 {
                format!("{}[{}]", implementation.name(), backend)
            } else {
                implementation.name().to_string()
            };
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| {
                    black_box(
                        workload
                            .layer
                            .backward(black_box(&workload.input), black_box(&workload.grad_output)),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_cycle_map(c: &mut Criterion) {
    use dsx_core::{ChannelCycleMap, SccConfig};
    let mut group = c.benchmark_group("cyclic_map");
    group.sample_size(20);
    for (cin, cg, co) in [(64usize, 2usize, 0.5f64), (512, 8, 0.33), (1024, 2, 0.75)] {
        let cfg = SccConfig::new(cin, cin * 2, cg, co).unwrap();
        group.bench_function(
            BenchmarkId::from_parameter(format!("cin{cin}-cg{cg}-co{}", (co * 100.0) as usize)),
            |b| b.iter(|| black_box(ChannelCycleMap::build(black_box(&cfg)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward, bench_cycle_map);

fn main() {
    benches();
    dsx_bench::report::run_default_report();
}
