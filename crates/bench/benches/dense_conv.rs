//! PR6 dense-conv bench: every backend's cache-free `Conv2d` forward at 1
//! and N pool threads on the CIFAR-scale and large-plane dense workloads —
//! written to `BENCH_PR6.json` and gated in CI by `DSX_DENSE_MIN_SPEEDUP`
//! / `DSX_SWSUM_MIN_SPEEDUP` (multi-core hosts only; see `dsx_bench::pr6`
//! for the knobs and skip rules).

use dsx_bench::{pr5, pr6};

const DENSE_SAMPLES: usize = 11;

fn main() {
    let cores = pr5::available_cores();
    println!("PR6 dense-conv bench: {cores} cores, {DENSE_SAMPLES} samples per point");
    for shape in pr6::DENSE_WORKLOADS {
        println!(
            "  workload {:<5}: {}x{} k{} s{} p{} batch {} @ {}x{} ({} MACs/forward)",
            shape.label,
            shape.cin,
            shape.cout,
            shape.kernel,
            shape.stride,
            shape.pad,
            shape.batch,
            shape.hw,
            shape.hw,
            shape.forward_macs(),
        );
    }
    let rows = pr6::measure_dense(DENSE_SAMPLES);
    let report = pr6::Pr6Report { cores, rows };
    pr6::finish_report(&report);
}
