//! Quick probe of the perf report (same measurement the CI gate uses).
fn main() {
    dsx_bench::report::run_default_report();
}
