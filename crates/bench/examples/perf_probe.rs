//! Quick local probe of kernel perf (same measurement the CI gate uses).
//!
//! ```text
//! cargo run --release -p dsx-bench --example perf_probe [flags]
//!
//! --threads N          pool thread count (0 = hardware default); exercises
//!                      the persistent worker pool when N > 1
//! --backend KIND       probe only this backend (repeatable;
//!                      naive|blocked|tiled|swsum). Without it, the full
//!                      BENCH_PR2 report runs (all backends + JSON + gate).
//! --dense              probe the dense `Conv2d` forward (the BENCH_PR6
//!                      workloads) instead of the SCC kernels
//! --samples N          timed samples per kernel (default 30)
//! ```

use dsx_bench::{pr6, report};
use dsx_core::BackendKind;
use dsx_nn::Layer;
use std::hint::black_box;

struct Cli {
    threads: Option<usize>,
    backends: Vec<BackendKind>,
    dense: bool,
    samples: usize,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        threads: None,
        backends: Vec::new(),
        dense: false,
        samples: report::DEFAULT_SAMPLES,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--threads" => {
                cli.threads = Some(
                    value("--threads")?
                        .parse::<usize>()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--backend" => cli
                .backends
                .push(value("--backend")?.parse::<BackendKind>()?),
            "--dense" => cli.dense = true,
            "--samples" => {
                cli.samples = value("--samples")?
                    .parse::<usize>()
                    .map_err(|e| format!("--samples: {e}"))?;
                if cli.samples == 0 {
                    return Err("--samples must be positive".into());
                }
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' (flags: --threads N, --backend \
                     <naive|blocked|tiled|swsum>, --dense, --samples N)"
                ))
            }
        }
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Some(threads) = cli.threads {
        dsx_tensor::set_num_threads(threads);
        println!(
            "pool threads: {} (pool workers spawn lazily on the first \
             multi-threaded launch)",
            dsx_tensor::num_threads()
        );
    }
    if cli.dense {
        probe_dense(&cli);
        print_pool_stats(&cli);
        return;
    }
    if cli.backends.is_empty() {
        // Default behaviour: the full BENCH_PR2 report (all backends, JSON
        // artifact, optional DSX_BENCH_MIN_SPEEDUP gate).
        report::run_default_report();
        print_pool_stats(&cli);
        return;
    }
    let timings = report::measure_kernels_for(&cli.backends, cli.samples);
    println!("perf probe ({} samples/kernel)", cli.samples);
    for t in &timings {
        println!(
            "  {:<8} {:<8} median {:>12.0} ns",
            t.kernel,
            t.backend.name(),
            t.median_ns
        );
    }
    print_pool_stats(&cli);
}

/// With `--threads N` the run exercised the worker pool; report what it did
/// (jobs, steals, parks — the dsx-obs counters the pool feeds).
fn print_pool_stats(cli: &Cli) {
    if cli.threads.is_some() {
        println!("pool stats: {}", dsx_tensor::pool::stats());
    }
}

/// Dense-conv probe: cache-free `Conv2d` forward medians on the BENCH_PR6
/// workloads for the requested backends (all four when none are given), at
/// the current pool thread count.
fn probe_dense(cli: &Cli) {
    let backends: Vec<BackendKind> = if cli.backends.is_empty() {
        BackendKind::ALL.to_vec()
    } else {
        cli.backends.clone()
    };
    println!(
        "dense conv probe ({} samples/point, {} pool threads)",
        cli.samples,
        dsx_tensor::num_threads()
    );
    for shape in pr6::DENSE_WORKLOADS {
        let input = shape.input();
        for &backend in &backends {
            let layer = shape.layer(backend);
            let median = report::median_ns(cli.samples, || {
                black_box(layer.infer(black_box(&input)));
            });
            println!(
                "  {:<5} {:<8} median {:>12.0} ns",
                shape.label,
                backend.name(),
                median
            );
        }
    }
}
