//! Machine-readable perf report for the CI gate.
//!
//! Measures the median wall-clock time of the SCC forward and backward
//! kernels per [`BackendKind`] on the default CIFAR-scale workload, renders
//! the result as JSON (written to `BENCH_PR2.json` at the repo root by the
//! `scc_kernels` bench), and optionally enforces a minimum blocked-over-naive
//! forward speedup so the blocked backend can never silently regress below
//! the naive oracle.
//!
//! Environment knobs (read by [`run_default_report`]):
//!
//! * `DSX_BENCH_JSON` — override the output path (default:
//!   `<repo root>/BENCH_PR2.json`).
//! * `DSX_BENCH_MIN_SPEEDUP` — when set (e.g. `1.3`), the process exits
//!   non-zero if the blocked forward speedup falls below it. This is the CI
//!   perf gate.
//! * `DSX_BENCH_SAMPLES` — sample count override (default 30).

use crate::{default_workload_with_backend, DEFAULT_WORKLOAD};
use dsx_core::{BackendKind, SccImplementation};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Default number of timed samples per kernel/backend pair.
pub const DEFAULT_SAMPLES: usize = 30;

/// Median runtime of one kernel on one backend.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Which kernel was measured (`"forward"` or `"backward"`).
    pub kernel: &'static str,
    /// Which backend executed it.
    pub backend: BackendKind,
    /// Median wall-clock nanoseconds per call.
    pub median_ns: f64,
}

/// Measures forward and backward medians for every backend on the default
/// workload. `samples` timed calls per pair, after two warm-up calls.
pub fn measure_default_kernels(samples: usize) -> Vec<KernelTiming> {
    measure_kernels_for(&BackendKind::ALL, samples)
}

/// Measures forward and backward medians for an explicit backend subset on
/// the default workload (the `perf_probe` example uses this to probe one
/// backend without paying for the rest).
pub fn measure_kernels_for(backends: &[BackendKind], samples: usize) -> Vec<KernelTiming> {
    let mut timings = Vec::new();
    for &backend in backends {
        let w = default_workload_with_backend(SccImplementation::Dsxplore, backend);
        timings.push(KernelTiming {
            kernel: "forward",
            backend,
            median_ns: median_ns(samples, || {
                black_box(w.layer.forward(black_box(&w.input)));
            }),
        });
        timings.push(KernelTiming {
            kernel: "backward",
            backend,
            median_ns: median_ns(samples, || {
                black_box(
                    w.layer
                        .backward(black_box(&w.input), black_box(&w.grad_output)),
                );
            }),
        });
    }
    timings
}

/// Median wall-clock nanoseconds of `samples` calls to `f`, after two
/// warm-up calls (shared by the PR2, PR5 and PR6 reports and the
/// `perf_probe` example so their timings stay comparable).
pub fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    assert!(samples > 0, "need at least one sample");
    f();
    f(); // two warm-up calls populate caches and page tables
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// The blocked-over-naive speedup of `kernel`, if both medians are present.
pub fn speedup(timings: &[KernelTiming], kernel: &str) -> Option<f64> {
    let find = |backend: BackendKind| {
        timings
            .iter()
            .find(|t| t.kernel == kernel && t.backend == backend)
            .map(|t| t.median_ns)
    };
    match (find(BackendKind::Naive), find(BackendKind::Blocked)) {
        (Some(naive), Some(blocked)) if blocked > 0.0 => Some(naive / blocked),
        _ => None,
    }
}

/// Renders the report as a stable, dependency-free JSON document.
pub fn render_json(timings: &[KernelTiming], samples: usize) -> String {
    let shape = DEFAULT_WORKLOAD;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/scc-kernels/1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"cin\": {}, \"cout\": {}, \"cg\": {}, \"co\": {}, \"batch\": {}, \"hw\": {}}},\n",
        shape.cin, shape.cout, shape.cg, shape.co, shape.batch, shape.hw
    ));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"median_ns\": {:.0}}}{}\n",
            t.kernel,
            t.backend,
            t.median_ns,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let fmt_speedup = |k: &str| {
        speedup(timings, k)
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_string())
    };
    out.push_str(&format!(
        "  \"forward_speedup_blocked_vs_naive\": {},\n",
        fmt_speedup("forward")
    ));
    out.push_str(&format!(
        "  \"backward_speedup_blocked_vs_naive\": {}\n",
        fmt_speedup("backward")
    ));
    out.push_str("}\n");
    out
}

/// Where the report lands: `DSX_BENCH_JSON` if set, else `BENCH_PR2.json`
/// at the repository root (two levels above this crate's manifest).
pub fn default_json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_BENCH_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR2.json")
}

/// Measures, writes the JSON report, prints a human summary, and enforces
/// `DSX_BENCH_MIN_SPEEDUP` when set. Returns the timings.
///
/// Exits the process with status 1 when the gate fails, so the CI perf job
/// fails the build.
pub fn run_default_report() -> Vec<KernelTiming> {
    let samples = std::env::var("DSX_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(DEFAULT_SAMPLES);
    let timings = measure_default_kernels(samples);
    let json = render_json(&timings, samples);
    let path = default_json_path();
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("cannot write perf report {}: {e}", path.display()));

    println!("\nperf report ({} samples/kernel)", samples);
    for t in &timings {
        println!(
            "  {:<8} {:<8} median {:>12.0} ns",
            t.kernel,
            t.backend.name(),
            t.median_ns
        );
    }
    let forward = speedup(&timings, "forward");
    let backward = speedup(&timings, "backward");
    println!(
        "  forward  blocked vs naive: {}",
        forward.map(|s| format!("{s:.2}x")).unwrap_or("n/a".into())
    );
    println!(
        "  backward blocked vs naive: {}",
        backward.map(|s| format!("{s:.2}x")).unwrap_or("n/a".into())
    );
    println!("  wrote {}", path.display());

    if let Ok(min) = std::env::var("DSX_BENCH_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .unwrap_or_else(|e| panic!("DSX_BENCH_MIN_SPEEDUP must be a float: {e}"));
        let got = forward.expect("both backends were measured");
        if got < min {
            eprintln!(
                "PERF GATE FAILED: blocked forward speedup {got:.2}x is below the required \
                 {min:.2}x on the default workload"
            );
            std::process::exit(1);
        }
        println!("  perf gate passed: {got:.2}x >= {min:.2}x");
    }
    timings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(kernel: &'static str, backend: BackendKind, median_ns: f64) -> KernelTiming {
        KernelTiming {
            kernel,
            backend,
            median_ns,
        }
    }

    #[test]
    fn speedup_divides_naive_by_blocked() {
        let timings = vec![
            fake("forward", BackendKind::Naive, 300.0),
            fake("forward", BackendKind::Blocked, 150.0),
        ];
        assert_eq!(speedup(&timings, "forward"), Some(2.0));
        assert_eq!(speedup(&timings, "backward"), None);
    }

    #[test]
    fn json_contains_every_timing_and_the_speedups() {
        let timings = vec![
            fake("forward", BackendKind::Naive, 400.0),
            fake("forward", BackendKind::Blocked, 200.0),
            fake("backward", BackendKind::Naive, 900.0),
            fake("backward", BackendKind::Blocked, 450.0),
        ];
        let json = render_json(&timings, 7);
        assert!(json.contains("\"schema\": \"dsx-bench/scc-kernels/1\""));
        assert!(json.contains("\"samples\": 7"));
        assert!(json.contains("\"backend\": \"naive\", \"median_ns\": 400"));
        assert!(json.contains("\"backend\": \"blocked\", \"median_ns\": 450"));
        assert!(json.contains("\"forward_speedup_blocked_vs_naive\": 2.000"));
        assert!(json.contains("\"backward_speedup_blocked_vs_naive\": 2.000"));
        // Exactly one trailing comma pattern per kernel entry; last has none.
        assert_eq!(json.matches("median_ns").count(), 4);
    }

    #[test]
    fn missing_backend_renders_null_speedup() {
        let timings = vec![fake("forward", BackendKind::Naive, 400.0)];
        let json = render_json(&timings, 1);
        assert!(json.contains("\"forward_speedup_blocked_vs_naive\": null"));
    }

    #[test]
    fn measure_produces_positive_medians_for_all_pairs() {
        let timings = measure_default_kernels(1);
        assert_eq!(timings.len(), 2 * BackendKind::ALL.len());
        assert!(timings.iter().all(|t| t.median_ns > 0.0));
    }
}
