//! Shared workload builders for the Criterion benchmark harness.
//!
//! Each bench file (`benches/*.rs`) maps to one or more tables/figures of the
//! paper (see DESIGN.md §4); this library provides the common fixtures so the
//! benches measure exactly the same kernels and shapes the experiments use.

#![forbid(unsafe_code)]

use dsx_core::{BackendKind, SccConfig, SccImplementation, SlidingChannelConv2d};
use dsx_tensor::Tensor;

pub mod pr5;
pub mod pr6;
pub mod report;

/// The default CIFAR-scale workload shape, shared by the benches and the
/// JSON perf report so the CI gate always measures the same problem.
pub const DEFAULT_WORKLOAD: WorkloadShape = WorkloadShape {
    cin: 64,
    cout: 128,
    cg: 2,
    co: 0.5,
    batch: 8,
    hw: 16,
};

/// Shape of an SCC benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadShape {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Channel groups.
    pub cg: usize,
    /// Overlap ratio.
    pub co: f64,
    /// Batch size.
    pub batch: usize,
    /// Square feature-map side.
    pub hw: usize,
}

/// A ready-to-run SCC layer workload: layer + input + upstream gradient.
pub struct SccWorkload {
    /// The layer under test.
    pub layer: SlidingChannelConv2d,
    /// Input feature map.
    pub input: Tensor,
    /// Upstream gradient for backward benches.
    pub grad_output: Tensor,
}

/// Builds a benchmark workload for a representative SCC layer.
///
/// The default CIFAR-scale shape (`cin=64, cout=128, 16×16, batch 8`) is
/// small enough for Criterion on one CPU core while still exercising the
/// cyclic wrap-around and the channel overlap.
pub fn scc_workload(
    cin: usize,
    cout: usize,
    cg: usize,
    co: f64,
    batch: usize,
    hw: usize,
    implementation: SccImplementation,
) -> SccWorkload {
    let shape = WorkloadShape {
        cin,
        cout,
        cg,
        co,
        batch,
        hw,
    };
    shaped_workload(shape, implementation, BackendKind::Naive)
}

/// Builds a workload for an explicit shape, implementation and kernel
/// backend (the per-backend benches and the JSON perf report use this).
pub fn shaped_workload(
    shape: WorkloadShape,
    implementation: SccImplementation,
    backend: BackendKind,
) -> SccWorkload {
    let cfg =
        SccConfig::new(shape.cin, shape.cout, shape.cg, shape.co).expect("valid bench config");
    let layer = SlidingChannelConv2d::with_seed(cfg, 42)
        .with_implementation(implementation)
        .with_backend(backend);
    SccWorkload {
        input: Tensor::randn(&[shape.batch, shape.cin, shape.hw, shape.hw], 1),
        grad_output: Tensor::randn(&[shape.batch, shape.cout, shape.hw, shape.hw], 2),
        layer,
    }
}

/// Default CIFAR-scale workload used by most benches (naive backend, the
/// historical baseline).
pub fn default_workload(implementation: SccImplementation) -> SccWorkload {
    default_workload_with_backend(implementation, BackendKind::Naive)
}

/// Default CIFAR-scale workload on an explicit kernel backend.
pub fn default_workload_with_backend(
    implementation: SccImplementation,
    backend: BackendKind,
) -> SccWorkload {
    shaped_workload(DEFAULT_WORKLOAD, implementation, backend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_are_consistent() {
        let w = default_workload(SccImplementation::Dsxplore);
        let out = w.layer.forward(&w.input);
        assert_eq!(out.shape(), w.grad_output.shape());
    }
}
