//! Shared workload builders for the Criterion benchmark harness.
//!
//! Each bench file (`benches/*.rs`) maps to one or more tables/figures of the
//! paper (see DESIGN.md §4); this library provides the common fixtures so the
//! benches measure exactly the same kernels and shapes the experiments use.

use dsx_core::{SccConfig, SccImplementation, SlidingChannelConv2d};
use dsx_tensor::Tensor;

/// A ready-to-run SCC layer workload: layer + input + upstream gradient.
pub struct SccWorkload {
    /// The layer under test.
    pub layer: SlidingChannelConv2d,
    /// Input feature map.
    pub input: Tensor,
    /// Upstream gradient for backward benches.
    pub grad_output: Tensor,
}

/// Builds a benchmark workload for a representative SCC layer.
///
/// The default CIFAR-scale shape (`cin=64, cout=128, 16×16, batch 8`) is
/// small enough for Criterion on one CPU core while still exercising the
/// cyclic wrap-around and the channel overlap.
pub fn scc_workload(
    cin: usize,
    cout: usize,
    cg: usize,
    co: f64,
    batch: usize,
    hw: usize,
    implementation: SccImplementation,
) -> SccWorkload {
    let cfg = SccConfig::new(cin, cout, cg, co).expect("valid bench config");
    let layer = SlidingChannelConv2d::with_seed(cfg, 42).with_implementation(implementation);
    SccWorkload {
        input: Tensor::randn(&[batch, cin, hw, hw], 1),
        grad_output: Tensor::randn(&[batch, cout, hw, hw], 2),
        layer,
    }
}

/// Default CIFAR-scale workload used by most benches.
pub fn default_workload(implementation: SccImplementation) -> SccWorkload {
    scc_workload(64, 128, 2, 0.5, 8, 16, implementation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_are_consistent() {
        let w = default_workload(SccImplementation::Dsxplore);
        let out = w.layer.forward(&w.input);
        assert_eq!(out.shape(), w.grad_output.shape());
    }
}
