//! BENCH_PR5: pool + tiled-backend scaling report for the CI perf gate.
//!
//! Three comparisons, rendered into one JSON document (written to
//! `BENCH_PR5.json` at the repo root by the `pool_scaling` bench):
//!
//! 1. **Pool vs scope-spawn** — a multi-launch microbench: many back-to-back
//!    `parallel_for_chunks` launches (the per-layer launch pattern of one
//!    `infer`) on the persistent pool vs an inline replica of the historical
//!    scope-spawn runtime that created fresh OS threads per call.
//! 2. **Tiled vs blocked kernels** — SCC forward medians for the blocked
//!    and tiled backends at 1 thread and at the machine's full thread
//!    count, on the CIFAR-scale default workload and a large-plane workload
//!    ([`LARGE_WORKLOAD`], 64×64 planes) where the tile scheduler is
//!    designed to win.
//! 3. **Serving** — batched throughput per backend (measured by the bench
//!    binary through the serve engine and passed in as [`ServeRow`]s).
//!
//! Environment knobs (read by [`finish_report`]):
//!
//! * `DSX_PR5_BENCH_JSON` — output path (default `<repo>/BENCH_PR5.json`).
//! * `DSX_POOL_MIN_SPEEDUP` — when set (CI: `1.2`), fail unless the pool
//!   beats scope-spawn by that factor on the multi-launch microbench.
//! * `DSX_TILED_MIN_SPEEDUP` — when set (CI: `0.95`, parity within
//!   measurement noise), fail unless the tiled forward reaches that factor
//!   of the blocked forward at equal (full) thread count on the
//!   large-plane workload; the same knob also enforces the thread-scaling
//!   floor — tiled at full threads must beat the single-threaded blocked
//!   backend outright (≥ 1.0×).
//!
//! Both gates only engage on multi-core hosts
//! (`available_parallelism() > 1`): on one core the pool and the baseline
//! both degenerate to the inline path and thread scaling is unmeasurable,
//! so a single-core container stays green by design.

use crate::report::median_ns;
use crate::{shaped_workload, WorkloadShape, DEFAULT_WORKLOAD};
use dsx_core::{BackendKind, SccImplementation};
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Large-plane SCC workload (64×64 feature maps → four row strips per
/// plane), the regime the tiled backend's scheduler targets.
pub const LARGE_WORKLOAD: WorkloadShape = WorkloadShape {
    cin: 32,
    cout: 64,
    cg: 2,
    co: 0.5,
    batch: 4,
    hw: 64,
};

/// Launches per burst in the pool microbench — comparable to the number of
/// kernel launches a handful of `infer` calls issue back to back.
pub const POOL_LAUNCHES: usize = 48;

/// Iteration count per launch in the pool microbench.
pub const POOL_N: usize = 1 << 16;

const POOL_GRAIN: usize = 1024;

/// Result of the multi-launch pool-vs-scope-spawn microbench.
#[derive(Debug, Clone)]
pub struct PoolBench {
    /// Launches per measured burst.
    pub launches: usize,
    /// Iterations per launch.
    pub n: usize,
    /// Median burst time on the scope-spawn baseline, milliseconds.
    pub scope_spawn_ms: f64,
    /// Median burst time on the persistent pool, milliseconds.
    pub pool_ms: f64,
}

impl PoolBench {
    /// Pool speedup over the scope-spawn baseline.
    pub fn speedup(&self) -> f64 {
        if self.pool_ms > 0.0 {
            self.scope_spawn_ms / self.pool_ms
        } else {
            0.0
        }
    }
}

/// Median forward time of one backend at one thread count on one workload.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Workload label (`"cifar"` or `"large"`).
    pub workload: &'static str,
    /// Backend measured.
    pub backend: BackendKind,
    /// Pool thread count the measurement ran at.
    pub threads: usize,
    /// Median wall-clock nanoseconds per forward call.
    pub forward_ns: f64,
}

/// Batched serving throughput of one backend (measured by the bench
/// binary through the serve engine).
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Backend measured.
    pub backend: BackendKind,
    /// Batched requests per second.
    pub batched_rps: f64,
}

/// The full BENCH_PR5 report.
#[derive(Debug, Clone)]
pub struct Pr5Report {
    /// `available_parallelism()` of the measuring host.
    pub cores: usize,
    /// Pool microbench result.
    pub pool: PoolBench,
    /// Kernel comparison rows.
    pub kernels: Vec<KernelRow>,
    /// Serving comparison rows.
    pub serve: Vec<ServeRow>,
}

fn find_forward(
    report: &Pr5Report,
    workload: &str,
    backend: BackendKind,
    threads: usize,
) -> Option<f64> {
    report
        .kernels
        .iter()
        .find(|r| r.workload == workload && r.backend == backend && r.threads == threads)
        .map(|r| r.forward_ns)
}

impl Pr5Report {
    /// Blocked-over-tiled forward ratio at equal (full) thread count on the
    /// large-plane workload — the `DSX_TILED_MIN_SPEEDUP` gate metric.
    pub fn tiled_vs_blocked_equal_threads(&self) -> Option<f64> {
        let blocked = find_forward(self, "large", BackendKind::Blocked, self.cores)?;
        let tiled = find_forward(self, "large", BackendKind::Tiled, self.cores)?;
        (tiled > 0.0).then(|| blocked / tiled)
    }

    /// Tiled at full threads vs blocked at a single thread on the
    /// large-plane workload (the tentpole's "tiled ≥ blocked
    /// single-thread" sanity ratio).
    pub fn tiled_multi_vs_blocked_single(&self) -> Option<f64> {
        let blocked = find_forward(self, "large", BackendKind::Blocked, 1)?;
        let tiled = find_forward(self, "large", BackendKind::Tiled, self.cores)?;
        (tiled > 0.0).then(|| blocked / tiled)
    }

    /// Tiled-over-blocked batched serving throughput ratio.
    pub fn tiled_vs_blocked_serve(&self) -> Option<f64> {
        let blocked = self
            .serve
            .iter()
            .find(|r| r.backend == BackendKind::Blocked)?
            .batched_rps;
        let tiled = self
            .serve
            .iter()
            .find(|r| r.backend == BackendKind::Tiled)?
            .batched_rps;
        (blocked > 0.0).then(|| tiled / blocked)
    }
}

/// The launch body: enough arithmetic per index that a launch is real work,
/// little enough that launch overhead stays visible.
fn burst_body(start: usize, end: usize) {
    let mut acc = 0.0f32;
    for i in start..end {
        acc += (i as f32).sqrt();
    }
    black_box(acc);
}

/// Inline replica of the pre-pool runtime: fresh scoped threads per launch,
/// the same worker-count chunking `parallel_for_chunks` historically used.
/// Kept here (not in `dsx_tensor`) so the library carries exactly one
/// runtime and the baseline can never drift into production code.
fn scope_spawn_chunks(n: usize, min_chunk: usize, body: impl Fn(usize, usize) + Sync) {
    let workers = dsx_tensor::num_threads();
    if workers <= 1 || n <= min_chunk {
        body(0, n);
        return;
    }
    let chunks = workers.min(n.div_ceil(min_chunk));
    let chunk_size = n.div_ceil(chunks);
    crossbeam::scope(|scope| {
        for c in 0..chunks {
            let start = c * chunk_size;
            let end = ((c + 1) * chunk_size).min(n);
            if start >= end {
                continue;
            }
            let body_ref = &body;
            scope.spawn(move |_| body_ref(start, end));
        }
    })
    .expect("scope-spawn baseline worker panicked");
}

/// Runs the multi-launch microbench: `repeats` bursts of
/// [`POOL_LAUNCHES`] launches each, median per path.
pub fn measure_pool(repeats: usize) -> PoolBench {
    let scope_spawn_ms = median_ns(repeats, || {
        for _ in 0..POOL_LAUNCHES {
            scope_spawn_chunks(POOL_N, POOL_GRAIN, burst_body);
        }
    }) / 1e6;
    let pool_ms = median_ns(repeats, || {
        for _ in 0..POOL_LAUNCHES {
            dsx_tensor::par::parallel_for_chunks(POOL_N, POOL_GRAIN, burst_body);
        }
    }) / 1e6;
    PoolBench {
        launches: POOL_LAUNCHES,
        n: POOL_N,
        scope_spawn_ms,
        pool_ms,
    }
}

/// Measures forward medians for the blocked and tiled backends at 1 thread
/// and at the host's full thread count, on the CIFAR-scale and large-plane
/// workloads. Restores the hardware-default thread count before returning.
pub fn measure_kernels(samples: usize) -> Vec<KernelRow> {
    let cores = available_cores();
    let mut thread_counts = vec![1usize];
    if cores > 1 {
        thread_counts.push(cores);
    }
    let mut rows = Vec::new();
    for (label, shape) in [("cifar", DEFAULT_WORKLOAD), ("large", LARGE_WORKLOAD)] {
        for &threads in &thread_counts {
            dsx_tensor::set_num_threads(threads);
            for backend in [BackendKind::Blocked, BackendKind::Tiled] {
                let w = shaped_workload(shape, SccImplementation::Dsxplore, backend);
                rows.push(KernelRow {
                    workload: label,
                    backend,
                    threads,
                    forward_ns: median_ns(samples, || {
                        black_box(w.layer.forward(black_box(&w.input)));
                    }),
                });
            }
        }
    }
    dsx_tensor::set_num_threads(0);
    rows
}

/// `available_parallelism()`, defaulting to 1.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn fmt_ratio(ratio: Option<f64>) -> String {
    ratio
        .map(|r| format!("{r:.3}"))
        .unwrap_or_else(|| "null".to_string())
}

/// Renders the report as a stable, dependency-free JSON document.
pub fn render_json(report: &Pr5Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/pr5-scaling/1\",\n");
    out.push_str(&format!("  \"cores\": {},\n", report.cores));
    out.push_str(&format!(
        "  \"pool\": {{\"launches\": {}, \"n\": {}, \"scope_spawn_ms\": {:.3}, \
         \"pool_ms\": {:.3}, \"speedup_pool_vs_spawn\": {:.3}}},\n",
        report.pool.launches,
        report.pool.n,
        report.pool.scope_spawn_ms,
        report.pool.pool_ms,
        report.pool.speedup(),
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, row) in report.kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
             \"forward_median_ns\": {:.0}}}{}\n",
            row.workload,
            row.backend,
            row.threads,
            row.forward_ns,
            if i + 1 < report.kernels.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"tiled_vs_blocked_equal_threads_large\": {},\n",
        fmt_ratio(report.tiled_vs_blocked_equal_threads()),
    ));
    out.push_str(&format!(
        "  \"tiled_multi_vs_blocked_single_large\": {},\n",
        fmt_ratio(report.tiled_multi_vs_blocked_single()),
    ));
    out.push_str("  \"serve\": [\n");
    for (i, row) in report.serve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"batched_rps\": {:.1}}}{}\n",
            row.backend,
            row.batched_rps,
            if i + 1 < report.serve.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"tiled_vs_blocked_serve\": {}\n",
        fmt_ratio(report.tiled_vs_blocked_serve()),
    ));
    out.push_str("}\n");
    out
}

/// Where the report lands: `DSX_PR5_BENCH_JSON` if set, else
/// `BENCH_PR5.json` at the repository root.
pub fn json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_PR5_BENCH_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json")
}

fn env_gate(name: &str) -> Option<f64> {
    let raw = std::env::var(name).ok()?;
    Some(
        raw.parse::<f64>()
            .unwrap_or_else(|e| panic!("{name} must be a float: {e}")),
    )
}

/// Writes the JSON report, prints a human summary, and enforces the
/// `DSX_POOL_MIN_SPEEDUP` / `DSX_TILED_MIN_SPEEDUP` gates (multi-core hosts
/// only). Exits the process with status 1 when a gate fails, so the CI
/// perf job fails the build.
pub fn finish_report(report: &Pr5Report) {
    let json = render_json(report);
    let path = json_path();
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("cannot write PR5 report {}: {e}", path.display()));

    println!("\nPR5 scaling report ({} cores)", report.cores);
    println!(
        "  pool:   {} launches x {} iters | scope-spawn {:.2} ms | pool {:.2} ms | {:.2}x",
        report.pool.launches,
        report.pool.n,
        report.pool.scope_spawn_ms,
        report.pool.pool_ms,
        report.pool.speedup(),
    );
    for row in &report.kernels {
        println!(
            "  kernel: {:<5} {:<8} threads {:>2} | forward median {:>12.0} ns",
            row.workload,
            row.backend.name(),
            row.threads,
            row.forward_ns,
        );
    }
    for row in &report.serve {
        println!(
            "  serve:  {:<8} batched {:>8.1} req/s",
            row.backend.name(),
            row.batched_rps,
        );
    }
    println!(
        "  tiled vs blocked (equal threads, large): {}",
        fmt_ratio(report.tiled_vs_blocked_equal_threads()),
    );
    println!("  wrote {}", path.display());

    let multi_core = report.cores > 1;
    if let Some(min) = env_gate("DSX_POOL_MIN_SPEEDUP") {
        if multi_core {
            let got = report.pool.speedup();
            if got < min {
                eprintln!(
                    "POOL GATE FAILED: pool-backed parallel_for is only {got:.2}x the \
                     scope-spawn baseline on the multi-launch microbench (required {min:.2}x)"
                );
                std::process::exit(1);
            }
            println!("  pool gate passed: {got:.2}x >= {min:.2}x");
        } else {
            println!("  pool gate skipped: single-core host (pool runs inline)");
        }
    }
    if let Some(min) = env_gate("DSX_TILED_MIN_SPEEDUP") {
        if multi_core {
            let got = report
                .tiled_vs_blocked_equal_threads()
                .expect("both backends were measured at full threads");
            if got < min {
                eprintln!(
                    "TILED GATE FAILED: tiled forward is only {got:.2}x blocked at equal \
                     thread count on the large-plane workload (required {min:.2}x)"
                );
                std::process::exit(1);
            }
            // The thread-scaling floor: tiled with the pool must beat the
            // blocked backend pinned to one thread outright — the whole
            // point of scheduling tiles across cores.
            let vs_single = report
                .tiled_multi_vs_blocked_single()
                .expect("blocked was measured at one thread");
            if vs_single < 1.0 {
                eprintln!(
                    "TILED GATE FAILED: tiled forward at {} threads is only {vs_single:.2}x \
                     the single-threaded blocked backend on the large-plane workload \
                     (required 1.00x)",
                    report.cores,
                );
                std::process::exit(1);
            }
            println!(
                "  tiled gate passed: {got:.2}x >= {min:.2}x equal-threads, \
                 {vs_single:.2}x >= 1.00x vs single-thread blocked"
            );
        } else {
            println!("  tiled gate skipped: single-core host (thread scaling unmeasurable)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> Pr5Report {
        Pr5Report {
            cores: 4,
            pool: PoolBench {
                launches: 48,
                n: 65536,
                scope_spawn_ms: 6.0,
                pool_ms: 3.0,
            },
            kernels: vec![
                KernelRow {
                    workload: "large",
                    backend: BackendKind::Blocked,
                    threads: 1,
                    forward_ns: 8_000_000.0,
                },
                KernelRow {
                    workload: "large",
                    backend: BackendKind::Blocked,
                    threads: 4,
                    forward_ns: 2_400_000.0,
                },
                KernelRow {
                    workload: "large",
                    backend: BackendKind::Tiled,
                    threads: 4,
                    forward_ns: 2_000_000.0,
                },
            ],
            serve: vec![
                ServeRow {
                    backend: BackendKind::Blocked,
                    batched_rps: 300.0,
                },
                ServeRow {
                    backend: BackendKind::Tiled,
                    batched_rps: 330.0,
                },
            ],
        }
    }

    #[test]
    fn ratios_divide_the_right_rows() {
        let report = fake_report();
        assert_eq!(report.pool.speedup(), 2.0);
        assert_eq!(report.tiled_vs_blocked_equal_threads(), Some(1.2));
        assert_eq!(report.tiled_multi_vs_blocked_single(), Some(4.0));
        assert!((report.tiled_vs_blocked_serve().unwrap() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn missing_rows_render_null_ratios() {
        let mut report = fake_report();
        report.kernels.clear();
        report.serve.clear();
        let json = render_json(&report);
        assert!(json.contains("\"tiled_vs_blocked_equal_threads_large\": null"));
        assert!(json.contains("\"tiled_vs_blocked_serve\": null"));
    }

    #[test]
    fn json_contains_every_section_and_ratio() {
        let json = render_json(&fake_report());
        assert!(json.contains("\"schema\": \"dsx-bench/pr5-scaling/1\""));
        assert!(json.contains("\"speedup_pool_vs_spawn\": 2.000"));
        assert!(json.contains("\"tiled_vs_blocked_equal_threads_large\": 1.200"));
        assert!(json.contains("\"backend\": \"tiled\", \"batched_rps\": 330.0"));
        assert_eq!(json.matches("forward_median_ns").count(), 3);
    }

    #[test]
    fn pool_microbench_produces_positive_medians() {
        let bench = measure_pool(1);
        assert!(bench.scope_spawn_ms > 0.0);
        assert!(bench.pool_ms > 0.0);
    }
}
