//! BENCH_PR6: dense-convolution parity report for the CI perf gate.
//!
//! PR 6 brought the dense `Conv2d` layers onto the backend system: the
//! `blocked`/`tiled` backends route im2col through a register-tiled
//! (pool-scheduled) GEMM, and the new `swsum` backend runs the direct
//! sliding-window-sum kernel with no im2col buffer at all. This module
//! measures all four backends on two dense workloads and gates the two new
//! paths against the historical one:
//!
//! * **`cifar`** ([`DENSE_CIFAR`]) — a CIFAR-scale 3×3 convolution on
//!   16×16 planes, the shape the accuracy experiments train on.
//! * **`large`** ([`DENSE_LARGE`]) — 64×64 planes, the regime where the
//!   GEMM is long and the pool scheduler is designed to win.
//!
//! Each backend's cache-free forward ([`dsx_nn::Layer::infer`]) is timed at
//! one pool thread and at the host's full thread count. The `naive` rows
//! are the exact pre-PR6 path (im2col + the historical size-picked GEMM)
//! and serve as the gate baseline.
//!
//! Environment knobs (read by [`finish_report`]):
//!
//! * `DSX_DENSE_BENCH_JSON` — output path (default `<repo>/BENCH_PR6.json`).
//! * `DSX_DENSE_MIN_SPEEDUP` — when set (CI: `1.3`), fail unless the tiled
//!   (pool-scheduled register-tiled GEMM) forward beats the naive forward
//!   by that factor at full thread count on the `large` workload, **and**
//!   at least matches it (`>= 1.0`) on `cifar` — short GEMMs leave less
//!   room over the LLC-resident naive path, so `cifar` is a no-regression
//!   floor rather than a speedup target.
//! * `DSX_SWSUM_MIN_SPEEDUP` — floor for the sliding-window-sum forward
//!   over the naive im2col forward at full thread count on the `large`
//!   workload (default `1.0` whenever the dense gate is engaged: where the
//!   im2col buffer is big, the kernel that skips it must not lose to the
//!   one that pays for it). The `cifar` shape is intentionally not gated
//!   for swsum — 16-wide rows amortise almost no per-tap setup, and the
//!   measured rows in the JSON document exist precisely to keep that
//!   trade-off visible.
//!
//! Both gates only engage on multi-core hosts
//! (`available_parallelism() > 1`): on one core the pool runs inline and
//! the ratios mostly measure noise, so single-core containers stay green
//! by design.

use crate::report::median_ns;
use dsx_core::BackendKind;
use dsx_nn::{Conv2d, Layer};
use dsx_tensor::Tensor;
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Shape of one dense-convolution benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct DenseShape {
    /// Row label in the report (`"cifar"` / `"large"`).
    pub label: &'static str,
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Zero padding per border.
    pub pad: usize,
    /// Batch size.
    pub batch: usize,
    /// Square feature-map side.
    pub hw: usize,
}

/// CIFAR-scale dense workload: the 3×3 stage shape the accuracy
/// experiments train (GEMM `64 × 288 × 2048` after lowering).
pub const DENSE_CIFAR: DenseShape = DenseShape {
    label: "cifar",
    cin: 32,
    cout: 64,
    kernel: 3,
    stride: 1,
    pad: 1,
    batch: 8,
    hw: 16,
};

/// Large-plane dense workload: 64×64 feature maps, long GEMM strips
/// (`64 × 288 × 8192`), the regime the pool-scheduled GEMM targets.
pub const DENSE_LARGE: DenseShape = DenseShape {
    label: "large",
    cin: 32,
    cout: 64,
    kernel: 3,
    stride: 1,
    pad: 1,
    batch: 2,
    hw: 64,
};

/// The two workloads every backend is measured on.
pub const DENSE_WORKLOADS: [DenseShape; 2] = [DENSE_CIFAR, DENSE_LARGE];

impl DenseShape {
    /// Builds the layer under test on the given backend (bias kept — the
    /// serving models run conv+bias fused the same way).
    pub fn layer(&self, backend: BackendKind) -> Conv2d {
        Conv2d::new(self.cin, self.cout, self.kernel, self.stride, self.pad, 7)
            .with_backend(backend)
    }

    /// A deterministic input batch for this shape.
    pub fn input(&self) -> Tensor {
        Tensor::randn(&[self.batch, self.cin, self.hw, self.hw], 11)
    }

    /// Multiply-accumulates per forward call.
    pub fn forward_macs(&self) -> usize {
        self.layer(BackendKind::Naive)
            .forward_macs(&[self.batch, self.cin, self.hw, self.hw])
    }
}

/// Median cache-free forward time of one backend at one thread count on
/// one dense workload.
#[derive(Debug, Clone)]
pub struct DenseRow {
    /// Workload label (`"cifar"` or `"large"`).
    pub workload: &'static str,
    /// Backend measured.
    pub backend: BackendKind,
    /// Pool thread count the measurement ran at.
    pub threads: usize,
    /// Median wall-clock nanoseconds per forward call.
    pub forward_ns: f64,
}

/// The full BENCH_PR6 report.
#[derive(Debug, Clone)]
pub struct Pr6Report {
    /// `available_parallelism()` of the measuring host.
    pub cores: usize,
    /// Measured rows (backend × thread count × workload).
    pub rows: Vec<DenseRow>,
}

impl Pr6Report {
    fn forward(&self, workload: &str, backend: BackendKind, threads: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.backend == backend && r.threads == threads)
            .map(|r| r.forward_ns)
    }

    /// Naive-over-`backend` forward ratio at full thread count on one
    /// workload — the gate metric (`> 1` means `backend` is faster).
    pub fn speedup_vs_naive(&self, workload: &str, backend: BackendKind) -> Option<f64> {
        let naive = self.forward(workload, BackendKind::Naive, self.cores)?;
        let other = self.forward(workload, backend, self.cores)?;
        (other > 0.0).then(|| naive / other)
    }
}

/// Measures the cache-free forward median of every backend at one thread
/// and at the host's full thread count, on both dense workloads. Restores
/// the hardware-default thread count before returning.
pub fn measure_dense(samples: usize) -> Vec<DenseRow> {
    measure_dense_shapes(&DENSE_WORKLOADS, samples)
}

/// [`measure_dense`] over an explicit workload list (the unit tests run a
/// miniature shape through the same loop).
pub fn measure_dense_shapes(shapes: &[DenseShape], samples: usize) -> Vec<DenseRow> {
    let cores = crate::pr5::available_cores();
    let mut thread_counts = vec![1usize];
    if cores > 1 {
        thread_counts.push(cores);
    }
    let mut rows = Vec::new();
    for &shape in shapes {
        let input = shape.input();
        for &threads in &thread_counts {
            dsx_tensor::set_num_threads(threads);
            for backend in BackendKind::ALL {
                let layer = shape.layer(backend);
                rows.push(DenseRow {
                    workload: shape.label,
                    backend,
                    threads,
                    forward_ns: median_ns(samples, || {
                        black_box(layer.infer(black_box(&input)));
                    }),
                });
            }
        }
    }
    dsx_tensor::set_num_threads(0);
    rows
}

fn fmt_ratio(ratio: Option<f64>) -> String {
    ratio
        .map(|r| format!("{r:.3}"))
        .unwrap_or_else(|| "null".to_string())
}

/// Renders the report as a stable, dependency-free JSON document.
pub fn render_json(report: &Pr6Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dsx-bench/pr6-dense-conv/1\",\n");
    out.push_str(&format!("  \"cores\": {},\n", report.cores));
    out.push_str("  \"dense\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
             \"forward_median_ns\": {:.0}}}{}\n",
            row.workload,
            row.backend,
            row.threads,
            row.forward_ns,
            if i + 1 < report.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let mut ratios = Vec::new();
    for shape in DENSE_WORKLOADS {
        for backend in [BackendKind::Tiled, BackendKind::Swsum] {
            ratios.push(format!(
                "  \"{}_vs_naive_{}\": {}",
                backend,
                shape.label,
                fmt_ratio(report.speedup_vs_naive(shape.label, backend)),
            ));
        }
    }
    out.push_str(&ratios.join(",\n"));
    out.push_str("\n}\n");
    out
}

/// Where the report lands: `DSX_DENSE_BENCH_JSON` if set, else
/// `BENCH_PR6.json` at the repository root.
pub fn json_path() -> PathBuf {
    if let Ok(path) = std::env::var("DSX_DENSE_BENCH_JSON") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json")
}

fn env_gate(name: &str) -> Option<f64> {
    let raw = std::env::var(name).ok()?;
    Some(
        raw.parse::<f64>()
            .unwrap_or_else(|e| panic!("{name} must be a float: {e}")),
    )
}

/// Writes the JSON report, prints a human summary, and enforces the
/// `DSX_DENSE_MIN_SPEEDUP` / `DSX_SWSUM_MIN_SPEEDUP` gates (multi-core
/// hosts only). Exits the process with status 1 when a gate fails, so the
/// CI perf job fails the build.
pub fn finish_report(report: &Pr6Report) {
    let json = render_json(report);
    let path = json_path();
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("cannot write PR6 report {}: {e}", path.display()));

    println!("\nPR6 dense-conv report ({} cores)", report.cores);
    for row in &report.rows {
        println!(
            "  dense:  {:<5} {:<8} threads {:>2} | forward median {:>12.0} ns",
            row.workload,
            row.backend.name(),
            row.threads,
            row.forward_ns,
        );
    }
    for shape in DENSE_WORKLOADS {
        println!(
            "  {}: tiled {}x naive | swsum {}x naive (full threads)",
            shape.label,
            fmt_ratio(report.speedup_vs_naive(shape.label, BackendKind::Tiled)),
            fmt_ratio(report.speedup_vs_naive(shape.label, BackendKind::Swsum)),
        );
    }
    println!("  wrote {}", path.display());

    let multi_core = report.cores > 1;
    if let Some(min) = env_gate("DSX_DENSE_MIN_SPEEDUP") {
        if multi_core {
            // Tiled: the speedup target on the long-GEMM workload, a plain
            // no-regression floor on the short one.
            for (label, floor) in [("large", min), ("cifar", 1.0)] {
                let tiled = report
                    .speedup_vs_naive(label, BackendKind::Tiled)
                    .expect("tiled and naive were measured at full threads");
                if tiled < floor {
                    eprintln!(
                        "DENSE GATE FAILED: pool-scheduled GEMM forward is only {tiled:.2}x \
                         the naive im2col path on the {label} workload (required {floor:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!("  dense gate passed on {label}: tiled {tiled:.2}x >= {floor:.2}x");
            }
            let swsum_min = env_gate("DSX_SWSUM_MIN_SPEEDUP").unwrap_or(1.0);
            let swsum = report
                .speedup_vs_naive("large", BackendKind::Swsum)
                .expect("swsum and naive were measured at full threads");
            if swsum < swsum_min {
                eprintln!(
                    "DENSE GATE FAILED: sliding-window-sum forward is only {swsum:.2}x \
                     the naive im2col path on the large workload (required {swsum_min:.2}x)"
                );
                std::process::exit(1);
            }
            println!("  dense gate passed on large: swsum {swsum:.2}x >= {swsum_min:.2}x");
        } else {
            println!("  dense gate skipped: single-core host (pool runs inline)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> Pr6Report {
        let mut rows = Vec::new();
        for (label, naive, tiled, swsum) in [
            ("cifar", 4_000_000.0, 2_500_000.0, 3_000_000.0),
            ("large", 40_000_000.0, 20_000_000.0, 25_000_000.0),
        ] {
            for (backend, ns) in [
                (BackendKind::Naive, naive),
                (BackendKind::Blocked, naive * 0.9),
                (BackendKind::Tiled, tiled),
                (BackendKind::Swsum, swsum),
            ] {
                rows.push(DenseRow {
                    workload: label,
                    backend,
                    threads: 4,
                    forward_ns: ns,
                });
            }
        }
        Pr6Report { cores: 4, rows }
    }

    #[test]
    fn speedups_divide_the_right_rows() {
        let report = fake_report();
        assert_eq!(
            report.speedup_vs_naive("cifar", BackendKind::Tiled),
            Some(1.6)
        );
        assert_eq!(
            report.speedup_vs_naive("large", BackendKind::Tiled),
            Some(2.0)
        );
        assert_eq!(
            report.speedup_vs_naive("large", BackendKind::Swsum),
            Some(1.6)
        );
        // Rows at the wrong thread count must not satisfy a lookup.
        assert_eq!(report.forward("large", BackendKind::Naive, 1), None);
    }

    #[test]
    fn missing_rows_render_null_ratios() {
        let report = Pr6Report {
            cores: 4,
            rows: Vec::new(),
        };
        let json = render_json(&report);
        assert!(json.contains("\"tiled_vs_naive_large\": null"));
        assert!(json.contains("\"swsum_vs_naive_cifar\": null"));
    }

    #[test]
    fn json_contains_every_row_and_ratio() {
        let json = render_json(&fake_report());
        assert!(json.contains("\"schema\": \"dsx-bench/pr6-dense-conv/1\""));
        assert!(json.contains("\"tiled_vs_naive_cifar\": 1.600"));
        assert!(json.contains("\"swsum_vs_naive_large\": 1.600"));
        assert_eq!(json.matches("forward_median_ns").count(), 8);
    }

    #[test]
    fn dense_workload_macs_are_consistent_with_the_shapes() {
        // cout * oh * ow * batch * cin * k².
        assert_eq!(DENSE_CIFAR.forward_macs(), 64 * 16 * 16 * 8 * 32 * 9);
        assert_eq!(DENSE_LARGE.forward_macs(), 64 * 64 * 64 * 2 * 32 * 9);
    }

    #[test]
    fn measured_rows_cover_every_backend() {
        // A miniature shape keeps the end-to-end measurement loop fast in
        // debug builds while exercising every backend.
        let tiny = DenseShape {
            label: "tiny",
            cin: 2,
            cout: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
            batch: 1,
            hw: 8,
        };
        let rows = measure_dense_shapes(&[tiny], 1);
        for backend in BackendKind::ALL {
            assert!(
                rows.iter()
                    .any(|r| r.backend == backend && r.forward_ns > 0.0),
                "no measurement for {backend}"
            );
        }
    }
}
