//! Deterministic weight initialisers.
//!
//! Every random buffer in the workspace is produced from an explicit `u64`
//! seed so experiments, tests and benchmarks are bit-reproducible run to run
//! — a requirement for comparing the SCC kernels against the operator
//! composition baselines, which must start from identical weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` samples from a normal distribution `N(mean, std^2)` using a
/// Box-Muller transform over the seeded uniform generator.
pub fn normal_vec(n: usize, mean: f32, std: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box-Muller produces pairs; generate both and keep what we need.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out.push(mean + std * r * theta.cos());
        if out.len() < n {
            out.push(mean + std * r * theta.sin());
        }
    }
    out
}

/// Draws `n` samples uniformly from `[low, high)`.
pub fn uniform_vec(n: usize, low: f32, high: f32, seed: u64) -> Vec<f32> {
    assert!(high > low, "uniform_vec requires high > low");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(low..high)).collect()
}

/// Kaiming/He normal initialisation for a convolution or linear weight with
/// `fan_in` input connections: `N(0, sqrt(2 / fan_in)^2)`.
pub fn kaiming_normal(n: usize, fan_in: usize, seed: u64) -> Vec<f32> {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal_vec(n, 0.0, std, seed)
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(n: usize, fan_in: usize, fan_out: usize, seed: u64) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform_vec(n, -a, a, seed)
}

/// Mixes a base seed with a per-layer index so each layer gets an
/// independent, reproducible stream (SplitMix64 finaliser).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_vec_has_roughly_correct_moments() {
        let v = normal_vec(50_000, 1.0, 2.0, 42);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_vec_exact_length_for_odd_n() {
        assert_eq!(normal_vec(7, 0.0, 1.0, 1).len(), 7);
    }

    #[test]
    fn uniform_vec_respects_bounds() {
        let v = uniform_vec(10_000, -0.25, 0.75, 3);
        assert!(v.iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    #[should_panic]
    fn uniform_vec_rejects_empty_range() {
        uniform_vec(4, 1.0, 1.0, 0);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let small_fan = kaiming_normal(20_000, 8, 9);
        let large_fan = kaiming_normal(20_000, 512, 9);
        let var = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!(var(&small_fan) > var(&large_fan) * 10.0);
    }

    #[test]
    fn xavier_uniform_bound_is_correct() {
        let v = xavier_uniform(10_000, 100, 50, 11);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(v.iter().all(|&x| x.abs() <= a));
        assert!(v.iter().any(|&x| x.abs() > a * 0.5));
    }

    #[test]
    fn derive_seed_produces_distinct_streams() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        // Deterministic.
        assert_eq!(derive_seed(42, 0), s1);
    }
}
