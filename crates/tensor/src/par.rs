//! CPU parallel runtime: chunked `parallel_for` entry points scheduled on
//! the persistent work-stealing pool in [`crate::pool`].
//!
//! The DSXplore GPU kernels launch `N * Cout * Fw * Fw` threads (forward) or
//! `N * Cin * Fw * Fw` threads (input-centric backward), each handling one
//! pixel. On a CPU we reproduce the same decomposition by splitting the
//! iteration space into contiguous chunks; the per-"thread" work function
//! receives the global index exactly like the CUDA `thread_id` in
//! Algorithm 2 of the paper.
//!
//! Unlike the original scope-spawn runtime, chunks are executed by
//! long-lived pool workers (see [`crate::pool`]), so the per-layer kernel
//! launches inside one `infer` pay a queue push + wakeup instead of OS
//! thread startup, and imbalanced bodies rebalance by work stealing.
//!
//! The number of worker threads defaults to the machine's available
//! parallelism and can be overridden globally ([`set_num_threads`]); a value
//! of 1 runs every entry point inline with zero thread (and zero pool)
//! overhead, which is also what the test-suite uses to keep results
//! deterministic.

use crate::pool;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-thread count override. 0 means "not set, use the hardware
/// default".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Guards structural changes to the pool configuration (the thread count
/// and the drain-and-rebuild it triggers), so two concurrent
/// [`set_num_threads`] calls cannot interleave their store + drain steps.
static CONFIG_LOCK: RwLock<()> = RwLock::new(());

/// Sets the number of worker threads used by the `parallel_*` entry points.
/// `0` restores the hardware default.
///
/// Changing the count **drains and rebuilds** the persistent pool: the call
/// blocks until every live pool worker finishes its in-flight work and
/// exits, and the next multi-threaded call lazily respawns workers sized to
/// the new count. The store + drain sequence is serialised by an internal
/// lock, so concurrent callers cannot leave a stale-sized pool behind.
/// Never call this from inside a parallel body — a pool worker cannot join
/// itself.
pub fn set_num_threads(n: usize) {
    let _guard = CONFIG_LOCK.write();
    NUM_THREADS.store(n, Ordering::SeqCst);
    pool::shutdown();
}

/// Current number of worker threads [`parallel_for`] will use.
pub fn num_threads() -> usize {
    let configured = NUM_THREADS.load(Ordering::SeqCst);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimum number of iterations per claimed chunk; below this the loop runs
/// inline because scheduling costs would dominate.
pub const MIN_CHUNK: usize = 1024;

/// Target number of `f32` elements covered by one pool claim in the
/// chunk-oriented entry points: small chunks (rows, ragged planes) are
/// batched until a claim amortises to roughly this much work, so
/// CIFAR-scale launches don't decompose into hundreds of near-empty tasks.
pub const GRAIN_TARGET_F32: usize = 4096;

/// Runs `body(i)` for every `i in 0..n`, splitting the range over the pool
/// workers. `body` must be safe to call concurrently for distinct indices.
///
/// This mirrors a GPU kernel launch of `n` threads: each index is touched
/// exactly once and no two workers share an index.
pub fn parallel_for<F>(n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks(n, MIN_CHUNK, |start, end| {
        for i in start..end {
            body(i);
        }
    });
}

/// Runs `body(start, end)` over disjoint sub-ranges covering `0..n`.
///
/// `min_chunk` bounds how small a sub-range may get; the pool never hands
/// out smaller claims, and the call falls back to a single inline `body`
/// when `n` is small or only one thread is configured.
pub fn parallel_for_chunks<F>(n: usize, min_chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    if num_threads() <= 1 || n <= min_chunk {
        body(0, n);
        return;
    }
    pool::run(n, min_chunk, body);
}

/// `Sync` view of a mutable `f32` buffer's base pointer, letting pool
/// workers slice disjoint sub-ranges. Private to this module: every use is
/// guarded by a claimed-exactly-once index from the pool plus a disjointness
/// argument local to the calling function.
struct SharedMutF32 {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: the wrapper is a plain pointer + length; sending it to another
// thread moves no thread-affine state, and every dereference happens under
// the caller-proven disjointness contracts of the functions below.
unsafe impl Send for SharedMutF32 {}
// SAFETY: sharing `&SharedMutF32` across threads is sound because the only
// way to reach the pointee is `slice_mut`, whose contract requires disjoint
// `[offset, offset + len)` ranges — two threads never alias through it.
unsafe impl Sync for SharedMutF32 {}

impl SharedMutF32 {
    fn new(out: &mut [f32]) -> Self {
        SharedMutF32 {
            ptr: out.as_mut_ptr(),
            len: out.len(),
        }
    }

    /// # Safety
    ///
    /// `[offset, offset + len)` must be in bounds and no other live
    /// reference may overlap it for the lifetime of the returned slice
    /// (which is why this deliberately hands out `&mut` from `&self`: the
    /// disjointness contract replaces the borrow checker here).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [f32] {
        debug_assert!(offset + len <= self.len, "tile out of bounds");
        // SAFETY: forwarding the caller's contract — the range is in bounds
        // of the buffer `ptr`/`len` describe and no other live reference
        // overlaps it.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }
}

/// Splits `out` into disjoint mutable chunks of `chunk_len` elements and runs
/// `body(chunk_index, chunk)` for each in parallel.
///
/// An empty `out` is a no-op (zero chunks) regardless of `chunk_len`; a
/// non-empty `out` requires a positive `chunk_len` that divides its length.
///
/// This is the pattern used by kernels that own one output row / channel per
/// logical thread (e.g. the SCC output-centric forward writes each output
/// channel's spatial map from exactly one chunk), so no synchronisation is
/// needed. Short chunks are batched per pool claim on the assumption that
/// a chunk's body cost is proportional to its length (see
/// [`GRAIN_TARGET_F32`]); bodies that do far more work than their chunk
/// length suggests — a weight-gradient row that reduces over whole planes,
/// a bias slot that sums a plane per element — must use
/// [`parallel_for_each_chunk_mut_with_grain`] with an explicit grain of 1,
/// or the heuristic will batch (or fully inline) work that should spread
/// across the pool.
pub fn parallel_for_each_chunk_mut<F>(out: &mut [f32], chunk_len: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    // A zero chunk_len only survives the empty-slice no-op path inside the
    // grained variant; any grain works for it.
    let grain = GRAIN_TARGET_F32.checked_div(chunk_len).unwrap_or(1).max(1);
    parallel_for_each_chunk_mut_with_grain(out, chunk_len, grain, body);
}

/// [`parallel_for_each_chunk_mut`] with an explicit pool grain (chunks per
/// claim) instead of the length-proportional heuristic. `grain = 1` is the
/// right choice for heavy-bodied chunks whose cost is unrelated to their
/// length (weight-gradient rows, bias reductions).
pub fn parallel_for_each_chunk_mut_with_grain<F>(
    out: &mut [f32],
    chunk_len: usize,
    grain: usize,
    body: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        // Unified degenerate-case contract (shared with the grouped
        // variant): an empty slice holds zero chunks, so the call is a
        // no-op regardless of `chunk_len` — a zero-size batch coming out of
        // the serve batcher must not trip the chunk-math validation below.
        return;
    }
    check_chunk_math("parallel_for_each_chunk_mut", out.len(), chunk_len);
    let n_chunks = out.len() / chunk_len;
    if num_threads() <= 1 || n_chunks <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(i, chunk);
        }
        return;
    }
    let grain = grain.clamp(1, n_chunks);
    let base = SharedMutF32::new(out);
    pool::run(n_chunks, grain, |start, end| {
        for i in start..end {
            // SAFETY: chunk i covers [i * chunk_len, (i + 1) * chunk_len):
            // chunks are pairwise disjoint and the pool claims each index
            // exactly once.
            let chunk = unsafe { base.slice_mut(i * chunk_len, chunk_len) };
            body(i, chunk);
        }
    });
}

/// Validates the caller's chunk decomposition of a slice, panicking with a
/// message that spells out the failed chunk math instead of a bare modulo
/// assertion deep inside the runtime.
fn check_chunk_math(caller: &str, len: usize, chunk_len: usize) {
    assert!(
        chunk_len > 0,
        "{caller}: chunk_len must be positive (a zero-length chunk can never tile the \
         {len}-element slice)"
    );
    let remainder = len % chunk_len;
    assert!(
        remainder == 0,
        "{caller}: a slice of {len} f32s does not split into whole chunks of {chunk_len} \
         ({len} = {} x {chunk_len} + {remainder}); the caller's chunk math is wrong — its \
         slice length and chunk length must agree (e.g. plane = H*W chunks over an \
         N*C*H*W buffer), so fix the chunk length or pad the buffer to a multiple of it.",
        len / chunk_len,
    );
}

/// One group's chunks: `(chunk_index, chunk)` pairs in ascending order.
type ChunkGroup<'a> = Vec<(usize, &'a mut [f32])>;

/// Splits `out` into disjoint chunks of `chunk_len` elements, assigns every
/// chunk to a *group* via `group_of(chunk_index)`, and runs
/// `body(group_index, chunks_of_that_group)` with each group handled by
/// exactly one worker thread.
///
/// This is the companion to [`parallel_for_each_chunk_mut`] for kernels
/// whose unit of cache reuse spans *several* non-contiguous chunks: e.g. the
/// blocked SCC forward kernel groups all output-channel planes that share one
/// input-channel window (`group = img * cyclic_dist + oc % cyclic_dist`) so
/// one worker can stream the window's input tiles once and accumulate every
/// plane of the group from registers. Each chunk still has exactly one
/// writer, so no synchronisation is needed.
///
/// The chunks of a group are passed as `(chunk_index, chunk)` pairs in
/// ascending chunk order. Groups may be empty. An empty `out` is a no-op
/// regardless of `chunk_len` (the same degenerate-case contract as
/// [`parallel_for_each_chunk_mut`]); a non-empty `out` panics if its length
/// is not a multiple of `chunk_len` or if `group_of` returns an index `>=
/// num_groups`.
pub fn parallel_for_each_chunk_group_mut<G, F>(
    out: &mut [f32],
    chunk_len: usize,
    num_groups: usize,
    group_of: G,
    body: F,
) where
    G: Fn(usize) -> usize + Sync,
    F: Fn(usize, &mut [(usize, &mut [f32])]) + Sync,
{
    if out.is_empty() {
        // Same degenerate-case contract as `parallel_for_each_chunk_mut`:
        // zero chunks means nothing to do, whatever `chunk_len` says.
        return;
    }
    check_chunk_math("parallel_for_each_chunk_group_mut", out.len(), chunk_len);
    let mut groups: Vec<ChunkGroup<'_>> = (0..num_groups).map(|_| Vec::new()).collect();
    for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
        let group = group_of(idx);
        assert!(
            group < num_groups,
            "parallel_for_each_chunk_group_mut: group_of({idx}) returned {group} but only \
             {num_groups} groups were declared; the caller's group math must map every \
             chunk index below {} into 0..{num_groups}",
            out.len() / chunk_len.max(1),
        );
        groups[group].push((idx, chunk));
    }
    if num_threads() <= 1 || num_groups <= 1 {
        for (group_idx, group) in groups.iter_mut().enumerate() {
            body(group_idx, group);
        }
        return;
    }
    // Each slot is locked exactly once (the pool claims each group index
    // once), so the mutexes cost one uncontended lock per group and exist
    // only to hand the `&mut` chunk lists across threads safely.
    let slots: Vec<Mutex<ChunkGroup<'_>>> = groups.into_iter().map(Mutex::new).collect();
    pool::run(num_groups, 1, |start, end| {
        for (group_idx, slot) in slots.iter().enumerate().take(end).skip(start) {
            let mut group = slot.lock();
            body(group_idx, &mut group);
        }
    });
}

/// Splits `out` into the caller-described disjoint tiles of `groups`
/// (`groups[g]` lists that group's tiles as `(offset, len)` pairs) and runs
/// `body(group_index, tiles_of_that_group)` with each group handled by
/// exactly one worker; `grain` batches that many groups per pool claim.
///
/// This is the ragged companion to [`parallel_for_each_chunk_group_mut`]
/// for kernels whose unit of work is a *sub-range* of a chunk — e.g. the
/// tiled SCC backend splits each output plane into cache-sized row strips,
/// and the final strip of a ragged plane is shorter than the rest, so no
/// uniform `chunk_len` exists. Tiles are validated to be in-bounds and
/// pairwise disjoint before any body runs (an `O(T log T)` sort over the
/// tile list — negligible next to kernel work); overlapping or out-of-range
/// tiles panic. Each tile is passed as `(offset, slice)` so the body can
/// recover its coordinates from the offset alone.
pub fn parallel_for_tile_groups_mut<F>(
    out: &mut [f32],
    groups: &[Vec<(usize, usize)>],
    grain: usize,
    body: F,
) where
    F: Fn(usize, &mut [(usize, &mut [f32])]) + Sync,
{
    if groups.is_empty() {
        return;
    }
    let mut all: Vec<(usize, usize)> = groups
        .iter()
        .flatten()
        .copied()
        .filter(|&(_, len)| len > 0)
        .collect();
    all.sort_unstable();
    for pair in all.windows(2) {
        let (prev_off, prev_len) = pair[0];
        let (next_off, _) = pair[1];
        assert!(
            prev_off + prev_len <= next_off,
            "parallel_for_tile_groups_mut: tile [{prev_off}, {}) overlaps the tile starting \
             at {next_off}; tiles must be pairwise disjoint",
            prev_off + prev_len,
        );
    }
    if let Some(&(last_off, last_len)) = all.last() {
        assert!(
            last_off + last_len <= out.len(),
            "parallel_for_tile_groups_mut: tile [{last_off}, {}) exceeds the {}-element \
             output buffer",
            last_off + last_len,
            out.len(),
        );
    }
    let base = SharedMutF32::new(out);
    let run_group = |group_idx: usize| {
        let mut tiles: Vec<(usize, &mut [f32])> = groups[group_idx]
            .iter()
            .map(|&(offset, len)| {
                // SAFETY: tiles were validated pairwise disjoint and
                // in-bounds above, and each group index is visited exactly
                // once (sequentially below, or claimed once by the pool).
                (offset, unsafe { base.slice_mut(offset, len) })
            })
            .collect();
        body(group_idx, &mut tiles);
    };
    if num_threads() <= 1 || groups.len() <= 1 {
        for group_idx in 0..groups.len() {
            run_group(group_idx);
        }
        return;
    }
    pool::run(groups.len(), grain.max(1), |start, end| {
        for group_idx in start..end {
            run_group(group_idx);
        }
    });
}

/// Reduces `0..n` in parallel: the range is folded in fixed
/// [`MIN_CHUNK`]-sized chunks starting from clones of `identity`, and the
/// per-chunk partials are combined **in chunk order** — so the result is
/// deterministic for a given `n` regardless of the thread count or how the
/// pool happens to schedule the chunks.
pub fn parallel_reduce<T, FoldF, CombineF>(
    n: usize,
    identity: T,
    fold: FoldF,
    combine: CombineF,
) -> T
where
    T: Send + Clone,
    FoldF: Fn(T, usize) -> T + Sync,
    CombineF: Fn(T, T) -> T,
{
    if n == 0 {
        return identity;
    }
    let n_chunks = n.div_ceil(MIN_CHUNK);
    if num_threads() <= 1 || n_chunks == 1 {
        // Same chunk decomposition and combine order as the pooled path,
        // folded inline — so 1-thread and N-thread runs agree bit-for-bit
        // even for order-sensitive (floating-point) folds.
        let mut acc = identity.clone();
        for chunk in 0..n_chunks {
            let start = chunk * MIN_CHUNK;
            let end = ((chunk + 1) * MIN_CHUNK).min(n);
            let mut partial = identity.clone();
            for i in start..end {
                partial = fold(partial, i);
            }
            acc = combine(acc, partial);
        }
        return acc;
    }
    // Identity clones are made on the caller and moved through the cells,
    // so `T` needs no `Sync` bound; each cell is taken and refilled exactly
    // once by whichever worker claims its chunk.
    let cells: Vec<Mutex<Option<T>>> = (0..n_chunks)
        .map(|_| Mutex::new(Some(identity.clone())))
        .collect();
    pool::run(n_chunks, 1, |chunk_start, chunk_end| {
        for (chunk, cell) in cells.iter().enumerate().take(chunk_end).skip(chunk_start) {
            let start = chunk * MIN_CHUNK;
            let end = ((chunk + 1) * MIN_CHUNK).min(n);
            // lint: allow(panic) — the pool hands each chunk index to
            // exactly one participant, so the cell still holds its identity
            // clone; a None here is a scheduler bug worth dying loudly on.
            let mut acc = cell
                .lock()
                .take()
                // lint: allow(panic) — see above: claim-protocol invariant.
                .expect("each chunk is claimed exactly once");
            for i in start..end {
                acc = fold(acc, i);
            }
            *cell.lock() = Some(acc);
        }
    });
    cells
        .into_iter()
        .fold(identity, |acc, cell| match cell.into_inner() {
            Some(partial) => combine(acc, partial),
            None => acc,
        })
}

/// Serialises tests (across this crate) that flip the global thread count:
/// the test harness runs tests on parallel threads, so two save/flip/restore
/// sequences would otherwise interleave and restore each other's
/// intermediate value.
#[cfg(test)]
pub(crate) fn test_thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Problem size for a stress test: `full` natively, `small` under Miri
/// (interpretation is orders of magnitude slower — a 50k-element sweep
/// that takes milliseconds natively would stall the Miri CI job) or when
/// `DSX_TEST_FAST` is set (the sanitizer jobs use it the same way).
#[cfg(test)]
pub(crate) fn test_scale(full: usize, small: usize) -> usize {
    if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
        small
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = test_scale(10_000, 256);
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_empty_range() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_chunks_covers_range_without_overlap() {
        let n = test_scale(5000, 320);
        let sum = AtomicU64::new(0);
        parallel_for_chunks(n, 64, |start, end| {
            let local: u64 = (start..end).map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        let expected: u64 = (0..n as u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn chunk_mut_writes_each_chunk() {
        let mut data = vec![0.0f32; 16 * 8];
        parallel_for_each_chunk_mut(&mut data, 8, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in data.chunks(8).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    fn chunk_mut_writes_each_chunk_through_the_pool() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let mut data = vec![0.0f32; test_scale(512, 32) * 16];
        parallel_for_each_chunk_mut(&mut data, 16, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in data.chunks(16).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32), "chunk {i}");
        }
        set_num_threads(0);
    }

    #[test]
    #[should_panic(expected = "10 = 3 x 3 + 1")]
    fn chunk_mut_rejects_non_multiple_length_naming_the_chunk_math() {
        let mut data = vec![0.0f32; 10];
        parallel_for_each_chunk_mut(&mut data, 3, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn chunk_mut_rejects_zero_chunk_len() {
        let mut data = vec![0.0f32; 8];
        parallel_for_each_chunk_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn chunk_mut_treats_empty_output_as_a_no_op() {
        // A zero-size batch (e.g. an empty tensor reaching a kernel through
        // the serve batcher) holds zero chunks: no body call, no panic —
        // even with a chunk length that could never tile a non-empty slice.
        let mut data: Vec<f32> = Vec::new();
        parallel_for_each_chunk_mut(&mut data, 4, |_, _| panic!("no chunks to visit"));
        parallel_for_each_chunk_mut(&mut data, 0, |_, _| panic!("no chunks to visit"));
    }

    #[test]
    fn chunk_group_mut_treats_empty_output_as_a_no_op() {
        let mut data: Vec<f32> = Vec::new();
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            3,
            |_| 0,
            |_, _| panic!("no chunks to visit"),
        );
        parallel_for_each_chunk_group_mut(
            &mut data,
            0,
            3,
            |_| 0,
            |_, _| panic!("no chunks to visit"),
        );
    }

    #[test]
    fn chunk_group_mut_hands_each_group_its_chunks_in_order() {
        // 12 chunks of 4 elements, grouped round-robin into 3 groups.
        let mut data = vec![0.0f32; 12 * 4];
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            3,
            |idx| idx % 3,
            |group, chunks| {
                assert_eq!(chunks.len(), 4);
                let mut last = None;
                for (idx, chunk) in chunks.iter_mut() {
                    assert_eq!(*idx % 3, group);
                    assert!(
                        last.map(|l| l < *idx).unwrap_or(true),
                        "chunks out of order"
                    );
                    last = Some(*idx);
                    for v in chunk.iter_mut() {
                        *v = *idx as f32;
                    }
                }
            },
        );
        for (idx, chunk) in data.chunks(4).enumerate() {
            assert!(chunk.iter().all(|&v| v == idx as f32));
        }
    }

    #[test]
    fn chunk_group_mut_allows_empty_groups() {
        let mut data = vec![0.0f32; 8];
        let touched = AtomicUsize::new(0);
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            5,
            |_| 4,
            |group, chunks| {
                if !chunks.is_empty() {
                    assert_eq!(group, 4);
                    touched.fetch_add(chunks.len(), Ordering::Relaxed);
                }
            },
        );
        assert_eq!(touched.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "9 = 2 x 4 + 1")]
    fn chunk_group_mut_rejects_non_multiple_length_naming_the_chunk_math() {
        let mut data = vec![0.0f32; 9];
        parallel_for_each_chunk_group_mut(&mut data, 4, 1, |_| 0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "group_of(1) returned 7")]
    fn chunk_group_mut_rejects_out_of_range_group() {
        let mut data = vec![0.0f32; 8];
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            2,
            |idx| if idx == 1 { 7 } else { 0 },
            |_, _| {},
        );
    }

    #[test]
    fn tile_groups_mut_writes_ragged_disjoint_tiles() {
        // A 10-element buffer split into ragged tiles across 3 groups,
        // deliberately not in offset order and with an empty tile.
        let mut data = vec![0.0f32; 10];
        let groups = vec![
            vec![(7usize, 3usize), (0, 2)],
            vec![(2, 3)],
            vec![(5, 2), (5, 0)],
        ];
        parallel_for_tile_groups_mut(&mut data, &groups, 1, |group_idx, tiles| {
            for (offset, tile) in tiles.iter_mut() {
                for (k, v) in tile.iter_mut().enumerate() {
                    *v = (group_idx * 100 + *offset + k) as f32;
                }
            }
        });
        assert_eq!(
            data,
            vec![0.0, 1.0, 102.0, 103.0, 104.0, 205.0, 206.0, 7.0, 8.0, 9.0]
        );
    }

    #[test]
    fn tile_groups_mut_works_through_the_pool() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let n = 4096;
        let mut data = vec![0.0f32; n];
        let groups: Vec<Vec<(usize, usize)>> = (0..64).map(|g| vec![(g * 64, 64)]).collect();
        parallel_for_tile_groups_mut(&mut data, &groups, 4, |_g, tiles| {
            for (offset, tile) in tiles.iter_mut() {
                for (k, v) in tile.iter_mut().enumerate() {
                    *v = (*offset + k) as f32;
                }
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
        set_num_threads(0);
    }

    #[test]
    #[should_panic(expected = "overlaps the tile starting at 4")]
    fn tile_groups_mut_rejects_overlapping_tiles() {
        let mut data = vec![0.0f32; 10];
        let groups = vec![vec![(0usize, 6usize)], vec![(4, 2)]];
        parallel_for_tile_groups_mut(&mut data, &groups, 1, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "exceeds the 4-element output buffer")]
    fn tile_groups_mut_rejects_out_of_bounds_tiles() {
        let mut data = vec![0.0f32; 4];
        let groups = vec![vec![(2usize, 4usize)]];
        parallel_for_tile_groups_mut(&mut data, &groups, 1, |_, _| {});
    }

    #[test]
    fn parallel_reduce_matches_sequential_sum() {
        let n = test_scale(20_000, 512);
        let total = parallel_reduce(n, 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, (0..n as u64).sum());
    }

    #[test]
    fn parallel_reduce_is_deterministic_across_thread_counts() {
        let _guard = test_thread_guard();
        let n = test_scale(50_000, 1024);
        // Floating-point folds are order-sensitive; the fixed chunking +
        // in-order combine must give bit-identical results at any count.
        let reduce = || {
            parallel_reduce(
                n,
                0.0f32,
                |acc, i| acc + (i as f32).sqrt() * 1e-3,
                |a, b| a + b,
            )
        };
        set_num_threads(1);
        let single = reduce();
        set_num_threads(4);
        let pooled = reduce();
        set_num_threads(0);
        assert_eq!(single.to_bits(), pooled.to_bits());
    }

    #[test]
    fn thread_count_override_round_trips() {
        let _guard = test_thread_guard();
        let original = NUM_THREADS.load(Ordering::SeqCst);
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(original);
    }
}
