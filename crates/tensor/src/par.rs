//! CPU parallel runtime: a chunked `parallel_for` built on `crossbeam::scope`.
//!
//! The DSXplore GPU kernels launch `N * Cout * Fw * Fw` threads (forward) or
//! `N * Cin * Fw * Fw` threads (input-centric backward), each handling one
//! pixel. On a CPU we reproduce the same decomposition by splitting the
//! iteration space into contiguous chunks and handing each chunk to an OS
//! thread; the per-"thread" work function receives the global index exactly
//! like the CUDA `thread_id` in Algorithm 2 of the paper.
//!
//! The number of worker threads defaults to the machine's available
//! parallelism and can be overridden globally ([`set_num_threads`]) or per
//! call; a value of 1 runs inline with zero thread overhead, which is also
//! what the test-suite uses to keep results deterministic.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-thread count override. 0 means "not set, use the hardware
/// default".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Guards structural changes to the pool configuration (only the thread
/// count today; kept as an RwLock so future settings can join it without an
/// API break).
static CONFIG_LOCK: RwLock<()> = RwLock::new(());

/// Sets the number of worker threads used by [`parallel_for`] and
/// [`parallel_for_chunks`]. `0` restores the hardware default.
pub fn set_num_threads(n: usize) {
    let _guard = CONFIG_LOCK.write();
    NUM_THREADS.store(n, Ordering::SeqCst);
}

/// Current number of worker threads [`parallel_for`] will use.
pub fn num_threads() -> usize {
    let configured = NUM_THREADS.load(Ordering::SeqCst);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimum number of iterations per spawned thread; below this the loop runs
/// inline because thread spawn/join costs would dominate.
pub const MIN_CHUNK: usize = 1024;

/// Runs `body(i)` for every `i in 0..n`, splitting the range over the worker
/// threads. `body` must be safe to call concurrently for distinct indices.
///
/// This mirrors a GPU kernel launch of `n` threads: each index is touched
/// exactly once and no two workers share an index.
pub fn parallel_for<F>(n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks(n, MIN_CHUNK, |start, end| {
        for i in start..end {
            body(i);
        }
    });
}

/// Runs `body(start, end)` over disjoint sub-ranges covering `0..n`.
///
/// `min_chunk` bounds how small a sub-range may get; the scheduler never
/// spawns more threads than `num_threads()` and falls back to a single inline
/// call when `n` is small.
pub fn parallel_for_chunks<F>(n: usize, min_chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = num_threads();
    if workers <= 1 || n <= min_chunk.max(1) {
        body(0, n);
        return;
    }
    let chunks = workers.min(n.div_ceil(min_chunk.max(1)));
    let chunk_size = n.div_ceil(chunks);
    crossbeam::scope(|scope| {
        for c in 0..chunks {
            let start = c * chunk_size;
            let end = ((c + 1) * chunk_size).min(n);
            if start >= end {
                continue;
            }
            let body_ref = &body;
            scope.spawn(move |_| body_ref(start, end));
        }
    })
    .expect("parallel_for worker panicked");
}

/// Splits `out` into disjoint mutable chunks of `chunk_len` elements and runs
/// `body(chunk_index, chunk)` for each in parallel.
///
/// An empty `out` is a no-op (zero chunks) regardless of `chunk_len`; a
/// non-empty `out` requires a positive `chunk_len` that divides its length.
///
/// This is the pattern used by kernels that own one output row / channel per
/// logical thread (e.g. the SCC output-centric forward writes each output
/// channel's spatial map from exactly one chunk), so no synchronisation is
/// needed.
pub fn parallel_for_each_chunk_mut<F>(out: &mut [f32], chunk_len: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        // Unified degenerate-case contract (shared with the grouped
        // variant): an empty slice holds zero chunks, so the call is a
        // no-op regardless of `chunk_len` — a zero-size batch coming out of
        // the serve batcher must not trip the chunk-math validation below.
        return;
    }
    check_chunk_math("parallel_for_each_chunk_mut", out.len(), chunk_len);
    let n_chunks = out.len() / chunk_len;
    let workers = num_threads();
    if workers <= 1 || n_chunks <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(i, chunk);
        }
        return;
    }
    // Hand out chunks to scoped threads round-robin; chunks_mut gives us
    // disjoint borrows so this is safe without locks.
    crossbeam::scope(|scope| {
        let chunks: Vec<(usize, &mut [f32])> = out.chunks_mut(chunk_len).enumerate().collect();
        let per_worker = chunks.len().div_ceil(workers);
        let mut iter = chunks.into_iter();
        loop {
            let batch: Vec<(usize, &mut [f32])> = iter.by_ref().take(per_worker).collect();
            if batch.is_empty() {
                break;
            }
            let body_ref = &body;
            scope.spawn(move |_| {
                for (i, chunk) in batch {
                    body_ref(i, chunk);
                }
            });
        }
    })
    .expect("parallel_for_each_chunk_mut worker panicked");
}

/// Validates the caller's chunk decomposition of a slice, panicking with a
/// message that spells out the failed chunk math instead of a bare modulo
/// assertion deep inside the runtime.
fn check_chunk_math(caller: &str, len: usize, chunk_len: usize) {
    assert!(
        chunk_len > 0,
        "{caller}: chunk_len must be positive (a zero-length chunk can never tile the \
         {len}-element slice)"
    );
    let remainder = len % chunk_len;
    assert!(
        remainder == 0,
        "{caller}: a slice of {len} f32s does not split into whole chunks of {chunk_len} \
         ({len} = {} x {chunk_len} + {remainder}); the caller's chunk math is wrong — its \
         slice length and chunk length must agree (e.g. plane = H*W chunks over an \
         N*C*H*W buffer), so fix the chunk length or pad the buffer to a multiple of it.",
        len / chunk_len,
    );
}

/// Splits `out` into disjoint chunks of `chunk_len` elements, assigns every
/// chunk to a *group* via `group_of(chunk_index)`, and runs
/// `body(group_index, chunks_of_that_group)` with each group handled by
/// exactly one worker thread.
///
/// This is the tiled companion to [`parallel_for_each_chunk_mut`] for kernels
/// whose unit of cache reuse spans *several* non-contiguous chunks: e.g. the
/// blocked SCC forward kernel groups all output-channel planes that share one
/// input-channel window (`group = img * cyclic_dist + oc % cyclic_dist`) so
/// one worker can stream the window's input tiles once and accumulate every
/// plane of the group from registers. Each chunk still has exactly one
/// writer, so no synchronisation is needed.
///
/// The chunks of a group are passed as `(chunk_index, chunk)` pairs in
/// ascending chunk order. Groups may be empty. An empty `out` is a no-op
/// regardless of `chunk_len` (the same degenerate-case contract as
/// [`parallel_for_each_chunk_mut`]); a non-empty `out` panics if its length
/// is not a multiple of `chunk_len` or if `group_of` returns an index `>=
/// num_groups`.
pub fn parallel_for_each_chunk_group_mut<G, F>(
    out: &mut [f32],
    chunk_len: usize,
    num_groups: usize,
    group_of: G,
    body: F,
) where
    G: Fn(usize) -> usize + Sync,
    F: Fn(usize, &mut [(usize, &mut [f32])]) + Sync,
{
    /// One group's chunks: `(chunk_index, chunk)` pairs in ascending order.
    type ChunkGroup<'a> = Vec<(usize, &'a mut [f32])>;
    if out.is_empty() {
        // Same degenerate-case contract as `parallel_for_each_chunk_mut`:
        // zero chunks means nothing to do, whatever `chunk_len` says.
        return;
    }
    check_chunk_math("parallel_for_each_chunk_group_mut", out.len(), chunk_len);
    let mut groups: Vec<ChunkGroup<'_>> = (0..num_groups).map(|_| Vec::new()).collect();
    for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
        let group = group_of(idx);
        assert!(
            group < num_groups,
            "parallel_for_each_chunk_group_mut: group_of({idx}) returned {group} but only \
             {num_groups} groups were declared; the caller's group math must map every \
             chunk index below {} into 0..{num_groups}",
            out.len() / chunk_len.max(1),
        );
        groups[group].push((idx, chunk));
    }
    let workers = num_threads();
    if workers <= 1 || num_groups <= 1 {
        for (group_idx, group) in groups.iter_mut().enumerate() {
            body(group_idx, group);
        }
        return;
    }
    crossbeam::scope(|scope| {
        let per_worker = groups.len().div_ceil(workers);
        let mut iter = groups.into_iter().enumerate();
        loop {
            let batch: Vec<(usize, ChunkGroup<'_>)> = iter.by_ref().take(per_worker).collect();
            if batch.is_empty() {
                break;
            }
            let body_ref = &body;
            scope.spawn(move |_| {
                for (group_idx, mut group) in batch {
                    body_ref(group_idx, &mut group);
                }
            });
        }
    })
    .expect("parallel_for_each_chunk_group_mut worker panicked");
}

/// Reduces `0..n` in parallel: every worker folds its sub-range with `fold`
/// starting from `identity`, and the per-worker results are combined with
/// `combine`.
pub fn parallel_reduce<T, FoldF, CombineF>(
    n: usize,
    identity: T,
    fold: FoldF,
    combine: CombineF,
) -> T
where
    T: Send + Clone,
    FoldF: Fn(T, usize) -> T + Sync,
    CombineF: Fn(T, T) -> T,
{
    if n == 0 {
        return identity;
    }
    let workers = num_threads();
    if workers <= 1 || n <= MIN_CHUNK {
        let mut acc = identity;
        for i in 0..n {
            acc = fold(acc, i);
        }
        return acc;
    }
    let chunks = workers.min(n.div_ceil(MIN_CHUNK));
    let chunk_size = n.div_ceil(chunks);
    let partials = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..chunks {
            let start = c * chunk_size;
            let end = ((c + 1) * chunk_size).min(n);
            if start >= end {
                continue;
            }
            let fold_ref = &fold;
            let id = identity.clone();
            handles.push(scope.spawn(move |_| {
                let mut acc = id;
                for i in start..end {
                    acc = fold_ref(acc, i);
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_reduce worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("parallel_reduce scope failed");
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_empty_range() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_chunks_covers_range_without_overlap() {
        let n = 5000;
        let sum = AtomicU64::new(0);
        parallel_for_chunks(n, 64, |start, end| {
            let local: u64 = (start..end).map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        let expected: u64 = (0..n as u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn chunk_mut_writes_each_chunk() {
        let mut data = vec![0.0f32; 16 * 8];
        parallel_for_each_chunk_mut(&mut data, 8, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, chunk) in data.chunks(8).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    #[should_panic(expected = "10 = 3 x 3 + 1")]
    fn chunk_mut_rejects_non_multiple_length_naming_the_chunk_math() {
        let mut data = vec![0.0f32; 10];
        parallel_for_each_chunk_mut(&mut data, 3, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn chunk_mut_rejects_zero_chunk_len() {
        let mut data = vec![0.0f32; 8];
        parallel_for_each_chunk_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn chunk_mut_treats_empty_output_as_a_no_op() {
        // A zero-size batch (e.g. an empty tensor reaching a kernel through
        // the serve batcher) holds zero chunks: no body call, no panic —
        // even with a chunk length that could never tile a non-empty slice.
        let mut data: Vec<f32> = Vec::new();
        parallel_for_each_chunk_mut(&mut data, 4, |_, _| panic!("no chunks to visit"));
        parallel_for_each_chunk_mut(&mut data, 0, |_, _| panic!("no chunks to visit"));
    }

    #[test]
    fn chunk_group_mut_treats_empty_output_as_a_no_op() {
        let mut data: Vec<f32> = Vec::new();
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            3,
            |_| 0,
            |_, _| panic!("no chunks to visit"),
        );
        parallel_for_each_chunk_group_mut(
            &mut data,
            0,
            3,
            |_| 0,
            |_, _| panic!("no chunks to visit"),
        );
    }

    #[test]
    fn chunk_group_mut_hands_each_group_its_chunks_in_order() {
        // 12 chunks of 4 elements, grouped round-robin into 3 groups.
        let mut data = vec![0.0f32; 12 * 4];
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            3,
            |idx| idx % 3,
            |group, chunks| {
                assert_eq!(chunks.len(), 4);
                let mut last = None;
                for (idx, chunk) in chunks.iter_mut() {
                    assert_eq!(*idx % 3, group);
                    assert!(
                        last.map(|l| l < *idx).unwrap_or(true),
                        "chunks out of order"
                    );
                    last = Some(*idx);
                    for v in chunk.iter_mut() {
                        *v = *idx as f32;
                    }
                }
            },
        );
        for (idx, chunk) in data.chunks(4).enumerate() {
            assert!(chunk.iter().all(|&v| v == idx as f32));
        }
    }

    #[test]
    fn chunk_group_mut_allows_empty_groups() {
        let mut data = vec![0.0f32; 8];
        let touched = AtomicUsize::new(0);
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            5,
            |_| 4,
            |group, chunks| {
                if !chunks.is_empty() {
                    assert_eq!(group, 4);
                    touched.fetch_add(chunks.len(), Ordering::Relaxed);
                }
            },
        );
        assert_eq!(touched.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "9 = 2 x 4 + 1")]
    fn chunk_group_mut_rejects_non_multiple_length_naming_the_chunk_math() {
        let mut data = vec![0.0f32; 9];
        parallel_for_each_chunk_group_mut(&mut data, 4, 1, |_| 0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "group_of(1) returned 7")]
    fn chunk_group_mut_rejects_out_of_range_group() {
        let mut data = vec![0.0f32; 8];
        parallel_for_each_chunk_group_mut(
            &mut data,
            4,
            2,
            |idx| if idx == 1 { 7 } else { 0 },
            |_, _| {},
        );
    }

    #[test]
    fn parallel_reduce_matches_sequential_sum() {
        let n = 20_000;
        let total = parallel_reduce(n, 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, (0..n as u64).sum());
    }

    #[test]
    fn thread_count_override_round_trips() {
        let original = NUM_THREADS.load(Ordering::SeqCst);
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(original);
    }
}
