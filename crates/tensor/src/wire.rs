//! Wire encoding of tensors: the shape + `f32` payload layout the
//! `dsx-net` TCP protocol carries inside its frames.
//!
//! The layout is deliberately minimal and fully little-endian:
//!
//! ```text
//! rank: u8 | dims[rank]: u32 LE | data[numel]: f32 LE
//! ```
//!
//! Decoding is defensive — it is fed bytes straight off a socket, so every
//! length, rank and element count is validated (with overflow-checked
//! arithmetic) before any allocation larger than the input itself.

use crate::tensor::Tensor;

/// Largest rank the wire encoding accepts. Everything in the workspace is
/// rank ≤ 4 (NCHW); 8 leaves headroom without letting a hostile byte
/// allocate a huge dims vector.
pub const MAX_WIRE_RANK: usize = 8;

/// Largest element count the wire decoder accepts (256 Mi elements = 1 GiB
/// of `f32`), a hard cap against absurd shapes in otherwise well-formed
/// frames.
pub const MAX_WIRE_NUMEL: usize = 1 << 28;

impl Tensor {
    /// Appends this tensor's wire encoding (`rank | dims | f32 payload`,
    /// all little-endian) to `out`.
    ///
    /// Panics if the tensor's rank exceeds [`MAX_WIRE_RANK`] or any
    /// dimension exceeds `u32::MAX` — both impossible for tensors this
    /// workspace builds.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        let dims = self.shape();
        assert!(
            dims.len() <= MAX_WIRE_RANK,
            "rank {} exceeds the wire limit {MAX_WIRE_RANK}",
            dims.len()
        );
        out.reserve(1 + 4 * dims.len() + 4 * self.numel());
        out.push(dims.len() as u8);
        for &d in dims {
            // lint: allow(panic) — a >4-billion-element dimension cannot
            // exist in an in-memory f32 tensor on this machine; encoding
            // is not a hostile-input path (decoding is, and is checked).
            let d = u32::try_from(d).expect("dimension exceeds u32 on the wire");
            out.extend_from_slice(&d.to_le_bytes());
        }
        for &v in self.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// The number of bytes [`Tensor::encode_wire`] appends for this tensor.
    pub fn wire_len(&self) -> usize {
        1 + 4 * self.rank() + 4 * self.numel()
    }

    /// Decodes one wire-encoded tensor from the front of `bytes`, returning
    /// it together with the number of bytes consumed. Trailing bytes are
    /// left for the caller (frames may append nothing, but the contract is
    /// explicit about consumption either way).
    pub fn decode_wire(bytes: &[u8]) -> Result<(Tensor, usize), WireDecodeError> {
        let mut offset = 0usize;
        let take = |offset: &mut usize, n: usize| -> Result<&[u8], WireDecodeError> {
            let end = offset
                .checked_add(n)
                .filter(|&end| end <= bytes.len())
                .ok_or(WireDecodeError::Truncated {
                    needed: n,
                    available: bytes.len() - *offset,
                })?;
            let slice = &bytes[*offset..end];
            *offset = end;
            Ok(slice)
        };

        let rank = take(&mut offset, 1)?[0] as usize;
        if rank > MAX_WIRE_RANK {
            return Err(WireDecodeError::RankTooLarge(rank));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut numel = 1usize;
        for _ in 0..rank {
            let raw = take(&mut offset, 4)?;
            let d = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]) as usize;
            numel = numel
                .checked_mul(d)
                .filter(|&n| n <= MAX_WIRE_NUMEL)
                .ok_or(WireDecodeError::TooManyElements)?;
            dims.push(d);
        }
        let payload = take(&mut offset, 4 * numel)?;
        let data: Vec<f32> = payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok((Tensor::from_vec(data, &dims), offset))
    }
}

/// Why a wire-encoded tensor failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The buffer ended before the encoding did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually left in the buffer.
        available: usize,
    },
    /// The declared rank exceeds [`MAX_WIRE_RANK`].
    RankTooLarge(usize),
    /// The declared dimensions multiply past [`MAX_WIRE_NUMEL`] (or
    /// overflow `usize`).
    TooManyElements,
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireDecodeError::Truncated { needed, available } => write!(
                f,
                "truncated tensor encoding: needed {needed} more bytes, {available} left"
            ),
            WireDecodeError::RankTooLarge(rank) => {
                write!(
                    f,
                    "tensor rank {rank} exceeds the wire limit {MAX_WIRE_RANK}"
                )
            }
            WireDecodeError::TooManyElements => write!(
                f,
                "tensor element count exceeds the wire limit {MAX_WIRE_NUMEL}"
            ),
        }
    }
}

impl std::error::Error for WireDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_ranks_and_zero_sizes() {
        for dims in [
            vec![],
            vec![3],
            vec![2, 3],
            vec![1, 3, 8, 8],
            vec![0, 2, 2, 2],
        ] {
            let t = if dims.iter().product::<usize>() == 0 {
                Tensor::zeros(&dims)
            } else {
                Tensor::randn(&dims, 42)
            };
            let mut bytes = Vec::new();
            t.encode_wire(&mut bytes);
            assert_eq!(bytes.len(), t.wire_len(), "{dims:?}");
            let (back, consumed) = Tensor::decode_wire(&bytes).unwrap();
            assert_eq!(consumed, bytes.len(), "{dims:?}");
            assert_eq!(back.shape(), t.shape());
            assert_eq!(back.as_slice(), t.as_slice());
        }
    }

    #[test]
    fn decode_reports_consumed_bytes_and_ignores_trailing_data() {
        let t = Tensor::arange(&[2, 2]);
        let mut bytes = Vec::new();
        t.encode_wire(&mut bytes);
        let encoded = bytes.len();
        bytes.extend_from_slice(&[0xAA; 7]);
        let (back, consumed) = Tensor::decode_wire(&bytes).unwrap();
        assert_eq!(consumed, encoded);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let t = Tensor::arange(&[2, 3]);
        let mut bytes = Vec::new();
        t.encode_wire(&mut bytes);
        for cut in 0..bytes.len() {
            let err = Tensor::decode_wire(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireDecodeError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_rank_and_element_counts_are_rejected() {
        // Rank 200: rejected before any dims are read.
        assert_eq!(
            Tensor::decode_wire(&[200]),
            Err(WireDecodeError::RankTooLarge(200))
        );
        // Two u32::MAX dims: the product overflows; rejected before any
        // payload-sized allocation.
        let mut bytes = vec![2u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Tensor::decode_wire(&bytes),
            Err(WireDecodeError::TooManyElements)
        );
        // A single huge-but-not-overflowing dim still trips the cap.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&(MAX_WIRE_NUMEL as u32 + 1).to_le_bytes());
        assert_eq!(
            Tensor::decode_wire(&bytes),
            Err(WireDecodeError::TooManyElements)
        );
    }

    #[test]
    fn scalar_rank_zero_round_trips() {
        let t = Tensor::full(&[], 3.25);
        let mut bytes = Vec::new();
        t.encode_wire(&mut bytes);
        assert_eq!(bytes.len(), 1 + 4);
        let (back, consumed) = Tensor::decode_wire(&bytes).unwrap();
        assert_eq!(consumed, 5);
        assert_eq!(back.as_slice(), &[3.25]);
    }
}
