//! NCHW channel slicing and concatenation.
//!
//! The PyTorch operator-composition baselines in the DSXplore paper (the
//! *channel-stack* and *convolution-stack* implementations, Fig. 3) are built
//! from exactly three tensor manipulations: indexing a channel window out of
//! an NCHW feature map, concatenating feature maps along the channel axis,
//! and (for the cyclic-optimized variants) repeating a block of channels.
//! This module provides those operators — including the wrap-around
//! ("channel-cyclic") window extraction — together with byte accounting used
//! by the memory experiments (Fig. 10).

use crate::tensor::Tensor;

impl Tensor {
    /// Extracts channels `[start, start + len)` of an NCHW tensor into a new
    /// `[N, len, H, W]` tensor (a data copy, like `torch.narrow(...)
    /// .contiguous()`).
    pub fn narrow_channels(&self, start: usize, len: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "narrow_channels requires an NCHW tensor");
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        assert!(
            start + len <= c,
            "channel window [{start}, {}) exceeds {c} channels",
            start + len
        );
        let plane = h * w;
        let mut out = Tensor::zeros(&[n, len, h, w]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for b in 0..n {
            let src_base = (b * c + start) * plane;
            let dst_base = b * len * plane;
            dst[dst_base..dst_base + len * plane]
                .copy_from_slice(&src[src_base..src_base + len * plane]);
        }
        out
    }

    /// Extracts a channel window of length `len` starting at `start`,
    /// wrapping around the channel axis when `start + len > C`.
    ///
    /// This is the "channel-cyclic" window of the SCC filters: the last input
    /// channel is logically adjacent to the first one (paper §III-A).
    pub fn narrow_channels_cyclic(&self, start: usize, len: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "narrow_channels_cyclic requires NCHW");
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        assert!(len <= c, "cyclic window of {len} exceeds {c} channels");
        let start = start % c;
        if start + len <= c {
            return self.narrow_channels(start, len);
        }
        let first = c - start;
        let head = self.narrow_channels(start, first);
        let tail = self.narrow_channels(0, len - first);
        let _ = (n, h, w);
        Tensor::cat_channels(&[&head, &tail])
    }

    /// Concatenates NCHW tensors along the channel axis. All inputs must
    /// agree in batch and spatial dimensions.
    pub fn cat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat_channels needs at least one tensor");
        let first = parts[0];
        assert_eq!(first.rank(), 4, "cat_channels requires NCHW tensors");
        let (n, h, w) = (first.dim(0), first.dim(2), first.dim(3));
        let total_c: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.rank(), 4, "cat_channels requires NCHW tensors");
                assert_eq!(p.dim(0), n, "batch dimension mismatch in cat_channels");
                assert_eq!(p.dim(2), h, "height mismatch in cat_channels");
                assert_eq!(p.dim(3), w, "width mismatch in cat_channels");
                p.dim(1)
            })
            .sum();
        let plane = h * w;
        let mut out = Tensor::zeros(&[n, total_c, h, w]);
        let dst = out.as_mut_slice();
        for b in 0..n {
            let mut c_off = 0usize;
            for p in parts {
                let pc = p.dim(1);
                let src = p.as_slice();
                let src_base = b * pc * plane;
                let dst_base = (b * total_c + c_off) * plane;
                dst[dst_base..dst_base + pc * plane]
                    .copy_from_slice(&src[src_base..src_base + pc * plane]);
                c_off += pc;
            }
        }
        out
    }

    /// Repeats the channels of an NCHW tensor `times` times along the channel
    /// axis (the cyclic-optimized channel-stack builds its big tensor this
    /// way instead of re-slicing the input, Fig. 6a).
    pub fn repeat_channels(&self, times: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "repeat_channels requires an NCHW tensor");
        assert!(times > 0, "repeat_channels requires times >= 1");
        let refs: Vec<&Tensor> = std::iter::repeat_n(self, times).collect();
        Tensor::cat_channels(&refs)
    }

    /// Stacks tensors along the batch (first) axis into one contiguous
    /// tensor: inputs of shape `[n_i, D...]` produce `[sum(n_i), D...]`.
    ///
    /// This is the gather half of the serving batcher: per-request inputs
    /// (usually `[1, C, H, W]`) are stacked into a single batched tensor so
    /// one `infer` call serves every request. All inputs must agree in rank
    /// and trailing dimensions; batch-0 inputs are allowed and contribute
    /// nothing.
    pub fn cat_batch(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat_batch needs at least one tensor");
        let first = parts[0];
        assert!(first.rank() >= 1, "cat_batch requires rank >= 1 tensors");
        let trailing = &first.shape()[1..];
        let total_n: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(
                    &p.shape()[1..],
                    trailing,
                    "cat_batch trailing-dimension mismatch: {:?} vs {:?}",
                    p.shape(),
                    first.shape()
                );
                p.dim(0)
            })
            .sum();
        let mut dims = vec![total_n];
        dims.extend_from_slice(trailing);
        let mut out = Tensor::zeros(&dims);
        let mut offset = 0usize;
        let dst = out.as_mut_slice();
        for p in parts {
            let src = p.as_slice();
            dst[offset..offset + src.len()].copy_from_slice(src);
            offset += src.len();
        }
        out
    }

    /// Splits a tensor along the batch (first) axis into pieces of the given
    /// batch sizes (which must sum to `dim(0)`) — the scatter half of the
    /// serving batcher, carving per-request outputs back out of a batched
    /// result. Zero-sized pieces are allowed.
    pub fn split_batch(&self, batch_sizes: &[usize]) -> Vec<Tensor> {
        assert!(self.rank() >= 1, "split_batch requires a rank >= 1 tensor");
        let total: usize = batch_sizes.iter().sum();
        assert_eq!(
            total,
            self.dim(0),
            "split_batch sizes sum to {total} but the batch axis holds {}",
            self.dim(0)
        );
        let stride: usize = self.shape()[1..].iter().product();
        let mut out = Vec::with_capacity(batch_sizes.len());
        let mut start = 0usize;
        for &n in batch_sizes {
            let mut dims = vec![n];
            dims.extend_from_slice(&self.shape()[1..]);
            out.push(Tensor::from_vec(
                self.as_slice()[start * stride..(start + n) * stride].to_vec(),
                &dims,
            ));
            start += n;
        }
        out
    }

    /// Splits an NCHW tensor into `groups` equal channel groups.
    pub fn split_channels(&self, groups: usize) -> Vec<Tensor> {
        assert_eq!(self.rank(), 4, "split_channels requires an NCHW tensor");
        let c = self.dim(1);
        assert!(
            groups > 0 && c.is_multiple_of(groups),
            "{c} channels not divisible into {groups} groups"
        );
        let width = c / groups;
        (0..groups)
            .map(|g| self.narrow_channels(g * width, width))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        // 2 batches, 4 channels, 2x2 spatial; values encode (n, c, h, w).
        let mut t = Tensor::zeros(&[2, 4, 2, 2]);
        for n in 0..2 {
            for c in 0..4 {
                for h in 0..2 {
                    for w in 0..2 {
                        *t.at4_mut(n, c, h, w) = (n * 1000 + c * 100 + h * 10 + w) as f32;
                    }
                }
            }
        }
        t
    }

    #[test]
    fn narrow_channels_extracts_contiguous_window() {
        let t = sample();
        let s = t.narrow_channels(1, 2);
        assert_eq!(s.shape(), &[2, 2, 2, 2]);
        assert_eq!(s.at4(0, 0, 0, 0), 100.0);
        assert_eq!(s.at4(0, 1, 1, 1), 211.0);
        assert_eq!(s.at4(1, 0, 0, 1), 1101.0);
    }

    #[test]
    #[should_panic]
    fn narrow_channels_rejects_out_of_range_window() {
        sample().narrow_channels(3, 2);
    }

    #[test]
    fn cyclic_window_wraps_around() {
        let t = sample();
        let s = t.narrow_channels_cyclic(3, 2);
        assert_eq!(s.shape(), &[2, 2, 2, 2]);
        // First channel of the window is channel 3, second wraps to channel 0.
        assert_eq!(s.at4(0, 0, 0, 0), 300.0);
        assert_eq!(s.at4(0, 1, 0, 0), 0.0);
        assert_eq!(s.at4(1, 1, 1, 0), 1010.0);
    }

    #[test]
    fn cyclic_window_without_wrap_equals_plain_narrow() {
        let t = sample();
        let a = t.narrow_channels_cyclic(1, 2);
        let b = t.narrow_channels(1, 2);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn cat_channels_round_trips_split() {
        let t = sample();
        let parts = t.split_channels(2);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::cat_channels(&refs);
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn cat_channels_sums_channel_dims() {
        let a = Tensor::ones(&[1, 2, 3, 3]);
        let b = Tensor::zeros(&[1, 5, 3, 3]);
        let c = Tensor::cat_channels(&[&a, &b]);
        assert_eq!(c.shape(), &[1, 7, 3, 3]);
        assert_eq!(c.at4(0, 1, 2, 2), 1.0);
        assert_eq!(c.at4(0, 2, 0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn cat_channels_rejects_spatial_mismatch() {
        let a = Tensor::ones(&[1, 2, 3, 3]);
        let b = Tensor::ones(&[1, 2, 4, 4]);
        Tensor::cat_channels(&[&a, &b]);
    }

    #[test]
    fn repeat_channels_duplicates_content() {
        let t = sample();
        let r = t.repeat_channels(3);
        assert_eq!(r.shape(), &[2, 12, 2, 2]);
        for c in 0..4 {
            assert_eq!(r.at4(0, c, 0, 0), r.at4(0, c + 4, 0, 0));
            assert_eq!(r.at4(0, c, 0, 0), r.at4(0, c + 8, 0, 0));
        }
    }

    #[test]
    #[should_panic]
    fn split_channels_requires_divisibility() {
        sample().split_channels(3);
    }

    #[test]
    fn cat_batch_stacks_along_the_first_axis() {
        let a = Tensor::arange(&[1, 2, 2, 2]);
        let b = a.map(|v| v + 100.0);
        let c = Tensor::cat_batch(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 2, 2, 2]);
        assert_eq!(&c.as_slice()[..8], a.as_slice());
        assert_eq!(&c.as_slice()[8..], b.as_slice());
        // Mixed batch sizes and rank-2 tensors work too.
        let x = Tensor::arange(&[2, 3]);
        let y = Tensor::arange(&[1, 3]);
        assert_eq!(Tensor::cat_batch(&[&x, &y]).shape(), &[3, 3]);
    }

    #[test]
    fn cat_batch_allows_zero_sized_batches() {
        let empty = Tensor::zeros(&[0, 2, 2, 2]);
        let one = Tensor::ones(&[1, 2, 2, 2]);
        let c = Tensor::cat_batch(&[&empty, &one, &empty]);
        assert_eq!(c.shape(), &[1, 2, 2, 2]);
        assert_eq!(c.as_slice(), one.as_slice());
        let all_empty = Tensor::cat_batch(&[&empty]);
        assert_eq!(all_empty.shape(), &[0, 2, 2, 2]);
        assert_eq!(all_empty.numel(), 0);
    }

    #[test]
    #[should_panic]
    fn cat_batch_rejects_trailing_dim_mismatch() {
        let a = Tensor::zeros(&[1, 2, 2, 2]);
        let b = Tensor::zeros(&[1, 3, 2, 2]);
        Tensor::cat_batch(&[&a, &b]);
    }

    #[test]
    fn split_batch_round_trips_cat_batch() {
        let a = Tensor::arange(&[2, 3]);
        let b = Tensor::arange(&[1, 3]).map(|v| v + 50.0);
        let joined = Tensor::cat_batch(&[&a, &b]);
        let parts = joined.split_batch(&[2, 1]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].as_slice(), a.as_slice());
        assert_eq!(parts[1].as_slice(), b.as_slice());
    }

    #[test]
    fn split_batch_allows_zero_sized_pieces() {
        let t = Tensor::arange(&[2, 4]);
        let parts = t.split_batch(&[0, 2, 0]);
        assert_eq!(parts[0].shape(), &[0, 4]);
        assert_eq!(parts[1].as_slice(), t.as_slice());
        assert_eq!(parts[2].numel(), 0);
    }

    #[test]
    #[should_panic]
    fn split_batch_rejects_wrong_total() {
        Tensor::arange(&[3, 2]).split_batch(&[2, 2]);
    }
}
