//! CRC-32 (IEEE 802.3 polynomial) over byte slices.
//!
//! The checkpoint format in `dsx-models` guards every tensor record and the
//! whole file with this checksum; it lives here next to the [`wire`] codec
//! so the two halves of the on-disk format share one crate. The
//! implementation is the classic reflected table-driven CRC-32
//! (polynomial `0xEDB88320`), which matches zlib/`cksum -o 3`/Python's
//! `zlib.crc32` — handy when a fixture needs to be inspected outside Rust.
//!
//! [`wire`]: crate::wire

/// One 256-entry lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 accumulator: feed byte slices with [`Crc32::update`],
/// read the digest with [`Crc32::finish`]. Useful when the checksummed
/// region is produced incrementally (the checkpoint writer checksums a file
/// while streaming records into it).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (the accumulator stays usable).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC-32 of one contiguous byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_match_the_ieee_crc32() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut streaming = Crc32::new();
        for chunk in data.chunks(37) {
            streaming.update(chunk);
        }
        assert_eq!(streaming.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
