//! Convolution lowering utilities: zero padding, `im2col` and `col2im`.
//!
//! Standard and grouped convolutions in DSXplore-rs are lowered to GEMM via
//! `im2col`, which is how the cuDNN-backed PyTorch baselines in the paper are
//! implemented. The SCC kernels in `dsx-core` deliberately do *not* use this
//! path (the paper explains why a GEMM lowering of SCC is inefficient —
//! §III-B); they operate directly on NCHW buffers instead.

use crate::par;
use crate::tensor::Tensor;

/// Zero-pads the spatial dimensions of an NCHW tensor by `pad` pixels on each
/// side. `pad == 0` returns a plain copy.
pub fn pad_nchw(input: &Tensor, pad: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "pad_nchw requires an NCHW tensor");
    if pad == 0 {
        return input.clone();
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, ph, pw]);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for img in 0..n {
        for ch in 0..c {
            for y in 0..h {
                let src_base = ((img * c + ch) * h + y) * w;
                let dst_base = ((img * c + ch) * ph + y + pad) * pw + pad;
                dst[dst_base..dst_base + w].copy_from_slice(&src[src_base..src_base + w]);
            }
        }
    }
    out
}

/// Removes `pad` pixels of spatial padding from each side of an NCHW tensor
/// (inverse of [`pad_nchw`] for the valid region).
pub fn unpad_nchw(input: &Tensor, pad: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "unpad_nchw requires an NCHW tensor");
    if pad == 0 {
        return input.clone();
    }
    let (n, c, ph, pw) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert!(ph > 2 * pad && pw > 2 * pad, "padding larger than tensor");
    let (h, w) = (ph - 2 * pad, pw - 2 * pad);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for img in 0..n {
        for ch in 0..c {
            for y in 0..h {
                let src_base = ((img * c + ch) * ph + y + pad) * pw + pad;
                let dst_base = ((img * c + ch) * h + y) * w;
                dst[dst_base..dst_base + w].copy_from_slice(&src[src_base..src_base + w]);
            }
        }
    }
    out
}

/// Output spatial size of a convolution with the given geometry.
pub fn conv_out_size(in_size: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    (in_size + 2 * pad).saturating_sub(kernel) / stride + 1
}

/// Lowers an NCHW tensor into the im2col matrix for a `kernel x kernel`
/// convolution with the given stride and padding.
///
/// The result has shape `[C * kernel * kernel, N * out_h * out_w]`: one column
/// per output pixel, one row per (input-channel, kernel-offset) pair, so a
/// convolution becomes `weights_matrix (Cout x C*K*K) * im2col`.
pub fn im2col(input: &Tensor, kernel: usize, stride: usize, pad: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "im2col requires an NCHW tensor");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let out_h = conv_out_size(h, kernel, stride, pad);
    let out_w = conv_out_size(w, kernel, stride, pad);
    let rows = c * kernel * kernel;
    let cols = n * out_h * out_w;
    let mut out = Tensor::zeros(&[rows, cols]);
    let src = input.as_slice();

    // Each row of the output is written by exactly one worker chunk.
    let out_slice = out.as_mut_slice();
    par::parallel_for_each_chunk_mut(out_slice, cols.max(1), |row, row_data| {
        if cols == 0 {
            return;
        }
        let ch = row / (kernel * kernel);
        let rem = row % (kernel * kernel);
        let ky = rem / kernel;
        let kx = rem % kernel;
        for img in 0..n {
            for oy in 0..out_h {
                // y/x are signed while padding is applied.
                let iy = (oy * stride + ky) as isize - pad as isize;
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let col = (img * out_h + oy) * out_w + ox;
                    row_data[col] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        src[((img * c + ch) * h + iy as usize) * w + ix as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
    });
    out
}

/// Scatters an im2col-shaped gradient matrix back onto an NCHW gradient
/// tensor (the adjoint of [`im2col`]); overlapping patches accumulate.
pub fn col2im(
    cols_mat: &Tensor,
    input_shape: &[usize],
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(input_shape.len(), 4, "col2im requires an NCHW target shape");
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let out_h = conv_out_size(h, kernel, stride, pad);
    let out_w = conv_out_size(w, kernel, stride, pad);
    assert_eq!(
        cols_mat.shape(),
        &[c * kernel * kernel, n * out_h * out_w],
        "col2im input matrix has unexpected shape"
    );
    let mut out = Tensor::zeros(input_shape);
    let dst = out.as_mut_slice();
    let src = cols_mat.as_slice();
    let cols = n * out_h * out_w;
    for row in 0..c * kernel * kernel {
        let ch = row / (kernel * kernel);
        let rem = row % (kernel * kernel);
        let ky = rem / kernel;
        let kx = rem % kernel;
        for img in 0..n {
            for oy in 0..out_h {
                let iy = (oy * stride + ky) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for ox in 0..out_w {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let col = (img * out_h + oy) * out_w + ox;
                    dst[((img * c + ch) * h + iy as usize) * w + ix as usize] +=
                        src[row * cols + col];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_out_size_matches_standard_formula() {
        assert_eq!(conv_out_size(32, 3, 1, 1), 32);
        assert_eq!(conv_out_size(32, 3, 2, 1), 16);
        assert_eq!(conv_out_size(7, 7, 1, 0), 1);
        assert_eq!(conv_out_size(224, 7, 2, 3), 112);
    }

    #[test]
    fn pad_then_unpad_is_identity() {
        let t = Tensor::randn(&[2, 3, 5, 4], 5);
        let padded = pad_nchw(&t, 2);
        assert_eq!(padded.shape(), &[2, 3, 9, 8]);
        let back = unpad_nchw(&padded, 2);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn pad_zero_is_copy() {
        let t = Tensor::randn(&[1, 1, 3, 3], 9);
        assert_eq!(pad_nchw(&t, 0).as_slice(), t.as_slice());
    }

    #[test]
    fn pad_border_is_zero() {
        let t = Tensor::ones(&[1, 1, 2, 2]);
        let p = pad_nchw(&t, 1);
        assert_eq!(p.at4(0, 0, 0, 0), 0.0);
        assert_eq!(p.at4(0, 0, 1, 1), 1.0);
        assert_eq!(p.at4(0, 0, 3, 3), 0.0);
    }

    #[test]
    fn im2col_1x1_is_channel_by_pixel_matrix() {
        let t = Tensor::arange(&[1, 2, 2, 2]);
        let m = im2col(&t, 1, 1, 0);
        assert_eq!(m.shape(), &[2, 4]);
        assert_eq!(m.as_slice(), t.as_slice());
    }

    #[test]
    fn im2col_3x3_single_output_collects_whole_patch() {
        let t = Tensor::arange(&[1, 1, 3, 3]);
        let m = im2col(&t, 3, 1, 0);
        assert_eq!(m.shape(), &[9, 1]);
        assert_eq!(m.as_slice(), t.as_slice());
    }

    #[test]
    fn im2col_padding_introduces_zero_rows() {
        let t = Tensor::ones(&[1, 1, 2, 2]);
        let m = im2col(&t, 3, 1, 1);
        // 4 output pixels; the centre tap (ky=1,kx=1) is always inside.
        assert_eq!(m.shape(), &[9, 4]);
        let centre_row = &m.as_slice()[4 * 4..5 * 4];
        assert!(centre_row.iter().all(|&v| v == 1.0));
        // The top-left tap of the top-left output pixel falls in the padding.
        assert_eq!(m.as_slice()[0], 0.0);
    }

    #[test]
    fn conv_via_im2col_matches_direct_computation() {
        // 1 input channel, 1 output channel, 2x2 kernel of ones, stride 1:
        // each output pixel is the sum of a 2x2 patch.
        let input = Tensor::arange(&[1, 1, 3, 3]);
        let cols = im2col(&input, 2, 1, 0);
        let weight = Tensor::ones(&[1, 4]);
        let out = weight.matmul(&cols);
        assert_eq!(out.shape(), &[1, 4]);
        assert_eq!(out.as_slice(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_inner_product() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is what backprop relies on.
        let x = Tensor::randn(&[1, 2, 4, 4], 31);
        let cols = im2col(&x, 3, 1, 1);
        let y = Tensor::randn(cols.shape(), 32);
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, &[1, 2, 4, 4], 3, 1, 1);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn stride_two_halves_output_size() {
        let t = Tensor::randn(&[1, 1, 8, 8], 2);
        let m = im2col(&t, 3, 2, 1);
        assert_eq!(m.shape(), &[9, 16]);
    }
}
