//! Higher-level tensor operators shared by the NN layers: per-channel bias
//! and statistics for NCHW activations, row softmax for classifier heads, and
//! simple broadcast helpers.

use crate::tensor::Tensor;

impl Tensor {
    /// Adds a per-channel bias (`bias.len() == C`) to every pixel of an NCHW
    /// tensor, in place.
    pub fn add_bias_nchw(&mut self, bias: &Tensor) {
        assert_eq!(self.rank(), 4, "add_bias_nchw requires an NCHW tensor");
        assert_eq!(bias.rank(), 1, "bias must be rank-1");
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        assert_eq!(bias.dim(0), c, "bias length must equal channel count");
        let plane = h * w;
        let data = self.as_mut_slice();
        let b = bias.as_slice();
        for img in 0..n {
            for (ch, &bv) in b.iter().enumerate() {
                let base = (img * c + ch) * plane;
                for v in &mut data[base..base + plane] {
                    *v += bv;
                }
            }
        }
    }

    /// Adds a bias vector (`bias.len() == cols`) to every row of a rank-2
    /// tensor, in place.
    pub fn add_bias_rows(&mut self, bias: &Tensor) {
        assert_eq!(self.rank(), 2, "add_bias_rows requires a rank-2 tensor");
        assert_eq!(bias.rank(), 1, "bias must be rank-1");
        let (rows, cols) = (self.dim(0), self.dim(1));
        assert_eq!(bias.dim(0), cols, "bias length must equal column count");
        let data = self.as_mut_slice();
        let b = bias.as_slice();
        for r in 0..rows {
            for (v, bv) in data[r * cols..(r + 1) * cols].iter_mut().zip(b.iter()) {
                *v += *bv;
            }
        }
    }

    /// Per-channel sum over batch and spatial dimensions of an NCHW tensor.
    /// Returns a rank-1 tensor of length `C`.
    pub fn sum_per_channel(&self) -> Tensor {
        assert_eq!(self.rank(), 4, "sum_per_channel requires an NCHW tensor");
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        let plane = h * w;
        let mut out = vec![0.0f32; c];
        let data = self.as_slice();
        for img in 0..n {
            for (ch, acc) in out.iter_mut().enumerate() {
                let base = (img * c + ch) * plane;
                *acc += data[base..base + plane].iter().sum::<f32>();
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Per-channel mean over batch and spatial dimensions.
    pub fn mean_per_channel(&self) -> Tensor {
        let (n, h, w) = (self.dim(0), self.dim(2), self.dim(3));
        let count = (n * h * w).max(1) as f32;
        let mut s = self.sum_per_channel();
        s.scale_in_place(1.0 / count);
        s
    }

    /// Per-channel (biased) variance over batch and spatial dimensions, given
    /// a precomputed per-channel mean.
    pub fn var_per_channel(&self, mean: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 4, "var_per_channel requires an NCHW tensor");
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        assert_eq!(mean.dim(0), c, "mean length must equal channel count");
        let plane = h * w;
        let count = (n * h * w).max(1) as f32;
        let mut out = vec![0.0f32; c];
        let data = self.as_slice();
        let m = mean.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let mu = m[ch];
                out[ch] += data[base..base + plane]
                    .iter()
                    .map(|&v| (v - mu) * (v - mu))
                    .sum::<f32>();
            }
        }
        for v in &mut out {
            *v /= count;
        }
        Tensor::from_vec(out, &[c])
    }

    /// Column-wise sum of a rank-2 tensor (used for bias gradients of linear
    /// layers). Returns a rank-1 tensor of length `cols`.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows requires a rank-2 tensor");
        let (rows, cols) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; cols];
        let data = self.as_slice();
        for r in 0..rows {
            for (o, v) in out.iter_mut().zip(&data[r * cols..(r + 1) * cols]) {
                *o += *v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Numerically stable row-wise softmax of a rank-2 tensor.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.dim(0), self.dim(1));
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for r in 0..rows {
            let row = &mut data[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }

    /// Numerically stable row-wise log-softmax of a rank-2 tensor.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "log_softmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.dim(0), self.dim(1));
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for r in 0..rows {
            let row = &mut data[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= log_sum;
            }
        }
        out
    }

    /// Rectified linear unit, returning a new tensor.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Elementwise mask of the positive entries (1.0 where `self > 0`, else
    /// 0.0) — the ReLU derivative.
    pub fn relu_mask(&self) -> Tensor {
        self.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
    }

    /// Clips every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp requires lo <= hi");
        self.map(|v| v.min(hi).max(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allclose;

    #[test]
    fn add_bias_nchw_broadcasts_per_channel() {
        let mut t = Tensor::zeros(&[2, 3, 2, 2]);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        t.add_bias_nchw(&bias);
        assert_eq!(t.at4(0, 0, 0, 0), 1.0);
        assert_eq!(t.at4(1, 1, 1, 1), 2.0);
        assert_eq!(t.at4(0, 2, 1, 0), 3.0);
    }

    #[test]
    fn add_bias_rows_broadcasts_per_column() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.add_bias_rows(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn per_channel_statistics_are_correct() {
        let mut t = Tensor::zeros(&[1, 2, 1, 2]);
        // channel 0: [1, 3], channel 1: [2, 2]
        *t.at4_mut(0, 0, 0, 0) = 1.0;
        *t.at4_mut(0, 0, 0, 1) = 3.0;
        *t.at4_mut(0, 1, 0, 0) = 2.0;
        *t.at4_mut(0, 1, 0, 1) = 2.0;
        let sums = t.sum_per_channel();
        assert_eq!(sums.as_slice(), &[4.0, 4.0]);
        let means = t.mean_per_channel();
        assert_eq!(means.as_slice(), &[2.0, 2.0]);
        let vars = t.var_per_channel(&means);
        assert_eq!(vars.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn sum_rows_collapses_batch() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum_rows().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_is_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let row = &s.as_slice()[r * 3..(r + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row[2] > row[1] && row[1] > row[0]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = t.softmax_rows();
        assert!(s.find_non_finite().is_none());
        assert!((s.as_slice()[0] + s.as_slice()[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::randn(&[3, 5], 77);
        let a = t.log_softmax_rows();
        let b = t.softmax_rows().map(|v| v.ln());
        assert!(allclose(&a, &b, 1e-4));
    }

    #[test]
    fn relu_and_mask_agree() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(t.relu().as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(t.relu_mask().as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-5.0, 0.5, 5.0], &[3]);
        assert_eq!(t.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }
}
