//! Persistent work-stealing worker pool behind the [`crate::par`] runtime.
//!
//! The original runtime spawned fresh `crossbeam::scope` threads on every
//! `parallel_for` call, so each hot kernel launch re-paid OS thread startup
//! — the overhead class that dominates CPU convolution primitives at small
//! plane sizes. This module replaces that with a process-wide pool of
//! long-lived workers:
//!
//! * **Lazy start** — no thread is spawned until the first multi-threaded
//!   [`run`] call; single-threaded configurations (`num_threads() == 1`,
//!   the deterministic test default) never touch the pool at all.
//! * **Parked workers** — idle workers block on a `Condvar`, consuming no
//!   CPU between launches; a launch is a queue push + wakeup, not a
//!   `clone(2)`.
//! * **Work stealing** — each job splits its index range into one
//!   contiguous span per participant (the submitting thread plus every
//!   worker). A participant pops grain-sized chunks from the *front* of its
//!   own span; when it runs dry it steals the *back half* of another
//!   participant's remaining span, so imbalanced bodies rebalance without
//!   a central queue bottleneck.
//! * **Caller participation** — the submitting thread executes chunks too,
//!   then sleeps on the job's completion latch only while other workers
//!   finish their in-flight chunks. Nested `run` calls from inside a body
//!   are safe: the nested caller can always drain its own job even when
//!   every worker is busy.
//! * **Graceful teardown** — [`shutdown`] (used by
//!   [`crate::par::set_num_threads`] to drain-and-rebuild) joins every
//!   worker; parked workers also never keep a finished process alive
//!   doing work, so tests and binaries exit clean.
//!
//! Panics inside a body are caught on the worker, the job still runs to
//! completion (remaining chunks execute), and the first payload is re-raised
//! on the submitting thread once the job's latch closes.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, TryLockError};
use std::thread;

/// Locks a mutex, transparently recovering from poisoning (a panicked body
/// is already reported through the job's panic slot; the pool's own state
/// stays consistent because guards only protect plain data).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Like [`lock`], but counts the acquisition as contended when another
/// participant holds the lock (the `pool.claim_contention` metric — a
/// cheap proxy for how often claims collide on the span deques).
fn lock_claim<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(TryLockError::WouldBlock) => {
            counters().claim_contention.inc();
            lock(mutex)
        }
    }
}

/// The pool's process-global observability counters (registered in the
/// `dsx_obs` metrics registry, surfaced by [`stats`] and the DSXN stats
/// frame). Handles are resolved once and cached: the hot path pays one
/// relaxed increment, never a registry lookup.
struct PoolCounters {
    /// Jobs dispatched to the pool (inline runs are not counted).
    jobs: &'static dsx_obs::Counter,
    /// Successful steals of another participant's span (back half or tail).
    steals: &'static dsx_obs::Counter,
    /// Times a worker parked on the condvar waiting for work.
    parks: &'static dsx_obs::Counter,
    /// Times a parked worker woke up (with or without work to do).
    wakeups: &'static dsx_obs::Counter,
    /// Claim-lock acquisitions that found the lock held.
    claim_contention: &'static dsx_obs::Counter,
    /// Wakeups that found the queue still empty and parked again.
    idle_epochs: &'static dsx_obs::Counter,
}

fn counters() -> &'static PoolCounters {
    static COUNTERS: OnceLock<PoolCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PoolCounters {
        jobs: dsx_obs::counter("pool.jobs"),
        steals: dsx_obs::counter("pool.steals"),
        parks: dsx_obs::counter("pool.parks"),
        wakeups: dsx_obs::counter("pool.wakeups"),
        claim_contention: dsx_obs::counter("pool.claim_contention"),
        idle_epochs: dsx_obs::counter("pool.idle_epochs"),
    })
}

/// A point-in-time view of the pool's scheduling counters (process-global,
/// monotone since startup) plus the live worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs dispatched to the pool (inline single-threaded runs excluded).
    pub jobs: u64,
    /// Successful work steals between participants.
    pub steals: u64,
    /// Times a worker parked waiting for work.
    pub parks: u64,
    /// Times a parked worker woke up.
    pub wakeups: u64,
    /// Span-deque lock acquisitions that found the lock held.
    pub claim_contention: u64,
    /// Wakeups that found no work and parked again.
    pub idle_epochs: u64,
    /// Live pool worker threads (the submitter participates on top).
    pub workers: usize,
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jobs {}, steals {}, parks {}, wakeups {}, idle epochs {}, \
             contended claims {}, workers {}",
            self.jobs,
            self.steals,
            self.parks,
            self.wakeups,
            self.idle_epochs,
            self.claim_contention,
            self.workers
        )
    }
}

/// Reads the pool's scheduling counters. Cheap (six relaxed loads plus the
/// pool-slot lock for the worker count); safe to call from anywhere,
/// including while jobs are in flight.
pub fn stats() -> PoolStats {
    let c = counters();
    PoolStats {
        jobs: c.jobs.get(),
        steals: c.steals.get(),
        parks: c.parks.get(),
        wakeups: c.wakeups.get(),
        claim_contention: c.claim_contention.get(),
        idle_epochs: c.idle_epochs.get(),
        workers: worker_count(),
    }
}

/// A contiguous range of not-yet-claimed iterations owned by one
/// participant's deque.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    end: usize,
}

/// Type-erased pointer to the job body: a thin data pointer plus a
/// monomorphised call shim. A raw pointer (not a reference) so that a
/// completed job lingering in the queue until the next worker wakeup never
/// holds a dangling *reference*; the pointer is only dereferenced for a
/// claimed chunk, and chunks can only be claimed while the submitting
/// thread is still blocked inside [`run`] keeping the closure alive.
struct BodyPtr {
    data: *const (),
    // SAFETY: an `unsafe fn` pointer on purpose — every caller must argue
    // `data` still points to a live closure, which the claim protocol above
    // provides (chunks are only claimed while the submitter blocks in
    // `run`).
    call: unsafe fn(*const (), usize, usize),
}

impl BodyPtr {
    fn new<F: Fn(usize, usize) + Sync>(body: &F) -> Self {
        /// # Safety
        ///
        /// `data` must point to a live `F` (guaranteed by the claim
        /// protocol: the submitting thread outlives every claimed chunk).
        unsafe fn call_shim<F: Fn(usize, usize) + Sync>(data: *const (), start: usize, end: usize) {
            // SAFETY: forwarding the shim's contract — `data` was produced
            // from `&F` in `BodyPtr::new` and is live for the duration of
            // every claimed chunk.
            let body = unsafe { &*(data as *const F) };
            body(start, end);
        }
        BodyPtr {
            data: body as *const F as *const (),
            call: call_shim::<F>,
        }
    }
}

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine) and
// the pointer itself is only dereferenced under the claim protocol above.
unsafe impl Send for BodyPtr {}
// SAFETY: same argument as `Send` — `&BodyPtr` exposes only the `Sync`
// closure behind the pointer, so concurrent shared access is sound.
unsafe impl Sync for BodyPtr {}

/// One submitted parallel region: per-participant spans plus the completion
/// machinery. Shared as `Arc<Job>` between the queue, the workers and the
/// submitting thread.
struct Job {
    /// Per-participant deques (index 0 = the submitting thread).
    spans: Vec<Mutex<Span>>,
    /// Minimum iterations handed out per claim.
    grain: usize,
    /// Iterations claimed but whose execution has not finished, plus all
    /// unclaimed ones; the completion latch closes when this hits zero.
    remaining: AtomicUsize,
    body: BodyPtr,
    /// First panic payload raised by any participant.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion latch: set to `true` by whichever participant finishes
    /// the last chunk.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// True once every span has been fully claimed; the job can never hand
    /// out more work (it may still have chunks *executing*).
    fn exhausted(&self) -> bool {
        self.spans.iter().all(|span| {
            let span = lock(span);
            span.start >= span.end
        })
    }

    /// Claims the next chunk for participant `me`: the front of its own
    /// span, or — when that is empty — the back half of a victim's span
    /// (installed as the new own span, with the first grain returned).
    fn claim(&self, me: usize) -> Option<(usize, usize)> {
        let k = self.spans.len();
        let me = me % k;
        {
            let mut own = lock_claim(&self.spans[me]);
            if own.start < own.end {
                let take = self.grain.min(own.end - own.start);
                let start = own.start;
                own.start += take;
                return Some((start, start + take));
            }
        }
        for step in 1..k {
            let victim = (me + step) % k;
            let (start, end) = {
                let mut span = lock_claim(&self.spans[victim]);
                let len = span.end - span.start;
                if len == 0 {
                    continue;
                }
                if len <= self.grain {
                    let whole = (span.start, span.end);
                    span.start = span.end;
                    whole
                } else {
                    let steal = len / 2;
                    let start = span.end - steal;
                    let stolen = (start, span.end);
                    span.end = start;
                    stolen
                }
            };
            counters().steals.inc();
            dsx_obs::instant("pool", "pool.steal");
            let take = self.grain.min(end - start);
            if start + take < end {
                let mut own = lock_claim(&self.spans[me]);
                if own.start >= own.end {
                    own.start = start + take;
                    own.end = end;
                    return Some((start, start + take));
                }
                // Defensive: the own deque refilled while we stole (only
                // possible if two participants ever shared an index); run
                // the whole stolen span rather than lose any iteration.
            }
            return Some((start, end));
        }
        None
    }

    /// Claims and executes chunks until none are left anywhere in the job.
    fn participate(&self, me: usize) {
        while let Some((start, end)) = self.claim(me) {
            // SAFETY: this chunk was claimed while `remaining > 0`, so the
            // submitting thread is still inside `run`, keeping the closure
            // behind `body` alive until we decrement below.
            let call = || unsafe { (self.body.call)(self.body.data, start, end) };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(call)) {
                lock(&self.panic).get_or_insert(payload);
            }
            // ORDER: AcqRel makes every participant's writes (through the
            // body) happen-before whoever observes the counter hit zero:
            // the Release half publishes this chunk's effects, the Acquire
            // half lets the finisher see all prior chunks' effects before
            // it flips `done` and the submitter returns.
            if self.remaining.fetch_sub(end - start, Ordering::AcqRel) == end - start {
                *lock(&self.done) = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// Queue + parking shared between the workers and submitters.
struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

struct PoolState {
    /// Active jobs; a job leaves the queue once exhausted (workers prune on
    /// wakeup, submitters prune their own job on completion).
    queue: Vec<Arc<Job>>,
    shutdown: bool,
}

struct Pool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

/// The process-wide pool. `None` until the first multi-threaded [`run`]
/// (or after [`shutdown`]); rebuilt lazily with the then-current
/// [`crate::par::num_threads`].
static POOL: Mutex<Option<Pool>> = Mutex::new(None);

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            let mut waited = false;
            loop {
                if state.shutdown {
                    return;
                }
                state.queue.retain(|job| !job.exhausted());
                if let Some(job) = state.queue.first() {
                    break Arc::clone(job);
                }
                if waited {
                    // Woke up to an empty queue (a sibling drained it, or
                    // the wakeup was spurious) — one idle epoch.
                    counters().idle_epochs.inc();
                }
                counters().parks.inc();
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                waited = true;
                counters().wakeups.inc();
            }
        };
        let _span = dsx_obs::span("pool", "pool.participate");
        job.participate(me);
    }
}

fn spawn_pool(target: usize) -> Pool {
    let shared = Arc::new(Shared {
        state: Mutex::new(PoolState {
            queue: Vec::new(),
            shutdown: false,
        }),
        work_cv: Condvar::new(),
    });
    let mut handles = Vec::with_capacity(target);
    for i in 0..target {
        let worker_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name(format!("dsx-pool-{i}"))
            .spawn(move || worker_loop(worker_shared, i + 1));
        match spawned {
            Ok(handle) => handles.push(handle),
            // Resource exhaustion: run with however many workers exist.
            Err(_) => break,
        }
    }
    Pool {
        shared,
        workers: handles.len(),
        handles,
    }
}

/// Returns the live pool (spawning `target` workers if none exists), or
/// `None` when no workers are available and the caller should run inline.
///
/// A pool whose worker count no longer matches `target` (a
/// [`crate::par::set_num_threads`] call raced an in-flight `run`, so the
/// rebuilt pool was sized from the old count) is drained and respawned
/// here — except when the caller *is* a pool worker (a nested `run` from
/// inside a body), which must never join the pool it runs on and therefore
/// reuses whatever exists. One benign leftover remains: if the thread
/// count drops to 1 in such a race, the stale pool just stays parked until
/// the next `set_num_threads` (multi-threaded `run`s stop before reaching
/// this function), costing idle threads but never correctness.
fn ensure_pool(target: usize) -> Option<(usize, Arc<Shared>)> {
    if target == 0 {
        return None;
    }
    let on_pool_worker = thread::current()
        .name()
        .is_some_and(|name| name.starts_with("dsx-pool-"));
    loop {
        let stale = {
            let mut slot = lock(&POOL);
            match slot.as_ref() {
                Some(pool) if pool.workers == target || on_pool_worker => {
                    if pool.workers == 0 {
                        return None;
                    }
                    return Some((pool.workers, Arc::clone(&pool.shared)));
                }
                Some(_) => slot.take(),
                None => {
                    let pool = spawn_pool(target);
                    if pool.workers == 0 {
                        // Spawn failure: run inline now, retry next call.
                        return None;
                    }
                    let ready = (pool.workers, Arc::clone(&pool.shared));
                    *slot = Some(pool);
                    return Some(ready);
                }
            }
        };
        // Drain the stale-sized pool outside the POOL lock: joining while
        // holding it could deadlock against a worker's nested ensure_pool.
        if let Some(pool) = stale {
            drain(pool);
        }
    }
}

/// Signals every worker of `pool` to exit after its current job
/// participation and joins them.
fn drain(pool: Pool) {
    {
        let mut state = lock(&pool.shared.state);
        state.shutdown = true;
    }
    pool.shared.work_cv.notify_all();
    for handle in pool.handles {
        let _ = handle.join();
    }
}

/// Number of live pool worker threads (0 when the pool is drained or was
/// never started). The submitting thread always participates on top of
/// this, so the effective parallelism of a launch is `worker_count() + 1`.
pub fn worker_count() -> usize {
    lock(&POOL).as_ref().map_or(0, |pool| pool.workers)
}

/// Drains the pool: signals every worker to exit after its current job
/// participation and joins them. The next multi-threaded [`run`] lazily
/// respawns workers sized to the then-current [`crate::par::num_threads`].
///
/// Blocks until in-flight work finishes; must not be called from inside a
/// parallel body (a worker cannot join itself).
pub fn shutdown() {
    let pool = lock(&POOL).take();
    if let Some(pool) = pool {
        drain(pool);
    }
}

/// Upper bound on claims per participant when scaling the grain: enough
/// pieces for stealing to balance, few enough that claim-lock traffic stays
/// negligible next to the body work.
const CLAIMS_PER_PARTICIPANT: usize = 8;

/// Runs `body(start, end)` over disjoint sub-ranges covering `0..n` on the
/// persistent pool. `grain` is the smallest sub-range the scheduler hands
/// out (scaled up for large `n` so a job splits into a small constant
/// number of claims per participant).
///
/// Runs inline (one `body(0, n)` call, zero pool interaction) when
/// [`crate::par::num_threads`] is 1 or `n <= grain`. The submitting thread
/// participates in the job, so nested `run` calls from inside a body always
/// make progress even when every worker is busy.
///
/// A panic inside `body` is re-raised on the submitting thread after the
/// whole job completes; the pool itself survives and serves later calls.
pub fn run<F>(n: usize, grain: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let threads = crate::par::num_threads();
    if threads <= 1 || n <= grain {
        body(0, n);
        return;
    }
    let Some((workers, shared)) = ensure_pool(threads - 1) else {
        body(0, n);
        return;
    };
    counters().jobs.inc();
    let _span = dsx_obs::span_arg("pool", "pool.run", "n", n as u64);
    let participants = workers + 1;
    let grain = grain
        .max(n / (participants * CLAIMS_PER_PARTICIPANT).max(1))
        .min(n);
    let per_span = n.div_ceil(participants);
    let spans: Vec<Mutex<Span>> = (0..participants)
        .map(|i| {
            Mutex::new(Span {
                start: (i * per_span).min(n),
                end: ((i + 1) * per_span).min(n),
            })
        })
        .collect();
    let job = Arc::new(Job {
        spans,
        grain,
        remaining: AtomicUsize::new(n),
        body: BodyPtr::new(&body),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut state = lock(&shared.state);
        state.queue.push(Arc::clone(&job));
    }
    shared.work_cv.notify_all();

    job.participate(0);

    let mut done = lock(&job.done);
    while !*done {
        done = job
            .done_cv
            .wait(done)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    drop(done);
    {
        // Prune eagerly so the queue never accumulates finished jobs while
        // every worker stays parked.
        let mut state = lock(&shared.state);
        state.queue.retain(|queued| !Arc::ptr_eq(queued, &job));
    }
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{parallel_for, set_num_threads, test_scale, test_thread_guard};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_touches_every_index_once_on_the_pool() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let n = test_scale(50_000, 512);
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run(n, 64, |start, end| {
            for counter in &counters[start..end] {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(worker_count(), 3);
        set_num_threads(0);
    }

    #[test]
    fn panics_propagate_to_the_caller_and_the_pool_survives() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let n = test_scale(10_000, 256);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(n, 16, |start, end| {
                if (start..end).contains(&(n / 2)) {
                    panic!("boom at the midpoint");
                }
            });
        }));
        let payload = result.expect_err("the body panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("boom at the midpoint"), "{message}");
        // The pool still works after a body panicked.
        let sum = AtomicU64::new(0);
        run(n, 16, |start, end| {
            let local: u64 = (start..end).map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..n as u64).sum());
        set_num_threads(0);
    }

    #[test]
    fn concurrent_jobs_from_many_threads_all_complete() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let totals: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let base = test_scale(20_000, 512);
        let step = test_scale(1_000, 64);
        thread::scope(|scope| {
            for (t, total) in totals.iter().enumerate() {
                scope.spawn(move || {
                    let n = base + t * step;
                    run(n, 128, |start, end| {
                        let local: u64 = (start..end).map(|i| i as u64).sum();
                        total.fetch_add(local, Ordering::Relaxed);
                    });
                });
            }
        });
        for (t, total) in totals.iter().enumerate() {
            let n = (base + t * step) as u64;
            assert_eq!(
                total.load(Ordering::Relaxed),
                (0..n).sum::<u64>(),
                "job {t}"
            );
        }
        set_num_threads(0);
    }

    #[test]
    fn nested_runs_from_worker_bodies_complete() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let count = AtomicUsize::new(0);
        let n = test_scale(4_096, 256);
        run(n, n / 4, |outer_start, outer_end| {
            // Each outer chunk launches its own inner parallel region.
            run(outer_end - outer_start, 64, |start, end| {
                count.fetch_add(end - start, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), n);
        set_num_threads(0);
    }

    #[test]
    fn stats_count_jobs_and_expose_worker_count() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let before = stats();
        let n = test_scale(20_000, 512);
        run(n, 64, |_, _| {});
        let after = stats();
        assert!(after.jobs > before.jobs, "{after:?} vs {before:?}");
        assert_eq!(after.workers, 3);
        let line = format!("{after}");
        assert!(
            line.contains("jobs") && line.contains("workers 3"),
            "{line}"
        );
        set_num_threads(0);
    }

    #[test]
    fn shutdown_drains_workers_and_the_pool_respawns_lazily() {
        let _guard = test_thread_guard();
        set_num_threads(4);
        let n = test_scale(10_000, 256);
        parallel_for(n, |_| {});
        assert_eq!(worker_count(), 3);
        set_num_threads(1);
        assert_eq!(worker_count(), 0, "set_num_threads(1) must drain the pool");
        // Inline path: no pool interaction at 1 thread.
        parallel_for(n, |_| {});
        assert_eq!(worker_count(), 0);
        set_num_threads(4);
        parallel_for(n, |_| {});
        assert_eq!(worker_count(), 3, "pool respawns at the new size");
        set_num_threads(0);
        shutdown();
        assert_eq!(worker_count(), 0);
    }
}
