//! General matrix-matrix multiplication (GEMM).
//!
//! The paper's baselines (standard, grouped and pointwise convolutions in
//! cuDNN/cuBLAS) are GEMM-backed; our CPU reproduction lowers those same
//! operators through [`crate::conv::im2col`] + this GEMM. Three variants are
//! provided:
//!
//! * [`matmul_naive`] — the textbook triple loop, used as the correctness
//!   reference in tests and property tests;
//! * [`matmul_blocked`] — cache-blocked ikj ordering, the default sequential
//!   kernel;
//! * [`matmul_parallel`] — rows of the output split across the worker pool.
//!
//! `Tensor::matmul` picks between the blocked and parallel variant based on
//! problem size.

use crate::par;
use crate::tensor::Tensor;

/// Cache block edge (elements) for the blocked kernel. 64 × 64 f32 blocks of
/// A, B and C fit comfortably in a typical 32 KiB L1 cache.
const BLOCK: usize = 64;

/// Problem size (in multiply-accumulates) above which `Tensor::matmul`
/// switches to the parallel kernel.
const PARALLEL_THRESHOLD: usize = 1 << 20;

/// Naive reference GEMM: `C[m,n] = sum_k A[m,k] * B[k,n]`.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Cache-blocked GEMM with ikj inner ordering (unit-stride access to B and C).
pub fn matmul_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    matmul_blocked_into(a, b, &mut c, m, k, n);
    c
}

/// Blocked GEMM writing into a caller-provided buffer (must be zeroed or hold
/// a partial sum to accumulate onto).
pub fn matmul_blocked_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C has wrong length");
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let k_end = (kb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let j_end = (jb + BLOCK).min(n);
                for i in ib..i_end {
                    for p in kb..k_end {
                        let a_ip = a[i * k + p];
                        if a_ip == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n + jb..p * n + j_end];
                        let c_row = &mut c[i * n + jb..i * n + j_end];
                        for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += a_ip * *bv;
                        }
                    }
                }
            }
        }
    }
}

/// Parallel GEMM: output rows are distributed over the worker pool; each row
/// is produced by exactly one worker so no synchronisation is required.
pub fn matmul_parallel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    par::parallel_for_each_chunk_mut(&mut c, n.max(1), |i, row| {
        if n == 0 {
            return;
        }
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, bv) in row.iter_mut().zip(b_row.iter()) {
                *cv += a_ip * *bv;
            }
        }
    });
    c
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// Chooses the blocked sequential kernel for small problems and the
    /// row-parallel kernel once the work exceeds ~1 M multiply-accumulates.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(
            k,
            k2,
            "matmul inner dimensions do not agree: {k} vs {k2} (shapes {:?} x {:?})",
            self.shape(),
            other.shape()
        );
        let work = m * k * n;
        let data = if work >= PARALLEL_THRESHOLD && par::num_threads() > 1 {
            matmul_parallel(self.as_slice(), other.as_slice(), m, k, n)
        } else {
            matmul_blocked(self.as_slice(), other.as_slice(), m, k, n)
        };
        Tensor::from_vec(data, &[m, n])
    }

    /// Matrix-vector product of a rank-2 tensor with a rank-1 tensor.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.dim(0), "matvec inner dimensions do not agree");
        let out: Vec<f32> = self
            .as_slice()
            .chunks_exact(k)
            .map(|row| row.iter().zip(v.as_slice()).map(|(a, b)| a * b).sum())
            .collect();
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allclose;
    use proptest::prelude::*;

    fn dense(m: usize, k: usize, seed: u64) -> Vec<f32> {
        crate::init::uniform_vec(m * k, -1.0, 1.0, seed)
    }

    #[test]
    fn naive_matches_hand_computed_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul_naive(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matches_naive_on_non_multiple_sizes() {
        let (m, k, n) = (37, 53, 29);
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        let naive = matmul_naive(&a, &b, m, k, n);
        let blocked = matmul_blocked(&a, &b, m, k, n);
        for (x, y) in naive.iter().zip(blocked.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let (m, k, n) = (65, 40, 33);
        let a = dense(m, k, 3);
        let b = dense(k, n, 4);
        let naive = matmul_naive(&a, &b, m, k, n);
        let parallel = matmul_parallel(&a, &b, m, k, n);
        for (x, y) in naive.iter().zip(parallel.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn tensor_matmul_identity_is_noop() {
        let a = Tensor::randn(&[5, 5], 10);
        let i = Tensor::eye(5);
        assert!(allclose(&a.matmul(&i), &a, 1e-6));
        assert!(allclose(&i.matmul(&a), &a, 1e-6));
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Tensor::randn(&[6, 4], 20);
        let v = Tensor::randn(&[4], 21);
        let mv = a.matvec(&v);
        let col = v.reshape(&[4, 1]);
        let mm = a.matmul(&col).reshape(&[6]);
        assert!(allclose(&mv, &mm, 1e-5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_blocked_equals_naive(
            m in 1usize..24,
            k in 1usize..24,
            n in 1usize..24,
            seed in 0u64..1000,
        ) {
            let a = dense(m, k, seed);
            let b = dense(k, n, seed.wrapping_add(1));
            let naive = matmul_naive(&a, &b, m, k, n);
            let blocked = matmul_blocked(&a, &b, m, k, n);
            for (x, y) in naive.iter().zip(blocked.iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_matmul_is_linear_in_first_argument(
            m in 1usize..8,
            k in 1usize..8,
            n in 1usize..8,
            alpha in -2.0f32..2.0,
            seed in 0u64..1000,
        ) {
            let a = Tensor::from_vec(dense(m, k, seed), &[m, k]);
            let b = Tensor::from_vec(dense(k, n, seed + 1), &[k, n]);
            // (alpha * A) B == alpha * (A B)
            let lhs = a.scale(alpha).matmul(&b);
            let rhs = a.matmul(&b).scale(alpha);
            prop_assert!(allclose(&lhs, &rhs, 1e-3));
        }
    }
}
