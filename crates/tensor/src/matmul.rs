//! General matrix-matrix multiplication (GEMM).
//!
//! The paper's baselines (standard, grouped and pointwise convolutions in
//! cuDNN/cuBLAS) are GEMM-backed; our CPU reproduction lowers those same
//! operators through [`crate::conv::im2col`] + this GEMM. The variants:
//!
//! * [`matmul_naive`] — the textbook triple loop, used as the correctness
//!   reference in tests and property tests;
//! * [`matmul_blocked`] — cache-blocked ikj ordering, the historical
//!   sequential kernel;
//! * [`matmul_parallel`] — one AXPY-accumulated output row per pool chunk,
//!   the historical parallel kernel;
//! * [`matmul_block_into`] — the register-tiled block kernel: computes an
//!   arbitrary row/column range of C with `GEMM_MR × GEMM_LANES` register
//!   accumulators, so every B strip loaded from memory feeds [`GEMM_MR`]
//!   output rows instead of one. [`matmul_regtiled`] runs it over the full
//!   range sequentially; [`matmul_pooled`] schedules `GEMM_MR`-aligned row
//!   strips of it across the persistent worker pool via the ragged-tile
//!   API ([`par::parallel_for_tile_groups_mut`]).
//!
//! The pooled kernel is **bit-deterministic at any thread count**: every
//! output element is written by exactly one strip, and its accumulation
//! order (`p` ascending over the shared dimension) is fixed by the kernel,
//! never by the strip decomposition or which worker claims a strip.
//!
//! `Tensor::matmul` keeps the historical size-based auto-pick
//! ([`GemmKernel::Auto`]); callers that route dense convolutions through an
//! explicit backend use [`Tensor::matmul_with`].

use crate::par;
use crate::tensor::Tensor;
use std::sync::OnceLock;

/// Cached handle for the `gemm.calls` metric so the per-matmul cost is one
/// relaxed increment, not a registry lookup.
fn gemm_calls() -> &'static dsx_obs::Counter {
    static HANDLE: OnceLock<&'static dsx_obs::Counter> = OnceLock::new();
    HANDLE.get_or_init(|| dsx_obs::counter("gemm.calls"))
}

/// Cache block edge (elements) for the blocked kernel. 64 × 64 f32 blocks of
/// A, B and C fit comfortably in a typical 32 KiB L1 cache.
const BLOCK: usize = 64;

/// Problem size (in multiply-accumulates) above which `Tensor::matmul`
/// switches to the parallel kernel.
const PARALLEL_THRESHOLD: usize = 1 << 20;

/// Column lanes per register tile of the register-tiled kernel: accumulators
/// are `[f32; GEMM_LANES]` arrays LLVM autovectorizes (no `unsafe`, no
/// intrinsics — the same strategy as the SCC blocked kernels in `dsx-core`).
pub const GEMM_LANES: usize = 8;

/// Output rows per register block: `GEMM_MR × GEMM_LANES` C values stay in
/// registers while a column strip of B is streamed, so each B load feeds
/// `GEMM_MR` accumulator rows instead of one (the reuse the row-per-chunk
/// AXPY kernel lacks).
pub const GEMM_MR: usize = 4;

/// Target multiply-accumulates per pooled row strip: strips are merged until
/// one strip amortises to at least this much work, so small GEMMs don't
/// dissolve into per-claim scheduling overhead.
const POOLED_STRIP_MACS: usize = 1 << 18;

/// Names the GEMM execution strategy a caller wants. The dense convolution
/// layers map their kernel backend onto one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GemmKernel {
    /// Historical size-based auto-pick: [`matmul_blocked`] for small
    /// problems, [`matmul_parallel`] above ~1 M multiply-accumulates.
    #[default]
    Auto,
    /// Cache-blocked sequential ikj kernel ([`matmul_blocked`]).
    Blocked,
    /// Register-tiled sequential kernel ([`matmul_regtiled`]).
    RegTiled,
    /// Register-tiled row strips scheduled across the persistent pool
    /// ([`matmul_pooled`]); bit-deterministic at any thread count.
    Pooled,
}

/// Naive reference GEMM: `C[m,n] = sum_k A[m,k] * B[k,n]`.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Cache-blocked GEMM with ikj inner ordering (unit-stride access to B and C).
pub fn matmul_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    matmul_blocked_into(a, b, &mut c, m, k, n);
    c
}

/// Blocked GEMM writing into a caller-provided buffer (must be zeroed or hold
/// a partial sum to accumulate onto).
pub fn matmul_blocked_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C has wrong length");
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let k_end = (kb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let j_end = (jb + BLOCK).min(n);
                for i in ib..i_end {
                    for p in kb..k_end {
                        let a_ip = a[i * k + p];
                        if a_ip == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n + jb..p * n + j_end];
                        let c_row = &mut c[i * n + jb..i * n + j_end];
                        for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += a_ip * *bv;
                        }
                    }
                }
            }
        }
    }
}

/// Parallel GEMM: output rows are distributed over the worker pool; each row
/// is produced by exactly one worker so no synchronisation is required.
pub fn matmul_parallel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    par::parallel_for_each_chunk_mut(&mut c, n.max(1), |i, row| {
        if n == 0 {
            return;
        }
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, bv) in row.iter_mut().zip(b_row.iter()) {
                *cv += a_ip * *bv;
            }
        }
    });
    c
}

/// Register-tiled GEMM block kernel: computes rows `[row0, row1)` and
/// columns `[col0, col1)` of `C = A × B`.
///
/// `c_rows` is the contiguous output slice covering exactly rows
/// `[row0, row1)` at full width `n` (length `(row1 - row0) * n`); only the
/// `[col0, col1)` column range of it is written. Rows are processed in
/// [`GEMM_MR`]-deep register blocks and columns in [`GEMM_LANES`]-wide
/// vector tiles with scalar tails, and every output element accumulates
/// over `p = 0..k` in ascending order regardless of how the caller carved
/// the ranges — which is what makes the pooled scheduling bit-deterministic.
#[allow(clippy::too_many_arguments)] // a GEMM block kernel is its argument list
pub fn matmul_block_into(
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    k: usize,
    n: usize,
    row0: usize,
    row1: usize,
    col0: usize,
    col1: usize,
) {
    assert!(row0 <= row1 && a.len() >= row1 * k, "A rows out of range");
    assert!(col0 <= col1 && col1 <= n, "column range out of bounds");
    assert_eq!(b.len(), k * n, "B has wrong length");
    assert_eq!(c_rows.len(), (row1 - row0) * n, "C strip has wrong length");
    let rows = row1 - row0;
    // Column tiles are the outer loop so each `k × GEMM_LANES` B panel is
    // touched once per row block while it is L1-hot, instead of streaming
    // the whole of B once per row block.
    let mut j = col0;
    while j + GEMM_LANES <= col1 {
        for ib in (0..rows).step_by(GEMM_MR) {
            let rb = GEMM_MR.min(rows - ib);
            let mut acc = [[0.0f32; GEMM_LANES]; GEMM_MR];
            for p in 0..k {
                let bv: &[f32; GEMM_LANES] = b[p * n + j..p * n + j + GEMM_LANES]
                    .try_into()
                    // lint: allow(panic) — the range is GEMM_LANES wide by
                    // construction; failure means the tiler is broken.
                    .expect("lane-sized strip");
                for (r, acc_row) in acc.iter_mut().enumerate().take(rb) {
                    let a_rp = a[(row0 + ib + r) * k + p];
                    for (av, bl) in acc_row.iter_mut().zip(bv.iter()) {
                        *av += a_rp * *bl;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate().take(rb) {
                c_rows[(ib + r) * n + j..(ib + r) * n + j + GEMM_LANES].copy_from_slice(acc_row);
            }
        }
        j += GEMM_LANES;
    }
    // Scalar column tail: same ascending-p accumulation order.
    for jj in j..col1 {
        for i in 0..rows {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let mut acc = 0.0f32;
            for (p, &a_rp) in a_row.iter().enumerate() {
                acc += a_rp * b[p * n + jj];
            }
            c_rows[i * n + jj] = acc;
        }
    }
}

/// Sequential register-tiled GEMM ([`matmul_block_into`] over the full
/// row/column range).
pub fn matmul_regtiled(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    matmul_block_into(a, b, &mut c, k, n, 0, m, 0, n);
    c
}

/// Pool-scheduled register-tiled GEMM: [`GEMM_MR`]-aligned row strips of
/// [`matmul_block_into`] are scheduled across the persistent worker pool via
/// the ragged-tile API. Results are bit-identical to [`matmul_regtiled`] at
/// any thread count (each strip owns its rows; accumulation order is fixed
/// by the block kernel).
pub fn matmul_pooled(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    matmul_pooled_into(a, b, &mut c, m, k, n);
    c
}

/// [`matmul_pooled`] writing into a caller-provided (zeroed) buffer.
pub fn matmul_pooled_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C has wrong length");
    if m == 0 || n == 0 {
        return;
    }
    let strip_rows = pooled_strip_rows(m, k, n);
    if par::num_threads() <= 1 || strip_rows >= m {
        matmul_block_into(a, b, c, k, n, 0, m, 0, n);
        return;
    }
    // One single-tile group per row strip; strips are GEMM_MR-aligned so
    // full register blocks never straddle a strip boundary.
    let groups: Vec<Vec<(usize, usize)>> = (0..m.div_ceil(strip_rows))
        .map(|s| {
            let r0 = s * strip_rows;
            let rows = strip_rows.min(m - r0);
            vec![(r0 * n, rows * n)]
        })
        .collect();
    par::parallel_for_tile_groups_mut(c, &groups, 1, |_group_idx, tiles| {
        let (offset, strip) = &mut tiles[0];
        let row0 = *offset / n;
        let rows = strip.len() / n;
        matmul_block_into(a, b, strip, k, n, row0, row0 + rows, 0, n);
    });
}

/// Rows per pooled strip: enough strips for the pool to balance
/// (~4 per worker) but each strip at least [`POOLED_STRIP_MACS`] of work and
/// [`GEMM_MR`]-aligned so register blocks stay whole.
fn pooled_strip_rows(m: usize, k: usize, n: usize) -> usize {
    let row_macs = (k * n).max(1);
    let min_rows_for_grain = POOLED_STRIP_MACS.div_ceil(row_macs);
    let balance_rows = m.div_ceil(par::num_threads().max(1) * 4);
    balance_rows
        .max(min_rows_for_grain)
        .div_ceil(GEMM_MR)
        .max(1)
        * GEMM_MR
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// Chooses the blocked sequential kernel for small problems and the
    /// row-parallel kernel once the work exceeds ~1 M multiply-accumulates.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with(other, GemmKernel::Auto)
    }

    /// Matrix product of two rank-2 tensors on an explicit GEMM kernel (the
    /// dense convolution layers map their `--backend` choice onto this).
    pub fn matmul_with(&self, other: &Tensor, kernel: GemmKernel) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(
            k,
            k2,
            "matmul inner dimensions do not agree: {k} vs {k2} (shapes {:?} x {:?})",
            self.shape(),
            other.shape()
        );
        let (a, b) = (self.as_slice(), other.as_slice());
        gemm_calls().inc();
        let _span = dsx_obs::span_arg(
            "gemm",
            match kernel {
                GemmKernel::Auto => "gemm.auto",
                GemmKernel::Blocked => "gemm.blocked",
                GemmKernel::RegTiled => "gemm.regtiled",
                GemmKernel::Pooled => "gemm.pooled",
            },
            "macs",
            (m * k * n) as u64,
        );
        let data = match kernel {
            GemmKernel::Auto => {
                let work = m * k * n;
                if work >= PARALLEL_THRESHOLD && par::num_threads() > 1 {
                    matmul_parallel(a, b, m, k, n)
                } else {
                    matmul_blocked(a, b, m, k, n)
                }
            }
            GemmKernel::Blocked => matmul_blocked(a, b, m, k, n),
            GemmKernel::RegTiled => matmul_regtiled(a, b, m, k, n),
            GemmKernel::Pooled => matmul_pooled(a, b, m, k, n),
        };
        Tensor::from_vec(data, &[m, n])
    }

    /// Matrix-vector product of a rank-2 tensor with a rank-1 tensor.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.dim(0), "matvec inner dimensions do not agree");
        let out: Vec<f32> = self
            .as_slice()
            .chunks_exact(k)
            .map(|row| row.iter().zip(v.as_slice()).map(|(a, b)| a * b).sum())
            .collect();
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allclose;
    use proptest::prelude::*;

    fn dense(m: usize, k: usize, seed: u64) -> Vec<f32> {
        crate::init::uniform_vec(m * k, -1.0, 1.0, seed)
    }

    #[test]
    fn naive_matches_hand_computed_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul_naive(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matches_naive_on_non_multiple_sizes() {
        let (m, k, n) = (37, 53, 29);
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        let naive = matmul_naive(&a, &b, m, k, n);
        let blocked = matmul_blocked(&a, &b, m, k, n);
        for (x, y) in naive.iter().zip(blocked.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let (m, k, n) = (65, 40, 33);
        let a = dense(m, k, 3);
        let b = dense(k, n, 4);
        let naive = matmul_naive(&a, &b, m, k, n);
        let parallel = matmul_parallel(&a, &b, m, k, n);
        for (x, y) in naive.iter().zip(parallel.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn regtiled_matches_naive_on_non_multiple_sizes() {
        // Sizes that leave partial GEMM_MR row blocks and scalar column
        // tails on both ends.
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (5, 3, 7),
            (37, 53, 29),
            (6, 17, 40),
        ] {
            let a = dense(m, k, 11);
            let b = dense(k, n, 12);
            let naive = matmul_naive(&a, &b, m, k, n);
            let tiled = matmul_regtiled(&a, &b, m, k, n);
            for (x, y) in naive.iter().zip(tiled.iter()) {
                assert!((x - y).abs() < 1e-4, "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn block_kernel_writes_only_the_requested_ranges() {
        let (m, k, n) = (9, 6, 11);
        let a = dense(m, k, 21);
        let b = dense(k, n, 22);
        let full = matmul_regtiled(&a, &b, m, k, n);
        // Rows [2, 7), columns [3, 10): everything else must stay zero.
        let mut strip = vec![0.0f32; 5 * n];
        matmul_block_into(&a, &b, &mut strip, k, n, 2, 7, 3, 10);
        for r in 0..5 {
            for j in 0..n {
                let got = strip[r * n + j];
                if (3..10).contains(&j) {
                    assert_eq!(got.to_bits(), full[(r + 2) * n + j].to_bits());
                } else {
                    assert_eq!(got, 0.0, "column {j} outside the range was written");
                }
            }
        }
    }

    #[test]
    fn pooled_matches_regtiled_bit_for_bit_across_thread_counts() {
        let _guard = crate::par::test_thread_guard();
        let (m, k, n) = (61, 33, 129);
        let a = dense(m, k, 31);
        let b = dense(k, n, 32);
        let sequential = matmul_regtiled(&a, &b, m, k, n);
        crate::par::set_num_threads(1);
        let single = matmul_pooled(&a, &b, m, k, n);
        crate::par::set_num_threads(4);
        let pooled = matmul_pooled(&a, &b, m, k, n);
        crate::par::set_num_threads(0);
        for ((s, one), many) in sequential.iter().zip(single.iter()).zip(pooled.iter()) {
            assert_eq!(s.to_bits(), one.to_bits());
            assert_eq!(s.to_bits(), many.to_bits());
        }
    }

    #[test]
    fn pooled_strip_rows_are_mr_aligned_and_positive() {
        for (m, k, n) in [(1usize, 1usize, 1usize), (64, 288, 16384), (128, 4, 4)] {
            let rows = pooled_strip_rows(m, k, n);
            assert!(rows >= 1);
            assert_eq!(rows % GEMM_MR, 0);
        }
    }

    #[test]
    fn matmul_with_agrees_across_kernels() {
        let a = Tensor::randn(&[13, 17], 41);
        let b = Tensor::randn(&[17, 19], 42);
        let reference = a.matmul_with(&b, GemmKernel::Auto);
        for kernel in [
            GemmKernel::Blocked,
            GemmKernel::RegTiled,
            GemmKernel::Pooled,
        ] {
            let got = a.matmul_with(&b, kernel);
            assert!(allclose(&got, &reference, 1e-4), "{kernel:?}");
        }
    }

    #[test]
    fn tensor_matmul_identity_is_noop() {
        let a = Tensor::randn(&[5, 5], 10);
        let i = Tensor::eye(5);
        assert!(allclose(&a.matmul(&i), &a, 1e-6));
        assert!(allclose(&i.matmul(&a), &a, 1e-6));
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Tensor::randn(&[6, 4], 20);
        let v = Tensor::randn(&[4], 21);
        let mv = a.matvec(&v);
        let col = v.reshape(&[4, 1]);
        let mm = a.matmul(&col).reshape(&[6]);
        assert!(allclose(&mv, &mm, 1e-5));
    }

    /// Property-test case count: full natively, minimal under Miri or
    /// `DSX_TEST_FAST` (each case is a whole GEMM; interpreted or
    /// sanitized runs only need the coverage, not the volume).
    fn prop_cases() -> u32 {
        if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
            2
        } else {
            16
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

        #[test]
        fn prop_blocked_equals_naive(
            m in 1usize..24,
            k in 1usize..24,
            n in 1usize..24,
            seed in 0u64..1000,
        ) {
            let a = dense(m, k, seed);
            let b = dense(k, n, seed.wrapping_add(1));
            let naive = matmul_naive(&a, &b, m, k, n);
            let blocked = matmul_blocked(&a, &b, m, k, n);
            for (x, y) in naive.iter().zip(blocked.iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_matmul_is_linear_in_first_argument(
            m in 1usize..8,
            k in 1usize..8,
            n in 1usize..8,
            alpha in -2.0f32..2.0,
            seed in 0u64..1000,
        ) {
            let a = Tensor::from_vec(dense(m, k, seed), &[m, k]);
            let b = Tensor::from_vec(dense(k, n, seed + 1), &[k, n]);
            // (alpha * A) B == alpha * (A B)
            let lhs = a.scale(alpha).matmul(&b);
            let rhs = a.matmul(&b).scale(alpha);
            prop_assert!(allclose(&lhs, &rhs, 1e-3));
        }
    }
}
