//! Shape and stride bookkeeping for dense row-major tensors.
//!
//! A [`Shape`] owns the dimension sizes of a tensor and provides the index
//! arithmetic (row-major strides, flat offsets, iteration counts) that the
//! kernel crates use when walking NCHW buffers by hand, exactly like the
//! CUDA kernels in the original DSXplore compute `blockIdx/threadIdx`-derived
//! offsets.

use std::fmt;

/// Dimension sizes of a dense, row-major tensor.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// Zero-sized dimensions are allowed (they describe empty tensors), but an
    /// empty dimension list describes a scalar with one element.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `axis`. Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements.
    ///
    /// `strides()[i]` is the distance in the flat buffer between two elements
    /// whose indices differ by one in axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Panics (in debug builds) if the index rank or any coordinate is out of
    /// range.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0usize;
        let strides = self.strides();
        for (i, (&idx, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            debug_assert!(
                idx < self.dims[i],
                "index {} out of range for axis {} with size {}",
                idx,
                i,
                self.dims[i]
            );
            off += idx * stride;
        }
        off
    }

    /// Inverse of [`offset`](Self::offset): converts a flat offset back into a
    /// multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let strides = self.strides();
        let mut index = vec![0usize; self.dims.len()];
        for (i, &stride) in strides.iter().enumerate() {
            if let Some(q) = offset.checked_div(stride) {
                index[i] = q;
                offset %= stride;
            }
        }
        index
    }

    /// Returns a new shape with the same number of elements, or an error
    /// message if the element counts differ.
    pub fn reshape(&self, new_dims: &[usize]) -> Result<Shape, String> {
        let new = Shape::new(new_dims);
        if new.numel() != self.numel() {
            return Err(format!(
                "cannot reshape {} elements into shape {:?}",
                self.numel(),
                new_dims
            ));
        }
        Ok(new)
    }

    /// Whether this is an NCHW-style 4-D shape.
    pub fn is_nchw(&self) -> bool {
        self.rank() == 4
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn zero_dim_gives_empty() {
        let s = Shape::new(&[4, 0, 2]);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_round_trips_with_unravel() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.numel() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn offset_matches_manual_nchw_arithmetic() {
        let s = Shape::new(&[2, 8, 16, 16]);
        let (n, c, h, w) = (1, 5, 10, 3);
        let expected = ((n * 8 + c) * 16 + h) * 16 + w;
        assert_eq!(s.offset(&[n, c, h, w]), expected);
    }

    #[test]
    fn reshape_preserves_numel() {
        let s = Shape::new(&[4, 6]);
        assert!(s.reshape(&[2, 12]).is_ok());
        assert!(s.reshape(&[5, 5]).is_err());
    }

    // The bounds check in `offset` is a debug_assert! (it sits on the kernel
    // hot path), so the panic only exists in builds with debug assertions.
    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_panics_on_out_of_range_index() {
        let s = Shape::new(&[2, 2]);
        s.offset(&[2, 0]);
    }

    #[test]
    fn display_formats_dims() {
        let s = Shape::new(&[1, 2]);
        assert_eq!(format!("{s}"), "[1, 2]");
    }
}
