//! The dense row-major `f32` [`Tensor`] type.

use crate::init;
use crate::shape::Shape;

/// A dense, heap-allocated, row-major `f32` tensor.
///
/// All DSXplore-rs kernels operate on NCHW (`[batch, channels, height,
/// width]`) tensors of this type; lower-rank tensors are used for weights,
/// biases and fully-connected activations.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, ... ; {} elements])",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Builds a tensor from an existing buffer. Panics if the buffer length
    /// does not match the shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Tensor { data, shape }
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor with elements drawn from a standard normal distribution,
    /// deterministically seeded.
    pub fn randn(dims: &[usize], seed: u64) -> Self {
        let shape = Shape::new(dims);
        let data = init::normal_vec(shape.numel(), 0.0, 1.0, seed);
        Tensor { data, shape }
    }

    /// A tensor with elements drawn uniformly from `[low, high)`,
    /// deterministically seeded.
    pub fn rand_uniform(dims: &[usize], low: f32, high: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let data = init::uniform_vec(shape.numel(), low, high, seed);
        Tensor { data, shape }
    }

    /// A tensor whose flat elements are `0, 1, 2, ...` — handy in tests.
    pub fn arange(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|i| i as f32).collect();
        Tensor { data, shape }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Dimension sizes.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The [`Shape`] object (strides, offsets, ...).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Size of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Read-only view of the flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Element of an NCHW tensor (rank-4 fast path used by the kernels).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.rank(), 4);
        let dims = self.shape.dims();
        self.data[((n * dims[1] + c) * dims[2] + h) * dims[3] + w]
    }

    /// Mutable element of an NCHW tensor.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.rank(), 4);
        let dims = self.shape.dims();
        let off = ((n * dims[1] + c) * dims[2] + h) * dims[3] + w;
        &mut self.data[off]
    }

    /// Approximate heap memory footprint of the tensor payload, in bytes.
    pub fn bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor sharing the same data with a new shape. Panics if the
    /// element count changes.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = self
            .shape
            .reshape(dims)
            // lint: allow(panic) — documented: reshape panics when the
            // element count changes (shape bugs are programmer error).
            .unwrap_or_else(|e| panic!("reshape failed: {e}"));
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// In-place reshape (no data copy). Panics if the element count changes.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        self.shape = self
            .shape
            .reshape(dims)
            // lint: allow(panic) — documented, same as `reshape`.
            .unwrap_or_else(|e| panic!("reshape failed: {e}"));
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (rows, cols) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros(&[cols, rows]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c * rows + r] = self.data[r * cols + c];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (allocating and in-place)
    // ------------------------------------------------------------------

    /// Elementwise sum; shapes must match.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product; shapes must match.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient; shapes must match.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// `self += alpha * other` (BLAS axpy), in place.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flat buffer.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Row-wise argmax of a rank-2 tensor, one index per row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.dim(0), self.dim(1));
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Checks that every element is finite; returns the first offending flat
    /// index otherwise.
    pub fn find_non_finite(&self) -> Option<usize> {
        self.data.iter().position(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_values() {
        assert!(Tensor::zeros(&[2, 3]).as_slice().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[4]).as_slice().iter().all(|&v| v == 1.0));
        assert!(Tensor::full(&[2], 2.5).as_slice().iter().all(|&v| v == 2.5));
        assert_eq!(Tensor::arange(&[3]).as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[32], 7);
        let b = Tensor::randn(&[32], 7);
        let c = Tensor::randn(&[32], 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn at4_matches_generic_indexing() {
        let t = Tensor::arange(&[2, 3, 4, 5]);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        assert_eq!(t.at4(n, c, h, w), t.at(&[n, c, h, w]));
                    }
                }
            }
        }
    }

    #[test]
    fn elementwise_ops_work() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions_are_correct() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[2, 2]);
        assert!((t.sum() - 2.5).abs() < 1e-6);
        assert!((t.mean() - 0.625).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm_sq() - (1.0 + 4.0 + 9.0 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_per_row_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::arange(&[2, 6]);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic]
    fn reshape_panics_on_numel_mismatch() {
        Tensor::arange(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn transpose2_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn find_non_finite_detects_nan() {
        let mut t = Tensor::zeros(&[4]);
        assert_eq!(t.find_non_finite(), None);
        t.as_mut_slice()[2] = f32::NAN;
        assert_eq!(t.find_non_finite(), Some(2));
    }

    #[test]
    fn bytes_reports_payload_size() {
        assert_eq!(Tensor::zeros(&[10, 10]).bytes(), 400);
    }
}
