//! # dsx-tensor
//!
//! Dense `f32` tensor library and CPU parallel runtime used by every other
//! crate in the DSXplore-rs workspace.
//!
//! The DSXplore paper implements its kernels directly against raw NCHW
//! buffers on a GPU; this crate provides the equivalent substrate for a CPU
//! reproduction:
//!
//! * [`Tensor`] — a dense, row-major, heap-allocated `f32` tensor with
//!   shape/stride bookkeeping ([`shape`]), elementwise arithmetic, reductions,
//!   and NCHW-specific helpers (channel slicing / concatenation) that mirror
//!   the PyTorch operators the paper's baselines are composed from.
//! * [`matmul`] — blocked and parallel GEMM used by the im2col convolution
//!   path and the fully-connected layers.
//! * [`conv`] — `im2col` / `col2im` lowering plus zero padding, the standard
//!   lowering used by the "highly-optimized library" baselines the paper
//!   compares against.
//! * [`par`] — chunked `parallel_for` entry points, the CPU stand-in for
//!   the paper's "assign one GPU thread per output pixel" decomposition,
//!   scheduled on [`pool`] — a persistent work-stealing worker pool so hot
//!   kernel launches pay a queue push instead of OS thread startup.
//! * [`init`] — Kaiming / Xavier / uniform initialisers with deterministic
//!   seeding so experiments are reproducible.
//!
//! ## Example
//!
//! ```
//! use dsx_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![warn(missing_docs)]

pub mod checksum;
pub mod conv;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod par;
pub mod pool;
pub mod shape;
pub mod slice;
pub mod tensor;
pub mod wire;

pub use checksum::{crc32, Crc32};
pub use matmul::GemmKernel;
pub use par::{num_threads, set_num_threads};
pub use pool::PoolStats;
pub use shape::Shape;
pub use tensor::Tensor;
pub use wire::{WireDecodeError, MAX_WIRE_NUMEL, MAX_WIRE_RANK};

/// Absolute tolerance used by the test-suites of every crate in the
/// workspace when comparing floating-point tensors produced by different but
/// mathematically equivalent kernels (e.g. the SCC output-centric forward vs
/// the naive reference).
pub const TEST_TOLERANCE: f32 = 1e-4;

/// Returns `true` if `a` and `b` have identical shapes and every pair of
/// elements is within `tol` (absolutely or relative to the larger magnitude).
pub fn allclose(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| (x - y).abs() <= tol || (x - y).abs() <= tol * x.abs().max(y.abs()))
}

/// Maximum absolute elementwise difference between two tensors of identical
/// shape. Panics if shapes differ.
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff: shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allclose_detects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(!allclose(&a, &b, 1e-6));
    }

    #[test]
    fn allclose_detects_value_mismatch() {
        let a = Tensor::zeros(&[3]);
        let mut b = Tensor::zeros(&[3]);
        b.as_mut_slice()[1] = 0.5;
        assert!(!allclose(&a, &b, 1e-6));
        assert!(allclose(&a, &b, 0.6));
    }

    #[test]
    fn allclose_accepts_relative_tolerance() {
        let a = Tensor::from_vec(vec![1000.0, 2000.0], &[2]);
        let b = Tensor::from_vec(vec![1000.05, 2000.1], &[2]);
        assert!(allclose(&a, &b, 1e-4));
    }

    #[test]
    fn max_abs_diff_reports_largest_gap() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![1.0, 2.5, 2.0], &[3]);
        assert!((max_abs_diff(&a, &b) - 1.0).abs() < 1e-6);
    }
}
