//! ResNet18 and ResNet50 model specifications (He et al., 2016), in both the
//! CIFAR-10 adaptation (3×3 stem, 32×32 input) and the ImageNet form (7×7
//! strided stem + max-pool, 224×224 input) used by the paper's Table III.
//!
//! Under the DSC replacement schemes only the 3×3 convolutions inside the
//! basic/bottleneck blocks are replaced; the 1×1 convolutions (bottleneck
//! reduce/expand and projection shortcuts) are already lightweight and stay
//! standard, as the paper notes when explaining why ResNet speedups are
//! smaller than VGG's (§V-C).

use crate::scheme::ConvScheme;
use crate::spec::{ConvKind, ConvLayerSpec, Dataset, ModelSpec};

/// Stage plan: `(blocks, mid_channels)` for the four stages.
const RESNET18_STAGES: &[(usize, usize)] = &[(2, 64), (2, 128), (2, 256), (2, 512)];
const RESNET50_STAGES: &[(usize, usize)] = &[(3, 64), (4, 128), (6, 256), (3, 512)];

/// Bottleneck expansion factor of ResNet50.
const EXPANSION: usize = 4;

struct SpecBuilder {
    convs: Vec<ConvLayerSpec>,
    scheme: ConvScheme,
}

impl SpecBuilder {
    fn standard_1x1(&mut self, name: &str, cin: usize, cout: usize, hw: usize, stride: usize) {
        self.convs.push(ConvLayerSpec {
            name: name.to_string(),
            kind: ConvKind::Standard {
                kernel: 1,
                groups: 1,
            },
            cin,
            cout,
            in_hw: hw,
            stride,
            with_bn: true,
        });
    }

    fn conv3x3(&mut self, name: &str, cin: usize, cout: usize, hw: usize, stride: usize) {
        self.convs.extend(
            self.scheme
                .expand_standard_conv(name, cin, cout, 3, hw, stride, true),
        );
    }
}

fn resnet_spec(
    name: &str,
    stages: &[(usize, usize)],
    bottleneck: bool,
    dataset: Dataset,
    scheme: ConvScheme,
) -> ModelSpec {
    let mut b = SpecBuilder {
        convs: Vec::new(),
        scheme,
    };

    // Stem.
    let mut hw = dataset.input_size();
    let stem_out = 64usize;
    match dataset {
        Dataset::Cifar10 => {
            b.convs.push(ConvLayerSpec {
                name: "stem".into(),
                kind: ConvKind::Standard {
                    kernel: 3,
                    groups: 1,
                },
                cin: 3,
                cout: stem_out,
                in_hw: hw,
                stride: 1,
                with_bn: true,
            });
        }
        Dataset::ImageNet => {
            b.convs.push(ConvLayerSpec {
                name: "stem".into(),
                kind: ConvKind::Standard {
                    kernel: 7,
                    groups: 1,
                },
                cin: 3,
                cout: stem_out,
                in_hw: hw,
                stride: 2,
                with_bn: true,
            });
            hw /= 2;
            // 3x3 max-pool stride 2 follows the stem.
            hw /= 2;
        }
    }

    let expansion = if bottleneck { EXPANSION } else { 1 };
    let mut cin = stem_out;
    for (stage_idx, &(blocks, mid)) in stages.iter().enumerate() {
        for block_idx in 0..blocks {
            let stride = if stage_idx > 0 && block_idx == 0 {
                2
            } else {
                1
            };
            let cout = mid * expansion;
            let prefix = format!("layer{}.{}", stage_idx + 1, block_idx);
            if bottleneck {
                // 1x1 reduce -> 3x3 (replaceable) -> 1x1 expand.
                b.standard_1x1(&format!("{prefix}.conv1"), cin, mid, hw, 1);
                b.conv3x3(&format!("{prefix}.conv2"), mid, mid, hw, stride);
                let out_hw = hw.div_ceil(stride);
                b.standard_1x1(&format!("{prefix}.conv3"), mid, cout, out_hw, 1);
                if cin != cout || stride != 1 {
                    b.standard_1x1(&format!("{prefix}.downsample"), cin, cout, hw, stride);
                }
                hw = out_hw;
            } else {
                // 3x3 -> 3x3, both replaceable.
                b.conv3x3(&format!("{prefix}.conv1"), cin, cout, hw, stride);
                let out_hw = hw.div_ceil(stride);
                b.conv3x3(&format!("{prefix}.conv2"), cout, cout, out_hw, 1);
                if cin != cout || stride != 1 {
                    b.standard_1x1(&format!("{prefix}.downsample"), cin, cout, hw, stride);
                }
                hw = out_hw;
            }
            cin = cout;
        }
    }

    ModelSpec {
        name: name.to_string(),
        dataset,
        scheme_tag: scheme.tag(),
        convs: b.convs,
        classifier_in: cin,
        classes: dataset.classes(),
    }
}

/// ResNet18 specification (basic blocks).
pub fn resnet18(dataset: Dataset, scheme: ConvScheme) -> ModelSpec {
    resnet_spec("ResNet18", RESNET18_STAGES, false, dataset, scheme)
}

/// ResNet50 specification (bottleneck blocks).
pub fn resnet50(dataset: Dataset, scheme: ConvScheme) -> ModelSpec {
    resnet_spec("ResNet50", RESNET50_STAGES, true, dataset, scheme)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_cifar_origin_matches_paper_counts() {
        let spec = resnet18(Dataset::Cifar10, ConvScheme::Origin);
        // Paper Table II: 255.89 MFLOPs (lower because their variant follows
        // the torchvision stride placement), 11.17M parameters.
        assert!(
            (spec.params_m() - 11.17).abs() < 0.2,
            "ResNet18 params {}M",
            spec.params_m()
        );
        assert!(
            spec.mflops() > 250.0 && spec.mflops() < 600.0,
            "ResNet18 MFLOPs {}",
            spec.mflops()
        );
    }

    #[test]
    fn resnet50_cifar_origin_matches_paper_counts() {
        let spec = resnet50(Dataset::Cifar10, ConvScheme::Origin);
        // Paper Table II: 1297.80 MFLOPs, 23.52M parameters.
        assert!(
            (spec.params_m() - 23.52).abs() < 0.5,
            "ResNet50 params {}M",
            spec.params_m()
        );
        assert!(
            spec.mflops() > 1000.0 && spec.mflops() < 1500.0,
            "ResNet50 MFLOPs {}",
            spec.mflops()
        );
    }

    #[test]
    fn resnet50_imagenet_matches_paper_table3() {
        let spec = resnet50(Dataset::ImageNet, ConvScheme::Origin);
        // Paper Table III: 4130 MFLOPs, 23.67M parameters (the 1000-class
        // classifier adds ~2M over the CIFAR head).
        assert!(
            (spec.mflops() - 4130.0).abs() < 300.0,
            "ResNet50 ImageNet MFLOPs {}",
            spec.mflops()
        );
        assert!(
            (spec.params_m() - 25.5).abs() < 2.5,
            "ResNet50 ImageNet params {}M",
            spec.params_m()
        );
    }

    #[test]
    fn dsxplore_resnet50_reduction_matches_paper_shape() {
        // Paper Table III: FLOPs 4130 -> 2550 (38% saving), params 23.67M ->
        // 14.34M (39% saving). Only the 3x3 convs are replaced, so savings
        // are much smaller than VGG's.
        let origin = resnet50(Dataset::ImageNet, ConvScheme::Origin);
        let dsx = resnet50(Dataset::ImageNet, ConvScheme::DSXPLORE_DEFAULT);
        let flop_saving = 1.0 - dsx.mflops() / origin.mflops();
        let param_saving = 1.0 - dsx.params_m() / origin.params_m();
        assert!(
            flop_saving > 0.2 && flop_saving < 0.55,
            "flop saving {flop_saving}"
        );
        assert!(
            param_saving > 0.2 && param_saving < 0.55,
            "param saving {param_saving}"
        );
    }

    #[test]
    fn dsxplore_resnet18_savings_are_larger_than_resnet50() {
        // Basic blocks are all 3x3, so a larger fraction is replaced.
        let r18_saving = {
            let o = resnet18(Dataset::Cifar10, ConvScheme::Origin);
            let d = resnet18(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
            1.0 - d.mflops() / o.mflops()
        };
        let r50_saving = {
            let o = resnet50(Dataset::Cifar10, ConvScheme::Origin);
            let d = resnet50(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
            1.0 - d.mflops() / o.mflops()
        };
        assert!(r18_saving > r50_saving);
    }

    #[test]
    fn bottleneck_1x1_convs_are_never_replaced() {
        let spec = resnet50(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
        for conv in &spec.convs {
            if let ConvKind::Standard { kernel, .. } = conv.kind {
                assert!(kernel == 1 || kernel == 3 || kernel == 7);
            }
        }
        // Exactly one SCC layer per bottleneck block (3+4+6+3 = 16).
        assert_eq!(spec.scc_layers().len(), 16);
    }

    #[test]
    fn resnet18_has_expected_block_structure() {
        let spec = resnet18(Dataset::Cifar10, ConvScheme::Origin);
        // stem + 2 convs per block * 8 blocks + 3 downsample projections.
        assert_eq!(spec.convs.len(), 1 + 16 + 3);
        assert_eq!(spec.classifier_in, 512);
    }

    #[test]
    fn imagenet_stem_downsamples_to_56() {
        let spec = resnet50(Dataset::ImageNet, ConvScheme::Origin);
        // The first bottleneck's 1x1 runs at 56x56.
        assert_eq!(spec.convs[1].in_hw, 56);
    }
}
