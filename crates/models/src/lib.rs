//! # dsx-models
//!
//! Model zoo for the DSXplore reproduction: VGG16/19, MobileNet and
//! ResNet18/50 described as analytic [`ModelSpec`]s (exact FLOP and parameter
//! accounting for Tables II–IV) and instantiable as trainable `dsx-nn`
//! networks, each parameterised by a [`ConvScheme`] that decides whether the
//! standard convolutions stay, become DW+PW / DW+GPW, or become DW+SCC
//! (DSXplore).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod ckpt;
pub mod mobilenet;
pub mod resnet;
pub mod scheme;
pub mod spec;
pub mod vgg;

pub use builder::{build_model, build_model_with, build_model_with_backend};
pub use ckpt::{model_digest, validate_spec, Checkpoint, CkptError, CKPT_VERSION};
pub use mobilenet::mobilenet;
pub use resnet::{resnet18, resnet50};
pub use scheme::ConvScheme;
pub use spec::{ConvKind, ConvLayerSpec, Dataset, ModelSpec};
pub use vgg::{vgg16, vgg19};

/// The five CNNs the paper evaluates, in its presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// VGG16 (linearly stacked standard convolutions).
    Vgg16,
    /// VGG19.
    Vgg19,
    /// MobileNet (native DW+PW separable blocks).
    MobileNet,
    /// ResNet18 (basic residual blocks).
    ResNet18,
    /// ResNet50 (bottleneck residual blocks).
    ResNet50,
}

impl ModelKind {
    /// All five models in the paper's order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Vgg16,
        ModelKind::Vgg19,
        ModelKind::MobileNet,
        ModelKind::ResNet18,
        ModelKind::ResNet50,
    ];

    /// Display name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Vgg16 => "VGG16",
            ModelKind::Vgg19 => "VGG19",
            ModelKind::MobileNet => "MobileNet",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::ResNet50 => "ResNet50",
        }
    }

    /// Builds the model's spec for a dataset and scheme.
    pub fn spec(&self, dataset: Dataset, scheme: ConvScheme) -> ModelSpec {
        match self {
            ModelKind::Vgg16 => vgg16(dataset, scheme),
            ModelKind::Vgg19 => vgg19(dataset, scheme),
            ModelKind::MobileNet => mobilenet(dataset, scheme),
            ModelKind::ResNet18 => resnet18(dataset, scheme),
            ModelKind::ResNet50 => resnet50(dataset, scheme),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_specs_for_all_schemes() {
        let schemes = [
            ConvScheme::Origin,
            ConvScheme::DwPw,
            ConvScheme::DwGpw { cg: 2 },
            ConvScheme::DSXPLORE_DEFAULT,
        ];
        for kind in ModelKind::ALL {
            for scheme in schemes {
                let spec = kind.spec(Dataset::Cifar10, scheme);
                assert!(spec.params() > 0, "{} {}", kind.name(), scheme.tag());
                assert!(spec.macs() > 0);
            }
        }
    }

    #[test]
    fn dsxplore_always_reduces_cost_relative_to_origin() {
        for kind in ModelKind::ALL {
            let origin = kind.spec(Dataset::Cifar10, ConvScheme::Origin);
            let dsx = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
            assert!(
                dsx.macs() < origin.macs(),
                "{}: {} !< {}",
                kind.name(),
                dsx.macs(),
                origin.macs()
            );
            assert!(dsx.params() < origin.params(), "{}", kind.name());
        }
    }

    #[test]
    fn average_savings_match_paper_headline() {
        // The paper reports 70.48% average FLOP savings and 83.27% average
        // parameter savings over the five CIFAR-10 models (Table II). Our
        // faithful reconstruction should land in the same region.
        let mut flop_savings = Vec::new();
        let mut param_savings = Vec::new();
        for kind in ModelKind::ALL {
            let origin = kind.spec(Dataset::Cifar10, ConvScheme::Origin);
            let dsx = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
            flop_savings.push(1.0 - dsx.mflops() / origin.mflops());
            param_savings.push(1.0 - dsx.params_m() / origin.params_m());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let flops = mean(&flop_savings);
        let params = mean(&param_savings);
        assert!(flops > 0.5 && flops < 0.9, "mean FLOP saving {flops}");
        assert!(params > 0.6 && params < 0.95, "mean param saving {params}");
    }

    #[test]
    fn model_names_are_stable() {
        assert_eq!(ModelKind::Vgg16.name(), "VGG16");
        assert_eq!(ModelKind::ALL.len(), 5);
    }
}
