//! Convolution schemes: how each standard convolution of an "Origin" network
//! is (or is not) replaced by a depthwise-separable block.

use crate::spec::{ConvKind, ConvLayerSpec};

/// The convolution-replacement strategies compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvScheme {
    /// The unmodified network (standard convolutions; for MobileNet this is
    /// its native DW+PW design).
    Origin,
    /// Replace each standard convolution with depthwise + pointwise
    /// (the classic DSC of MobileNet / Xception).
    DwPw,
    /// Replace with depthwise + group pointwise.
    DwGpw {
        /// Number of channel groups of the GPW stage.
        cg: usize,
    },
    /// Replace with depthwise + sliding-channel convolution — DSXplore.
    DwScc {
        /// Number of channel groups of the SCC stage.
        cg: usize,
        /// Input-channel overlap ratio of adjacent SCC filters.
        co: f64,
    },
}

impl ConvScheme {
    /// The paper's default DSXplore setting (`cg = 2`, `co = 50 %`).
    pub const DSXPLORE_DEFAULT: ConvScheme = ConvScheme::DwScc { cg: 2, co: 0.5 };

    /// Scheme tag used in table rows, e.g. `DW+SCC-cg2-co50%`.
    pub fn tag(&self) -> String {
        match self {
            ConvScheme::Origin => "Origin".to_string(),
            ConvScheme::DwPw => "DW+PW".to_string(),
            ConvScheme::DwGpw { cg } => format!("DW+GPW-cg{cg}"),
            ConvScheme::DwScc { cg, co } => {
                format!("DW+SCC-cg{cg}-co{}%", (co * 100.0).round() as usize)
            }
        }
    }

    /// Channel-group requirement of the scheme's 1×1 stage.
    pub fn group_requirement(&self) -> usize {
        match self {
            ConvScheme::Origin | ConvScheme::DwPw => 1,
            ConvScheme::DwGpw { cg } => *cg,
            ConvScheme::DwScc { cg, .. } => *cg,
        }
    }

    /// The [`ConvKind`] of the channel-fusion (1×1) stage of this scheme.
    pub fn channel_stage_kind(&self) -> ConvKind {
        match self {
            ConvScheme::Origin | ConvScheme::DwPw => ConvKind::Pointwise,
            ConvScheme::DwGpw { cg } => ConvKind::GroupPointwise { cg: *cg },
            ConvScheme::DwScc { cg, co } => ConvKind::SlidingChannel { cg: *cg, co: *co },
        }
    }

    /// Whether a standard convolution with the given channel counts can be
    /// replaced by this scheme (channels must divide evenly into the groups;
    /// the input layer — 3 RGB channels — is never replaced, per §V-B).
    pub fn can_replace(&self, cin: usize, cout: usize) -> bool {
        let cg = self.group_requirement();
        cin > 3 && cin.is_multiple_of(cg) && cout.is_multiple_of(cg)
    }

    /// Expands one standard `kernel × kernel` convolution of the Origin
    /// network into the layers this scheme uses for it. `replaceable` is
    /// false for layers the paper keeps standard (the input layer and the
    /// 1×1 convolutions inside bottleneck blocks).
    #[allow(clippy::too_many_arguments)]
    pub fn expand_standard_conv(
        &self,
        name: &str,
        cin: usize,
        cout: usize,
        kernel: usize,
        in_hw: usize,
        stride: usize,
        replaceable: bool,
    ) -> Vec<ConvLayerSpec> {
        let keep_standard = matches!(self, ConvScheme::Origin)
            || !replaceable
            || kernel == 1
            || !self.can_replace(cin, cout);
        if keep_standard {
            return vec![ConvLayerSpec {
                name: name.to_string(),
                kind: ConvKind::Standard { kernel, groups: 1 },
                cin,
                cout,
                in_hw,
                stride,
                with_bn: true,
            }];
        }
        vec![
            ConvLayerSpec {
                name: format!("{name}.dw"),
                kind: ConvKind::Depthwise { kernel },
                cin,
                cout: cin,
                in_hw,
                stride,
                with_bn: true,
            },
            ConvLayerSpec {
                name: format!("{name}.fuse"),
                kind: self.channel_stage_kind(),
                cin,
                cout,
                in_hw: in_hw.div_ceil(stride),
                stride: 1,
                with_bn: true,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_paper_notation() {
        assert_eq!(ConvScheme::Origin.tag(), "Origin");
        assert_eq!(ConvScheme::DwPw.tag(), "DW+PW");
        assert_eq!(ConvScheme::DwGpw { cg: 4 }.tag(), "DW+GPW-cg4");
        assert_eq!(
            ConvScheme::DwScc { cg: 2, co: 0.33 }.tag(),
            "DW+SCC-cg2-co33%"
        );
        assert_eq!(ConvScheme::DSXPLORE_DEFAULT.tag(), "DW+SCC-cg2-co50%");
    }

    #[test]
    fn origin_keeps_standard_convolutions() {
        let layers = ConvScheme::Origin.expand_standard_conv("c", 64, 128, 3, 32, 1, true);
        assert_eq!(layers.len(), 1);
        assert_eq!(
            layers[0].kind,
            ConvKind::Standard {
                kernel: 3,
                groups: 1
            }
        );
    }

    #[test]
    fn dsxplore_replaces_with_dw_plus_scc() {
        let layers =
            ConvScheme::DSXPLORE_DEFAULT.expand_standard_conv("c", 64, 128, 3, 32, 2, true);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].kind, ConvKind::Depthwise { kernel: 3 });
        assert_eq!(layers[0].stride, 2);
        assert_eq!(layers[1].kind, ConvKind::SlidingChannel { cg: 2, co: 0.5 });
        // The fusion stage runs on the already-downsampled feature map.
        assert_eq!(layers[1].in_hw, 16);
        assert_eq!(layers[1].stride, 1);
    }

    #[test]
    fn input_layer_is_never_replaced() {
        let layers = ConvScheme::DSXPLORE_DEFAULT.expand_standard_conv("c", 3, 64, 3, 32, 1, true);
        assert_eq!(layers.len(), 1);
        assert!(matches!(layers[0].kind, ConvKind::Standard { .. }));
    }

    #[test]
    fn non_replaceable_and_1x1_layers_stay_standard() {
        let scheme = ConvScheme::DSXPLORE_DEFAULT;
        assert_eq!(
            scheme
                .expand_standard_conv("c", 64, 64, 3, 8, 1, false)
                .len(),
            1
        );
        assert_eq!(
            scheme
                .expand_standard_conv("c", 64, 256, 1, 8, 1, true)
                .len(),
            1
        );
    }

    #[test]
    fn replacement_reduces_macs_and_params() {
        let scheme = ConvScheme::DSXPLORE_DEFAULT;
        let origin = ConvScheme::Origin.expand_standard_conv("c", 128, 256, 3, 16, 1, true);
        let dsx = scheme.expand_standard_conv("c", 128, 256, 3, 16, 1, true);
        let macs = |ls: &[ConvLayerSpec]| ls.iter().map(|l| l.macs()).sum::<usize>();
        let params = |ls: &[ConvLayerSpec]| ls.iter().map(|l| l.params()).sum::<usize>();
        assert!(macs(&dsx) < macs(&origin) / 5);
        assert!(params(&dsx) < params(&origin) / 5);
    }

    #[test]
    fn can_replace_respects_group_divisibility() {
        let scheme = ConvScheme::DwGpw { cg: 8 };
        assert!(scheme.can_replace(64, 128));
        assert!(!scheme.can_replace(60, 128));
        assert!(!scheme.can_replace(3, 64));
    }

    #[test]
    fn scc_and_gpw_expansions_have_equal_cost() {
        let gpw = ConvScheme::DwGpw { cg: 4 }.expand_standard_conv("c", 64, 128, 3, 16, 1, true);
        let scc =
            ConvScheme::DwScc { cg: 4, co: 0.5 }.expand_standard_conv("c", 64, 128, 3, 16, 1, true);
        let macs = |ls: &[ConvLayerSpec]| ls.iter().map(|l| l.macs()).sum::<usize>();
        assert_eq!(macs(&gpw), macs(&scc));
    }
}
