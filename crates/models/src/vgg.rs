//! VGG16 and VGG19 model specifications (Simonyan & Zisserman, 2015), in the
//! CIFAR-10 adaptation the paper evaluates: 3×3 convolution stacks separated
//! by 2×2 max-pools, ending in global average pooling and a single linear
//! classifier.

use crate::scheme::ConvScheme;
use crate::spec::{ConvLayerSpec, Dataset, ModelSpec};

/// Per-stage output channel counts of VGG16: `(channels, convs_in_stage)`.
const VGG16_STAGES: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
/// Per-stage output channel counts of VGG19.
const VGG19_STAGES: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];

fn vgg_spec(
    name: &str,
    stages: &[(usize, usize)],
    dataset: Dataset,
    scheme: ConvScheme,
) -> ModelSpec {
    let mut convs: Vec<ConvLayerSpec> = Vec::new();
    let mut cin = 3usize;
    let mut hw = dataset.input_size();
    let mut first = true;
    for (stage_idx, &(cout, count)) in stages.iter().enumerate() {
        for conv_idx in 0..count {
            let layer_name = format!("stage{}.conv{}", stage_idx + 1, conv_idx + 1);
            let replaceable = !first;
            convs.extend(scheme.expand_standard_conv(
                &layer_name,
                cin,
                cout,
                3,
                hw,
                1,
                replaceable,
            ));
            cin = cout;
            first = false;
        }
        // 2x2 max-pool after every stage.
        hw /= 2;
    }
    ModelSpec {
        name: name.to_string(),
        dataset,
        scheme_tag: scheme.tag(),
        convs,
        // lint: allow(panic) — `stages` is a non-empty compile-time
        // table for every scheme.
        classifier_in: stages.last().unwrap().0,
        classes: dataset.classes(),
    }
}

/// VGG16 specification.
pub fn vgg16(dataset: Dataset, scheme: ConvScheme) -> ModelSpec {
    vgg_spec("VGG16", VGG16_STAGES, dataset, scheme)
}

/// VGG19 specification.
pub fn vgg19(dataset: Dataset, scheme: ConvScheme) -> ModelSpec {
    vgg_spec("VGG19", VGG19_STAGES, dataset, scheme)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_origin_matches_paper_table2_counts() {
        let spec = vgg16(Dataset::Cifar10, ConvScheme::Origin);
        // Paper Table II: 314.16 MFLOPs, 14.73M parameters.
        assert!(
            (spec.mflops() - 314.16).abs() < 5.0,
            "VGG16 MFLOPs {}",
            spec.mflops()
        );
        assert!(
            (spec.params_m() - 14.73).abs() < 0.15,
            "VGG16 params {}M",
            spec.params_m()
        );
        assert_eq!(spec.convs.len(), 13);
    }

    #[test]
    fn vgg19_origin_matches_paper_table2_counts() {
        let spec = vgg19(Dataset::Cifar10, ConvScheme::Origin);
        // Paper Table II: 399.17 MFLOPs, 20.04M parameters.
        assert!(
            (spec.mflops() - 399.17).abs() < 6.0,
            "VGG19 MFLOPs {}",
            spec.mflops()
        );
        assert!(
            (spec.params_m() - 20.04).abs() < 0.2,
            "VGG19 params {}M",
            spec.params_m()
        );
        assert_eq!(spec.convs.len(), 16);
    }

    #[test]
    fn vgg16_dsxplore_saves_over_90_percent() {
        let origin = vgg16(Dataset::Cifar10, ConvScheme::Origin);
        let dsx = vgg16(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
        // Paper: DSXplore VGG16 = 21.85 MFLOPs, 0.87M params (>90% savings).
        let flop_saving = 1.0 - dsx.mflops() / origin.mflops();
        let param_saving = 1.0 - dsx.params_m() / origin.params_m();
        assert!(flop_saving > 0.9, "flop saving {flop_saving}");
        assert!(param_saving > 0.9, "param saving {param_saving}");
        assert!(
            (dsx.mflops() - 21.85).abs() < 8.0,
            "DSXplore VGG16 MFLOPs {}",
            dsx.mflops()
        );
        assert!(
            (dsx.params_m() - 0.87).abs() < 0.3,
            "DSXplore VGG16 params {}M",
            dsx.params_m()
        );
    }

    #[test]
    fn first_layer_stays_standard_under_every_scheme() {
        for scheme in [
            ConvScheme::DwPw,
            ConvScheme::DwGpw { cg: 4 },
            ConvScheme::DSXPLORE_DEFAULT,
        ] {
            let spec = vgg16(Dataset::Cifar10, scheme);
            assert!(matches!(
                spec.convs[0].kind,
                crate::spec::ConvKind::Standard { .. }
            ));
            assert_eq!(spec.convs[0].cin, 3);
        }
    }

    #[test]
    fn replaced_vgg_has_roughly_twice_the_layer_entries() {
        let origin = vgg16(Dataset::Cifar10, ConvScheme::Origin);
        let dsx = vgg16(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
        // 12 of the 13 convs are replaced by (DW, SCC) pairs.
        assert_eq!(dsx.convs.len(), origin.convs.len() + 12);
        assert_eq!(dsx.scc_layers().len(), 12);
    }

    #[test]
    fn imagenet_vgg_is_much_larger_than_cifar() {
        let cifar = vgg16(Dataset::Cifar10, ConvScheme::Origin);
        let imagenet = vgg16(Dataset::ImageNet, ConvScheme::Origin);
        assert!(imagenet.macs() > 40 * cifar.macs());
        assert_eq!(imagenet.classes, 1000);
    }

    #[test]
    fn feature_map_sizes_follow_pooling() {
        let spec = vgg16(Dataset::Cifar10, ConvScheme::Origin);
        assert_eq!(spec.convs[0].in_hw, 32);
        assert_eq!(spec.convs[2].in_hw, 16); // after first pool
        assert_eq!(spec.convs.last().unwrap().in_hw, 2);
    }
}
