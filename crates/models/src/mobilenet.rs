//! MobileNet(-v1) model specification (Howard et al., 2017) in the CIFAR-10
//! adaptation the paper's Table IV studies: a standard stem convolution
//! followed by 13 depthwise-separable blocks whose channel-fusion stage is
//! the quantity under study (PW / GPW / SCC).

use crate::scheme::ConvScheme;
use crate::spec::{ConvKind, ConvLayerSpec, Dataset, ModelSpec};

/// The separable-block plan: `(output channels, stride)`.
const MOBILENET_BLOCKS: &[(usize, usize)] = &[
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
];

/// Width of the stem convolution.
const STEM_CHANNELS: usize = 32;

/// MobileNet specification. For MobileNet the `Origin` scheme *is* DW+PW
/// (that is the network's native design and the paper's Table IV baseline);
/// the other schemes swap the fusion stage of every separable block.
pub fn mobilenet(dataset: Dataset, scheme: ConvScheme) -> ModelSpec {
    let fusion_kind = scheme.channel_stage_kind();
    let cg = scheme.group_requirement();

    let mut convs: Vec<ConvLayerSpec> = Vec::new();
    let mut hw = dataset.input_size();
    // Stem: standard 3x3 convolution from RGB (never replaced).
    convs.push(ConvLayerSpec {
        name: "stem".to_string(),
        kind: ConvKind::Standard {
            kernel: 3,
            groups: 1,
        },
        cin: 3,
        cout: STEM_CHANNELS,
        in_hw: hw,
        stride: 1,
        with_bn: true,
    });

    let mut cin = STEM_CHANNELS;
    for (idx, &(cout, stride)) in MOBILENET_BLOCKS.iter().enumerate() {
        let name = format!("block{}", idx + 1);
        convs.push(ConvLayerSpec {
            name: format!("{name}.dw"),
            kind: ConvKind::Depthwise { kernel: 3 },
            cin,
            cout: cin,
            in_hw: hw,
            stride,
            with_bn: true,
        });
        let fused_hw = hw.div_ceil(stride);
        // Fall back to plain pointwise when the group requirement does not
        // divide the channel counts (only relevant for the 32-channel stem
        // output with cg = 8 on very thin models).
        let kind = if cin.is_multiple_of(cg) && cout.is_multiple_of(cg) {
            fusion_kind
        } else {
            ConvKind::Pointwise
        };
        convs.push(ConvLayerSpec {
            name: format!("{name}.fuse"),
            kind,
            cin,
            cout,
            in_hw: fused_hw,
            stride: 1,
            with_bn: true,
        });
        cin = cout;
        hw = fused_hw;
    }

    ModelSpec {
        name: "MobileNet".to_string(),
        dataset,
        scheme_tag: scheme.tag(),
        convs,
        classifier_in: cin,
        classes: dataset.classes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_13_separable_blocks() {
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::Origin);
        // 1 stem + 13 * (dw + fuse) = 27 conv entries.
        assert_eq!(spec.convs.len(), 27);
        assert_eq!(spec.classifier_in, 1024);
    }

    #[test]
    fn baseline_cost_is_in_the_mobilenet_cifar_range() {
        // Paper Table IV baseline: 50 MFLOPs. Our faithful MobileNet-v1 CIFAR
        // adaptation lands in the same few-tens-of-MFLOPs range.
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::Origin);
        assert!(
            spec.mflops() > 30.0 && spec.mflops() < 80.0,
            "MobileNet MFLOPs {}",
            spec.mflops()
        );
        assert!(
            spec.params_m() > 2.0 && spec.params_m() < 7.0,
            "MobileNet params {}M",
            spec.params_m()
        );
    }

    #[test]
    fn gpw_and_scc_reduce_cost_by_roughly_the_group_factor() {
        let base = mobilenet(Dataset::Cifar10, ConvScheme::Origin);
        for cg in [2usize, 4, 8] {
            let gpw = mobilenet(Dataset::Cifar10, ConvScheme::DwGpw { cg });
            let scc = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg, co: 0.5 });
            // SCC and GPW have identical analytic cost (Table IV rows agree).
            assert_eq!(gpw.macs(), scc.macs());
            assert_eq!(gpw.params(), scc.params());
            // The pointwise stage dominates, so cost shrinks with cg.
            assert!(scc.macs() < base.macs());
            let ratio = base.macs() as f64 / scc.macs() as f64;
            assert!(
                ratio > 1.2 && ratio < cg as f64 + 1.0,
                "cg={cg} ratio={ratio}"
            );
        }
    }

    #[test]
    fn paper_table4_ordering_of_flops() {
        // MFLOPs must be monotonically decreasing in cg, matching the paper's
        // 50 / 30 / 20 / 10 progression shape.
        let base = mobilenet(Dataset::Cifar10, ConvScheme::Origin).mflops();
        let cg2 = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co: 0.5 }).mflops();
        let cg4 = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 4, co: 0.5 }).mflops();
        let cg8 = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 8, co: 0.5 }).mflops();
        assert!(base > cg2 && cg2 > cg4 && cg4 > cg8);
    }

    #[test]
    fn overlap_does_not_change_analytic_cost() {
        let a = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co: 0.33 });
        let b = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co: 0.5 });
        assert_eq!(a.macs(), b.macs());
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn stem_output_with_cg8_falls_back_to_pointwise() {
        // 32-channel stem output is not divisible by.. it is divisible by 8,
        // so with cg=8 the first fusion layer is still grouped; but a scaled
        // model may not be. Check the full-width model keeps SCC everywhere.
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 8, co: 0.5 });
        assert_eq!(spec.scc_layers().len(), 13);
    }

    #[test]
    fn imagenet_variant_scales_macs_with_resolution() {
        let cifar = mobilenet(Dataset::Cifar10, ConvScheme::Origin);
        let imagenet = mobilenet(Dataset::ImageNet, ConvScheme::Origin);
        assert!(imagenet.macs() > 20 * cifar.macs());
    }
}
