//! Versioned model checkpoints: the on-disk train → save → serve format.
//!
//! A checkpoint is self-describing — it carries the full [`ModelSpec`]
//! (scheme tag, backend-agnostic layer topology, channel configuration) in
//! its header, so a serving process can rebuild the exact architecture with
//! [`Checkpoint::build_model`] and then stream the named tensor records
//! into it. Tensor payloads reuse the `dsx_tensor::wire` codec; every
//! record and the whole file are guarded by CRC-32 checksums
//! ([`dsx_tensor::crc32`]).
//!
//! ```text
//! magic "DSXC" | version u16 | header_len u32 | header (ModelSpec) | header_crc u32
//! | record_count u32 | { name_len u16 | name | tensor wire | record_crc u32 } * N
//! | file_crc u32
//! ```
//!
//! All integers are little-endian. `file_crc` covers every byte before it.
//!
//! Decoding is defensive: truncated input, corrupt checksums, unknown
//! versions or layer tags, oversize headers and topology mismatches all
//! surface as typed [`CkptError`]s — hostile bytes can never panic the
//! loader. [`Checkpoint::build_model`] validates the decoded spec against
//! the same invariants the builder asserts, so a forged header cannot
//! reach a builder panic either.
//!
//! Round trips are lossless: weights are stored as raw `f32` bits, so a
//! saved model reloaded into a fresh process infers **bit-identically** on
//! every kernel backend (the `dsx-serve --model` parity guarantee).

use crate::builder::build_model_with_backend;
use crate::spec::{ConvKind, ConvLayerSpec, Dataset, ModelSpec};
use dsx_core::{BackendKind, SccConfig, SccImplementation};
use dsx_nn::{Layer, Sequential};
use dsx_tensor::{crc32, Tensor, WireDecodeError};
use std::collections::HashMap;
use std::path::Path;

/// File magic, first four bytes of every checkpoint.
pub const CKPT_MAGIC: [u8; 4] = *b"DSXC";
/// Current format version. Any change to the byte layout must bump this
/// and keep a decode path for older versions (the golden-fixture test in
/// `crates/models/tests` enforces it).
pub const CKPT_VERSION: u16 = 1;
/// Upper bound on the serialized header — a forged length cannot force a
/// large allocation.
pub const MAX_HEADER_LEN: usize = 1 << 20;
/// Upper bound on tensor records per checkpoint.
pub const MAX_RECORDS: usize = 1 << 16;
/// Upper bound on the *declared* parameter count of a decoded spec;
/// [`Checkpoint::build_model`] refuses anything larger before allocating.
pub const MAX_SPEC_PARAMS: usize = 1 << 28;

/// Views an exactly-`N`-byte slice (as produced by the bounds-checked
/// `take` closures below) as a fixed array. The length mismatch is
/// impossible by construction, but it maps to a typed error rather than a
/// panic so hostile input can never reach an unwind path.
fn fixed<const N: usize>(s: &[u8]) -> Result<[u8; N], CkptError> {
    s.try_into().map_err(|_| CkptError::Truncated {
        needed: N,
        available: s.len(),
    })
}

/// Typed decode/apply failures. Hostile bytes map to one of these — never
/// to a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// The input ended before a required field.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// The first four bytes are not `DSXC`.
    BadMagic,
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion(u16),
    /// The declared header length exceeds [`MAX_HEADER_LEN`].
    HeaderTooLarge(usize),
    /// The declared record count exceeds [`MAX_RECORDS`].
    TooManyRecords(usize),
    /// A checksum did not match its region's bytes.
    ChecksumMismatch {
        /// Which guarded region failed (`"header"`, `"record <name>"`,
        /// `"file"`).
        region: String,
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed over the bytes.
        computed: u32,
    },
    /// The header names a dataset this build does not know.
    UnknownDatasetTag(u8),
    /// The header names a convolution-layer kind this build does not know.
    UnknownLayerTag(u8),
    /// The header decoded structurally but describes an impossible model
    /// (bad UTF-8, zero-sized geometry, broken channel chaining, an SCC
    /// config its own validator rejects, ...).
    InvalidSpec(String),
    /// A tensor record's payload failed the wire codec.
    Tensor(WireDecodeError),
    /// The records do not match the model being loaded into (missing or
    /// extra names, shape mismatch, duplicate record).
    TopologyMismatch(String),
    /// Well-formed checkpoint followed by garbage bytes.
    TrailingBytes(usize),
    /// Filesystem failure while reading or writing (message carries the
    /// `std::io::Error` text).
    Io(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Truncated { needed, available } => write!(
                f,
                "truncated checkpoint: needed {needed} more bytes, {available} available"
            ),
            CkptError::BadMagic => f.write_str("not a DSXC checkpoint (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {CKPT_VERSION})"
                )
            }
            CkptError::HeaderTooLarge(len) => {
                write!(
                    f,
                    "header length {len} exceeds the {MAX_HEADER_LEN}-byte cap"
                )
            }
            CkptError::TooManyRecords(n) => {
                write!(f, "record count {n} exceeds the {MAX_RECORDS}-record cap")
            }
            CkptError::ChecksumMismatch {
                region,
                stored,
                computed,
            } => write!(
                f,
                "corrupt {region}: stored crc32 {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::UnknownDatasetTag(t) => write!(f, "unknown dataset tag {t}"),
            CkptError::UnknownLayerTag(t) => write!(f, "unknown layer tag {t}"),
            CkptError::InvalidSpec(why) => write!(f, "invalid model spec: {why}"),
            CkptError::Tensor(e) => write!(f, "bad tensor record: {e}"),
            CkptError::TopologyMismatch(why) => write!(f, "topology mismatch: {why}"),
            CkptError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the checkpoint")
            }
            CkptError::Io(why) => write!(f, "checkpoint i/o failed: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<WireDecodeError> for CkptError {
    fn from(e: WireDecodeError) -> Self {
        CkptError::Tensor(e)
    }
}

/// An in-memory checkpoint: the model's spec plus its named state tensors
/// in visit order.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The architecture the records belong to.
    pub spec: ModelSpec,
    /// `(name, tensor)` state records, in [`Layer::state`] visit order.
    pub records: Vec<(String, Tensor)>,
}

impl Checkpoint {
    /// Snapshots a model's persistent state under its spec.
    pub fn capture(spec: &ModelSpec, model: &dyn Layer) -> Checkpoint {
        let mut records = Vec::new();
        model.state(&mut |name, tensor| records.push((name.to_string(), tensor.clone())));
        Checkpoint {
            spec: spec.clone(),
            records,
        }
    }

    /// Serializes to the versioned byte format described in the module
    /// docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        let header = encode_spec(&self.spec);
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&crc32(&header).to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for (name, tensor) in &self.records {
            let start = out.len();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            tensor.encode_wire(&mut out);
            let record_crc = crc32(&out[start..]);
            out.extend_from_slice(&record_crc.to_le_bytes());
        }
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out
    }

    /// Parses and checksum-verifies a checkpoint. Every failure mode —
    /// truncation at any offset, flipped bits, forged lengths, unknown
    /// versions or tags — returns a typed [`CkptError`].
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], CkptError> {
            let end =
                off.checked_add(n)
                    .filter(|&e| e <= bytes.len())
                    .ok_or(CkptError::Truncated {
                        needed: n,
                        available: bytes.len().saturating_sub(*off),
                    })?;
            let slice = &bytes[*off..end];
            *off = end;
            Ok(slice)
        };
        if take(&mut off, 4)? != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = u16::from_le_bytes(fixed(take(&mut off, 2)?)?);
        if version != CKPT_VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let header_len = u32::from_le_bytes(fixed(take(&mut off, 4)?)?) as usize;
        if header_len > MAX_HEADER_LEN {
            return Err(CkptError::HeaderTooLarge(header_len));
        }
        let header = take(&mut off, header_len)?;
        let stored = u32::from_le_bytes(fixed(take(&mut off, 4)?)?);
        let computed = crc32(header);
        if stored != computed {
            return Err(CkptError::ChecksumMismatch {
                region: "header".into(),
                stored,
                computed,
            });
        }
        let spec = decode_spec(header)?;
        let record_count = u32::from_le_bytes(fixed(take(&mut off, 4)?)?) as usize;
        if record_count > MAX_RECORDS {
            return Err(CkptError::TooManyRecords(record_count));
        }
        let mut records = Vec::with_capacity(record_count.min(1024));
        for _ in 0..record_count {
            let start = off;
            let name_len = u16::from_le_bytes(fixed(take(&mut off, 2)?)?) as usize;
            let name = std::str::from_utf8(take(&mut off, name_len)?)
                .map_err(|_| CkptError::InvalidSpec("record name is not UTF-8".into()))?
                .to_string();
            let (tensor, consumed) = Tensor::decode_wire(&bytes[off..])?;
            off += consumed;
            let computed = crc32(&bytes[start..off]);
            let stored = u32::from_le_bytes(fixed(take(&mut off, 4)?)?);
            if stored != computed {
                return Err(CkptError::ChecksumMismatch {
                    region: format!("record '{name}'"),
                    stored,
                    computed,
                });
            }
            records.push((name, tensor));
        }
        let body_end = off;
        let stored = u32::from_le_bytes(fixed(take(&mut off, 4)?)?);
        if off != bytes.len() {
            return Err(CkptError::TrailingBytes(bytes.len() - off));
        }
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(CkptError::ChecksumMismatch {
                region: "file".into(),
                stored,
                computed,
            });
        }
        Ok(Checkpoint { spec, records })
    }

    /// Writes the encoded checkpoint to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CkptError> {
        std::fs::write(path.as_ref(), self.encode()).map_err(|e| CkptError::Io(e.to_string()))
    }

    /// Reads and decodes a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CkptError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| CkptError::Io(e.to_string()))?;
        Checkpoint::decode(&bytes)
    }

    /// Streams the records into `model`'s state tensors by name. The
    /// record set must cover the model's state exactly — missing, extra or
    /// duplicate names and shape mismatches are [`CkptError::TopologyMismatch`].
    pub fn apply_to(&self, model: &mut dyn Layer) -> Result<(), CkptError> {
        let mut pending: HashMap<&str, &Tensor> = HashMap::with_capacity(self.records.len());
        for (name, tensor) in &self.records {
            if pending.insert(name.as_str(), tensor).is_some() {
                return Err(CkptError::TopologyMismatch(format!(
                    "duplicate record '{name}'"
                )));
            }
        }
        let mut first_error: Option<CkptError> = None;
        model.load_state(&mut |name, slot| {
            if first_error.is_some() {
                return;
            }
            match pending.remove(name) {
                Some(tensor) if tensor.shape() == slot.shape() => *slot = tensor.clone(),
                Some(tensor) => {
                    first_error = Some(CkptError::TopologyMismatch(format!(
                        "record '{name}' has shape {:?}, model expects {:?}",
                        tensor.shape(),
                        slot.shape()
                    )));
                }
                None => {
                    first_error = Some(CkptError::TopologyMismatch(format!(
                        "model state '{name}' has no record in the checkpoint"
                    )));
                }
            }
        });
        if let Some(err) = first_error {
            return Err(err);
        }
        if let Some(extra) = pending.keys().next() {
            return Err(CkptError::TopologyMismatch(format!(
                "record '{extra}' matches no model state ({} unused records)",
                pending.len()
            )));
        }
        Ok(())
    }

    /// Rebuilds the architecture from the embedded spec on `backend` and
    /// loads the records into it: the serve-side half of the round trip.
    /// The spec is validated first ([`validate_spec`]) so a forged header
    /// can neither panic the builder nor force absurd allocations.
    pub fn build_model(&self, backend: BackendKind) -> Result<Sequential, CkptError> {
        validate_spec(&self.spec)?;
        // The seed is irrelevant: every parameter the builder initialises
        // is overwritten by `apply_to` (and `apply_to` errors if any were
        // not covered by records).
        let mut model =
            build_model_with_backend(&self.spec, 0, SccImplementation::Dsxplore, backend);
        self.apply_to(&mut model)?;
        Ok(model)
    }
}

/// Checks a (possibly attacker-supplied) spec against every invariant
/// `build_model_with_backend` asserts, returning [`CkptError`] instead of
/// letting the builder panic: positive geometry, channel chaining between
/// consecutive layers, reachable feature-map sizes for the implicit
/// max-pools, divisible groups, SCC configs its own validator accepts, a
/// classifier wired to the last convolution, and a bounded total parameter
/// count.
pub fn validate_spec(spec: &ModelSpec) -> Result<(), CkptError> {
    let invalid = |why: String| Err(CkptError::InvalidSpec(why));
    if spec.convs.is_empty() {
        return invalid("a model needs at least one convolution".into());
    }
    if spec.classes == 0 || spec.classifier_in == 0 {
        return invalid("classifier geometry must be non-zero".into());
    }
    let mut current_hw = spec.convs[0].in_hw;
    let mut prev_cout = spec.convs[0].cin;
    for (idx, conv) in spec.convs.iter().enumerate() {
        let name = &conv.name;
        if conv.cin == 0 || conv.cout == 0 || conv.in_hw == 0 || conv.stride == 0 {
            return invalid(format!("layer {idx} ({name}): zero-sized geometry"));
        }
        if conv.cin != prev_cout {
            return invalid(format!(
                "layer {idx} ({name}): cin {} does not chain from previous cout {prev_cout}",
                conv.cin
            ));
        }
        // The builder inserts at most 8 halving max-pools to reach in_hw.
        let mut reduce_guard = 0;
        while current_hw > conv.in_hw && reduce_guard < 8 {
            current_hw /= 2;
            reduce_guard += 1;
        }
        if current_hw != conv.in_hw {
            return invalid(format!(
                "layer {idx} ({name}): in_hw {} unreachable from running size {current_hw}",
                conv.in_hw
            ));
        }
        match conv.kind {
            ConvKind::Standard { kernel, groups } => {
                if kernel == 0 || kernel > conv.in_hw * 2 + 1 {
                    return invalid(format!(
                        "layer {idx} ({name}): kernel {kernel} out of range"
                    ));
                }
                if groups == 0 || conv.cin % groups != 0 || conv.cout % groups != 0 {
                    return invalid(format!(
                        "layer {idx} ({name}): {groups} groups do not divide {}->{}",
                        conv.cin, conv.cout
                    ));
                }
            }
            ConvKind::Depthwise { kernel } => {
                if kernel == 0 || kernel > conv.in_hw * 2 + 1 {
                    return invalid(format!(
                        "layer {idx} ({name}): kernel {kernel} out of range"
                    ));
                }
                if conv.cout != conv.cin {
                    return invalid(format!(
                        "layer {idx} ({name}): depthwise requires cout == cin"
                    ));
                }
            }
            ConvKind::Pointwise => {}
            ConvKind::GroupPointwise { cg } => {
                if cg == 0 || conv.cin % cg != 0 || conv.cout % cg != 0 {
                    return invalid(format!(
                        "layer {idx} ({name}): {cg} groups do not divide {}->{}",
                        conv.cin, conv.cout
                    ));
                }
            }
            ConvKind::SlidingChannel { cg, co } => {
                if !co.is_finite() {
                    return invalid(format!("layer {idx} ({name}): non-finite overlap"));
                }
                if let Err(e) = SccConfig::new(conv.cin, conv.cout, cg, co) {
                    return invalid(format!("layer {idx} ({name}): {e}"));
                }
            }
        }
        current_hw = conv.out_hw();
        prev_cout = conv.cout;
    }
    if spec.classifier_in != prev_cout {
        return invalid(format!(
            "classifier_in {} does not match the last convolution's cout {prev_cout}",
            spec.classifier_in
        ));
    }
    let declared = spec.params();
    if declared > MAX_SPEC_PARAMS {
        return invalid(format!(
            "declared parameter count {declared} exceeds the {MAX_SPEC_PARAMS} cap"
        ));
    }
    Ok(())
}

/// A deterministic fingerprint of a model's inference behaviour: CRC-32
/// over the wire encoding of `infer` on a fixed seeded probe input shaped
/// by `spec` (`[1, cin, in_hw, in_hw]` of the first convolution). Two
/// processes printing the same digest ran bit-identical inference — the
/// CI lifecycle gate compares the digest printed after training with the
/// one printed by `dsx-serve --model`.
pub fn model_digest(model: &dyn Layer, spec: &ModelSpec) -> u32 {
    let (cin, hw) = spec
        .convs
        .first()
        .map(|c| (c.cin, c.in_hw))
        .unwrap_or((3, 8));
    let probe = Tensor::randn(&[1, cin, hw, hw], 0xD16E57);
    let output = model.infer(&probe);
    let mut bytes = Vec::with_capacity(output.wire_len());
    output.encode_wire(&mut bytes);
    crc32(&bytes)
}

// ---------------------------------------------------------------------------
// ModelSpec header codec
// ---------------------------------------------------------------------------

const DATASET_CIFAR10: u8 = 0;
const DATASET_IMAGENET: u8 = 1;
const KIND_STANDARD: u8 = 0;
const KIND_DEPTHWISE: u8 = 1;
const KIND_POINTWISE: u8 = 2;
const KIND_GROUP_POINTWISE: u8 = 3;
const KIND_SLIDING_CHANNEL: u8 = 4;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v.min(u32::MAX as usize) as u32).to_le_bytes());
}

/// Serializes a [`ModelSpec`] into the header byte layout.
fn encode_spec(spec: &ModelSpec) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &spec.name);
    out.push(match spec.dataset {
        Dataset::Cifar10 => DATASET_CIFAR10,
        Dataset::ImageNet => DATASET_IMAGENET,
    });
    put_str(&mut out, &spec.scheme_tag);
    put_u32(&mut out, spec.classifier_in);
    put_u32(&mut out, spec.classes);
    put_u32(&mut out, spec.convs.len());
    for conv in &spec.convs {
        put_str(&mut out, &conv.name);
        match conv.kind {
            ConvKind::Standard { kernel, groups } => {
                out.push(KIND_STANDARD);
                put_u32(&mut out, kernel);
                put_u32(&mut out, groups);
            }
            ConvKind::Depthwise { kernel } => {
                out.push(KIND_DEPTHWISE);
                put_u32(&mut out, kernel);
            }
            ConvKind::Pointwise => out.push(KIND_POINTWISE),
            ConvKind::GroupPointwise { cg } => {
                out.push(KIND_GROUP_POINTWISE);
                put_u32(&mut out, cg);
            }
            ConvKind::SlidingChannel { cg, co } => {
                out.push(KIND_SLIDING_CHANNEL);
                put_u32(&mut out, cg);
                out.extend_from_slice(&co.to_bits().to_le_bytes());
            }
        }
        put_u32(&mut out, conv.cin);
        put_u32(&mut out, conv.cout);
        put_u32(&mut out, conv.in_hw);
        put_u32(&mut out, conv.stride);
        out.push(conv.with_bn as u8);
    }
    out
}

/// Parses the header byte layout back into a [`ModelSpec`].
fn decode_spec(bytes: &[u8]) -> Result<ModelSpec, CkptError> {
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8], CkptError> {
        let end = off
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or(CkptError::Truncated {
                needed: n,
                available: bytes.len().saturating_sub(*off),
            })?;
        let slice = &bytes[*off..end];
        *off = end;
        Ok(slice)
    };
    let get_str = |off: &mut usize| -> Result<String, CkptError> {
        let len = u16::from_le_bytes(fixed(take(off, 2)?)?) as usize;
        std::str::from_utf8(take(off, len)?)
            .map(str::to_string)
            .map_err(|_| CkptError::InvalidSpec("header string is not UTF-8".into()))
    };
    let get_u32 = |off: &mut usize| -> Result<usize, CkptError> {
        Ok(u32::from_le_bytes(fixed(take(off, 4)?)?) as usize)
    };
    let name = get_str(&mut off)?;
    let dataset = match take(&mut off, 1)?[0] {
        DATASET_CIFAR10 => Dataset::Cifar10,
        DATASET_IMAGENET => Dataset::ImageNet,
        other => return Err(CkptError::UnknownDatasetTag(other)),
    };
    let scheme_tag = get_str(&mut off)?;
    let classifier_in = get_u32(&mut off)?;
    let classes = get_u32(&mut off)?;
    let conv_count = get_u32(&mut off)?;
    if conv_count > MAX_RECORDS {
        return Err(CkptError::InvalidSpec(format!(
            "{conv_count} convolution layers exceed the {MAX_RECORDS} cap"
        )));
    }
    let mut convs = Vec::with_capacity(conv_count.min(1024));
    for _ in 0..conv_count {
        let layer_name = get_str(&mut off)?;
        let kind = match take(&mut off, 1)?[0] {
            KIND_STANDARD => ConvKind::Standard {
                kernel: get_u32(&mut off)?,
                groups: get_u32(&mut off)?,
            },
            KIND_DEPTHWISE => ConvKind::Depthwise {
                kernel: get_u32(&mut off)?,
            },
            KIND_POINTWISE => ConvKind::Pointwise,
            KIND_GROUP_POINTWISE => ConvKind::GroupPointwise {
                cg: get_u32(&mut off)?,
            },
            KIND_SLIDING_CHANNEL => {
                let cg = get_u32(&mut off)?;
                let co = f64::from_bits(u64::from_le_bytes(fixed(take(&mut off, 8)?)?));
                ConvKind::SlidingChannel { cg, co }
            }
            other => return Err(CkptError::UnknownLayerTag(other)),
        };
        let cin = get_u32(&mut off)?;
        let cout = get_u32(&mut off)?;
        let in_hw = get_u32(&mut off)?;
        let stride = get_u32(&mut off)?;
        let with_bn = match take(&mut off, 1)?[0] {
            0 => false,
            1 => true,
            other => {
                return Err(CkptError::InvalidSpec(format!(
                    "batch-norm flag must be 0 or 1, got {other}"
                )))
            }
        };
        convs.push(ConvLayerSpec {
            name: layer_name,
            kind,
            cin,
            cout,
            in_hw,
            stride,
            with_bn,
        });
    }
    if off != bytes.len() {
        return Err(CkptError::TrailingBytes(bytes.len() - off));
    }
    Ok(ModelSpec {
        name,
        dataset,
        scheme_tag,
        convs,
        classifier_in,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ConvScheme;
    use crate::ModelKind;

    /// A checkpoint-sized model: standard stem + SCC + BN, 8×8 input.
    fn tiny_spec() -> ModelSpec {
        ModelSpec {
            name: "CkptTiny".into(),
            dataset: Dataset::Cifar10,
            scheme_tag: "tiny-scc".into(),
            convs: vec![
                ConvLayerSpec {
                    name: "stem".into(),
                    kind: ConvKind::Standard {
                        kernel: 3,
                        groups: 1,
                    },
                    cin: 3,
                    cout: 8,
                    in_hw: 8,
                    stride: 2,
                    with_bn: true,
                },
                ConvLayerSpec {
                    name: "scc".into(),
                    kind: ConvKind::SlidingChannel { cg: 2, co: 0.5 },
                    cin: 8,
                    cout: 8,
                    in_hw: 4,
                    stride: 1,
                    with_bn: true,
                },
            ],
            classifier_in: 8,
            classes: 10,
        }
    }

    fn tiny_checkpoint() -> Checkpoint {
        let spec = tiny_spec();
        let model =
            build_model_with_backend(&spec, 42, SccImplementation::Dsxplore, BackendKind::Naive);
        Checkpoint::capture(&spec, &model)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let ckpt = tiny_checkpoint();
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn spec_header_round_trips_for_every_zoo_model() {
        for kind in ModelKind::ALL {
            for scheme in [ConvScheme::Origin, ConvScheme::DSXPLORE_DEFAULT] {
                let spec = kind.spec(Dataset::Cifar10, scheme);
                let decoded = decode_spec(&encode_spec(&spec)).unwrap();
                assert_eq!(decoded, spec, "{} [{}]", kind.name(), spec.scheme_tag);
            }
        }
    }

    #[test]
    fn build_model_reproduces_bit_identical_inference() {
        let spec = tiny_spec();
        let src =
            build_model_with_backend(&spec, 42, SccImplementation::Dsxplore, BackendKind::Naive);
        let ckpt = Checkpoint::capture(&spec, &src);
        let bytes = ckpt.encode();
        let loaded = Checkpoint::decode(&bytes).unwrap();
        let model = loaded.build_model(BackendKind::Naive).unwrap();
        assert_eq!(model_digest(&src, &spec), model_digest(&model, &spec));
        let probe = Tensor::randn(&[2, 3, 8, 8], 99);
        assert_eq!(
            src.infer(&probe).as_slice(),
            model.infer(&probe).as_slice(),
            "loaded model must infer bit-identically"
        );
    }

    #[test]
    fn save_load_round_trips_through_a_file() {
        let ckpt = tiny_checkpoint();
        let path = std::env::temp_dir().join(format!("dsx-ckpt-test-{}.ckpt", std::process::id()));
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = Checkpoint::load("/nonexistent/dsx-nope.ckpt").unwrap_err();
        assert!(matches!(err, CkptError::Io(_)), "{err:?}");
    }

    #[test]
    fn bad_magic_and_unknown_version_are_typed() {
        let mut bytes = tiny_checkpoint().encode();
        bytes[0] = b'X';
        assert_eq!(Checkpoint::decode(&bytes).unwrap_err(), CkptError::BadMagic);
        let mut bytes = tiny_checkpoint().encode();
        bytes[4] = 0xFF;
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            CkptError::UnsupportedVersion(u16::from_le_bytes([0xFF, bytes[5]]))
        );
    }

    #[test]
    fn oversize_header_length_is_rejected_before_allocation() {
        let mut bytes = tiny_checkpoint().encode();
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            CkptError::HeaderTooLarge(u32::MAX as usize)
        );
    }

    #[test]
    fn unknown_layer_tag_is_typed() {
        let spec = tiny_spec();
        let mut header = encode_spec(&spec);
        // The first conv's kind tag sits right after its name string.
        let name_end = {
            let mut off = 0usize;
            let skip_str = |off: &mut usize| {
                let len = u16::from_le_bytes([header[*off], header[*off + 1]]) as usize;
                *off += 2 + len;
            };
            skip_str(&mut off); // model name
            off += 1; // dataset tag
            skip_str(&mut off); // scheme tag
            off += 12; // classifier_in, classes, conv count
            skip_str(&mut off); // first conv name
            off
        };
        header[name_end] = 200;
        assert_eq!(
            decode_spec(&header).unwrap_err(),
            CkptError::UnknownLayerTag(200)
        );
    }

    #[test]
    fn flipped_byte_anywhere_is_a_typed_error() {
        let good = tiny_checkpoint().encode();
        // Flip one byte at a spread of offsets across header, records and
        // trailing checksum; every corruption must surface as a typed
        // error, never a panic or a silent success.
        for idx in (0..good.len()).step_by(7).chain([good.len() - 1]) {
            let mut corrupt = good.clone();
            corrupt[idx] ^= 0x40;
            assert!(
                Checkpoint::decode(&corrupt).is_err(),
                "flip at byte {idx} of {} went undetected",
                good.len()
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = tiny_checkpoint().encode();
        bytes.extend_from_slice(&[0xAB; 3]);
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            CkptError::TrailingBytes(3)
        );
    }

    #[test]
    fn topology_mismatches_are_typed() {
        let ckpt = tiny_checkpoint();
        // Extra record.
        let mut extra = ckpt.clone();
        extra
            .records
            .push(("9999.weight".into(), Tensor::zeros(&[1])));
        let err = extra.build_model(BackendKind::Naive).err().unwrap();
        assert!(matches!(err, CkptError::TopologyMismatch(_)), "{err:?}");
        // Missing record.
        let mut missing = ckpt.clone();
        missing.records.pop();
        let err = missing.build_model(BackendKind::Naive).err().unwrap();
        assert!(matches!(err, CkptError::TopologyMismatch(_)), "{err:?}");
        // Shape mismatch.
        let mut reshaped = ckpt.clone();
        reshaped.records[0].1 = Tensor::zeros(&[2, 2]);
        let err = reshaped.build_model(BackendKind::Naive).err().unwrap();
        assert!(matches!(err, CkptError::TopologyMismatch(_)), "{err:?}");
        // Duplicate record.
        let mut dup = ckpt.clone();
        let first = dup.records[0].clone();
        dup.records.push(first);
        let err = dup.build_model(BackendKind::Naive).err().unwrap();
        assert!(matches!(err, CkptError::TopologyMismatch(_)), "{err:?}");
    }

    #[test]
    fn forged_specs_cannot_panic_the_builder() {
        let base = tiny_spec();
        // Broken channel chain.
        let mut chain = base.clone();
        chain.convs[1].cin = 5;
        assert!(matches!(
            validate_spec(&chain),
            Err(CkptError::InvalidSpec(_))
        ));
        // Zero stride would divide by zero in out_hw.
        let mut stride = base.clone();
        stride.convs[0].stride = 0;
        assert!(validate_spec(&stride).is_err());
        // Unreachable feature-map size.
        let mut hw = base.clone();
        hw.convs[1].in_hw = 5;
        assert!(validate_spec(&hw).is_err());
        // An SCC config its own validator rejects.
        let mut scc = base.clone();
        scc.convs[1].kind = ConvKind::SlidingChannel { cg: 7, co: 0.5 };
        assert!(validate_spec(&scc).is_err());
        // Non-finite overlap.
        let mut nan = base.clone();
        nan.convs[1].kind = ConvKind::SlidingChannel {
            cg: 2,
            co: f64::NAN,
        };
        assert!(validate_spec(&nan).is_err());
        // Classifier detached from the last conv.
        let mut cls = base.clone();
        cls.classifier_in = 3;
        assert!(validate_spec(&cls).is_err());
        // Absurd declared parameter count.
        let mut huge = base.clone();
        huge.convs[0].cout = 1 << 18;
        huge.convs[1].cin = 1 << 18;
        huge.convs[1].cout = 1 << 18;
        huge.classifier_in = 1 << 18;
        assert!(validate_spec(&huge).is_err());
        // The real spec passes.
        assert!(validate_spec(&base).is_ok());
    }

    #[test]
    fn buildable_zoo_specs_validate() {
        // The specs the sequential builder supports (same set its own
        // tests construct) must pass the checkpoint-side validator.
        for kind in [ModelKind::Vgg16, ModelKind::MobileNet] {
            for scheme in [ConvScheme::Origin, ConvScheme::DSXPLORE_DEFAULT] {
                let spec = kind.spec(Dataset::Cifar10, scheme).scale_channels(16);
                assert!(
                    validate_spec(&spec).is_ok(),
                    "{} [{}] failed validation: {:?}",
                    kind.name(),
                    spec.scheme_tag,
                    validate_spec(&spec)
                );
            }
        }
    }
}
