//! Analytic model specifications.
//!
//! Every CNN the paper evaluates is described first as a [`ModelSpec`]: a
//! flat list of convolution layers with their shapes, plus a classifier head.
//! From a spec we can
//!
//! * count parameters and multiply-accumulates exactly (the MFLOPs / Param.
//!   columns of Tables II–IV),
//! * instantiate a trainable `dsx-nn` network ([`crate::builder`]), and
//! * feed the per-layer shapes into the GPU cost model (`dsx-gpusim`) to
//!   estimate training-step runtimes at ImageNet scale without running them.

use dsx_core::SccConfig;

/// Which dataset geometry a model is configured for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// 32×32 RGB images, 10 classes.
    Cifar10,
    /// 224×224 RGB images, 1000 classes.
    ImageNet,
}

impl Dataset {
    /// Input spatial size (square).
    pub fn input_size(&self) -> usize {
        match self {
            Dataset::Cifar10 => 32,
            Dataset::ImageNet => 224,
        }
    }

    /// Number of target classes.
    pub fn classes(&self) -> usize {
        match self {
            Dataset::Cifar10 => 10,
            Dataset::ImageNet => 1000,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Cifar10 => "CIFAR-10",
            Dataset::ImageNet => "ImageNet",
        }
    }
}

/// How the channel-fusion work of each convolution is performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvKind {
    /// Standard dense convolution with square kernel and optional groups.
    Standard {
        /// Kernel size.
        kernel: usize,
        /// Channel groups (1 = dense).
        groups: usize,
    },
    /// Depthwise convolution (one filter per channel).
    Depthwise {
        /// Kernel size.
        kernel: usize,
    },
    /// Pointwise (1×1 dense) convolution.
    Pointwise,
    /// Group pointwise convolution.
    GroupPointwise {
        /// Channel groups.
        cg: usize,
    },
    /// Sliding-channel convolution (the paper's SCC).
    SlidingChannel {
        /// Channel groups.
        cg: usize,
        /// Input-channel overlap ratio.
        co: f64,
    },
}

/// One convolution layer of a model, with enough geometry to count its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvLayerSpec {
    /// Human-readable layer name.
    pub name: String,
    /// Operator kind.
    pub kind: ConvKind,
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Input spatial size (square feature map edge).
    pub in_hw: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Whether a batch-norm follows (adds `2 * cout` parameters).
    pub with_bn: bool,
}

impl ConvLayerSpec {
    /// Output spatial size (assumes "same" padding for k>1, none for 1×1).
    pub fn out_hw(&self) -> usize {
        self.in_hw.div_ceil(self.stride)
    }

    /// Weight + bias parameters of the convolution itself (bias only when no
    /// batch norm follows), excluding batch-norm parameters.
    pub fn conv_params(&self) -> usize {
        let weights = match self.kind {
            ConvKind::Standard { kernel, groups } => {
                self.cout * (self.cin / groups) * kernel * kernel
            }
            ConvKind::Depthwise { kernel } => self.cout * kernel * kernel,
            ConvKind::Pointwise => self.cout * self.cin,
            ConvKind::GroupPointwise { cg } => self.cout * (self.cin / cg),
            ConvKind::SlidingChannel { cg, .. } => self.cout * (self.cin / cg),
        };
        let bias = if self.with_bn { 0 } else { self.cout };
        weights + bias
    }

    /// Total parameters including the following batch norm (if any).
    pub fn params(&self) -> usize {
        self.conv_params() + if self.with_bn { 2 * self.cout } else { 0 }
    }

    /// Multiply-accumulates of one forward pass at batch size 1.
    pub fn macs(&self) -> usize {
        let out_hw = self.out_hw();
        let per_output = match self.kind {
            ConvKind::Standard { kernel, groups } => (self.cin / groups) * kernel * kernel,
            ConvKind::Depthwise { kernel } => kernel * kernel,
            ConvKind::Pointwise => self.cin,
            ConvKind::GroupPointwise { cg } => self.cin / cg,
            ConvKind::SlidingChannel { cg, .. } => self.cin / cg,
        };
        self.cout * out_hw * out_hw * per_output
    }

    /// The SCC configuration of this layer, if it is a sliding-channel
    /// convolution.
    pub fn scc_config(&self) -> Option<SccConfig> {
        match self.kind {
            ConvKind::SlidingChannel { cg, co } => {
                // lint: allow(panic) — same contract as the builder:
                // catalog specs are valid, untrusted ones are pre-validated.
                Some(SccConfig::new(self.cin, self.cout, cg, co).expect("invalid SCC layer spec"))
            }
            _ => None,
        }
    }

    /// Whether this layer is a 1×1-style channel-fusion layer (PW/GPW/SCC).
    pub fn is_channel_fusion(&self) -> bool {
        matches!(
            self.kind,
            ConvKind::Pointwise | ConvKind::GroupPointwise { .. } | ConvKind::SlidingChannel { .. }
        )
    }
}

/// An entire model: convolution layers plus one linear classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name, e.g. `VGG16`.
    pub name: String,
    /// Dataset geometry the spec was built for.
    pub dataset: Dataset,
    /// Human-readable scheme tag, e.g. `Origin` or `DW+SCC-cg2-co50%`.
    pub scheme_tag: String,
    /// Convolution layers in execution order.
    pub convs: Vec<ConvLayerSpec>,
    /// Input features of the final linear classifier.
    pub classifier_in: usize,
    /// Number of classes.
    pub classes: usize,
}

impl ModelSpec {
    /// Total trainable parameters (convolutions + batch norms + classifier).
    pub fn params(&self) -> usize {
        let conv: usize = self.convs.iter().map(|c| c.params()).sum();
        conv + self.classifier_in * self.classes + self.classes
    }

    /// Total multiply-accumulates of one forward pass at batch size 1.
    pub fn macs(&self) -> usize {
        let conv: usize = self.convs.iter().map(|c| c.macs()).sum();
        conv + self.classifier_in * self.classes
    }

    /// MFLOPs in the paper's convention (multiply-accumulates, in millions).
    pub fn mflops(&self) -> f64 {
        self.macs() as f64 / 1.0e6
    }

    /// Parameters in millions.
    pub fn params_m(&self) -> f64 {
        self.params() as f64 / 1.0e6
    }

    /// The SCC layers of the model (empty for non-SCC schemes).
    pub fn scc_layers(&self) -> Vec<&ConvLayerSpec> {
        self.convs
            .iter()
            .filter(|c| matches!(c.kind, ConvKind::SlidingChannel { .. }))
            .collect()
    }

    /// The channel-fusion layers (PW / GPW / SCC) of the model — the layers
    /// whose implementation the runtime experiments swap out.
    pub fn channel_fusion_layers(&self) -> Vec<&ConvLayerSpec> {
        self.convs
            .iter()
            .filter(|c| c.is_channel_fusion())
            .collect()
    }

    /// Returns a copy with every channel count divided by `factor` (minimum
    /// of 4 channels and re-rounded to keep group divisibility). Used to
    /// build *trainable* scale models for the laptop-scale accuracy
    /// experiments while keeping the architecture shape.
    pub fn scale_channels(&self, factor: usize) -> ModelSpec {
        assert!(factor >= 1, "factor must be at least 1");
        // One model-wide channel alignment: the chain-repair pass below feeds
        // each layer's output into its successor, so every scaled count must
        // divide by *every* layer's group requirement — aligning per layer
        // lets a depthwise stage (alignment 1, floor 4) strand 4 channels in
        // front of a cg=8 fusion layer.
        let align = self
            .convs
            .iter()
            .map(|c| match c.kind {
                ConvKind::Standard { groups, .. } => groups,
                ConvKind::GroupPointwise { cg } => cg,
                ConvKind::SlidingChannel { cg, .. } => cg,
                _ => 1,
            })
            .fold(1, lcm);
        let scale = |c: usize| -> usize {
            if c <= 3 {
                return c; // input image channels stay
            }
            let scaled = (c / factor).max(align.max(4));
            scaled.div_ceil(align) * align
        };
        let mut convs = Vec::with_capacity(self.convs.len());
        for c in &self.convs {
            let cin = scale(c.cin);
            let cout = scale(c.cout);
            let kind = match c.kind {
                ConvKind::Depthwise { kernel } => ConvKind::Depthwise { kernel },
                other => other,
            };
            convs.push(ConvLayerSpec {
                name: c.name.clone(),
                kind,
                cin,
                cout,
                in_hw: c.in_hw,
                stride: c.stride,
                with_bn: c.with_bn,
            });
        }
        // Fix channel chaining after rounding: each layer's cin must equal
        // the previous producing layer's cout (depthwise keeps cin == cout).
        let mut prev_out = convs.first().map(|c| c.cin).unwrap_or(3);
        for c in convs.iter_mut() {
            c.cin = prev_out;
            if matches!(c.kind, ConvKind::Depthwise { .. }) {
                c.cout = c.cin;
            }
            prev_out = c.cout;
        }
        ModelSpec {
            name: format!("{}/{}x", self.name, factor),
            dataset: self.dataset,
            scheme_tag: self.scheme_tag.clone(),
            convs,
            classifier_in: prev_out,
            classes: self.classes,
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(kind: ConvKind, cin: usize, cout: usize, hw: usize, stride: usize) -> ConvLayerSpec {
        ConvLayerSpec {
            name: "l".into(),
            kind,
            cin,
            cout,
            in_hw: hw,
            stride,
            with_bn: true,
        }
    }

    #[test]
    fn standard_conv_costs_match_closed_form() {
        let l = layer(
            ConvKind::Standard {
                kernel: 3,
                groups: 1,
            },
            64,
            128,
            32,
            1,
        );
        assert_eq!(l.params(), 128 * 64 * 9 + 256);
        assert_eq!(l.macs(), 128 * 32 * 32 * 64 * 9);
        assert_eq!(l.out_hw(), 32);
    }

    #[test]
    fn strided_conv_halves_output() {
        let l = layer(
            ConvKind::Standard {
                kernel: 3,
                groups: 1,
            },
            64,
            64,
            32,
            2,
        );
        assert_eq!(l.out_hw(), 16);
        assert_eq!(l.macs(), 64 * 16 * 16 * 64 * 9);
    }

    #[test]
    fn dsc_reduction_matches_paper_formula() {
        // DSC (DW + PW) cost relative to a standard KxK conv is
        // 1/Cout + 1/K^2 (paper §II-B).
        let (cin, cout, k, hw) = (128usize, 256usize, 3usize, 28usize);
        let std = layer(
            ConvKind::Standard {
                kernel: k,
                groups: 1,
            },
            cin,
            cout,
            hw,
            1,
        );
        let dw = layer(ConvKind::Depthwise { kernel: k }, cin, cin, hw, 1);
        let pw = layer(ConvKind::Pointwise, cin, cout, hw, 1);
        let ratio = (dw.macs() + pw.macs()) as f64 / std.macs() as f64;
        let expected = 1.0 / cout as f64 + 1.0 / (k * k) as f64;
        assert!((ratio - expected).abs() < 1e-9);
    }

    #[test]
    fn scc_and_gpw_have_identical_analytic_cost() {
        let gpw = layer(ConvKind::GroupPointwise { cg: 4 }, 64, 128, 16, 1);
        let scc = layer(ConvKind::SlidingChannel { cg: 4, co: 0.5 }, 64, 128, 16, 1);
        assert_eq!(gpw.params(), scc.params());
        assert_eq!(gpw.macs(), scc.macs());
        // And both are 1/cg of the pointwise cost.
        let pw = layer(ConvKind::Pointwise, 64, 128, 16, 1);
        assert_eq!(pw.macs(), 4 * scc.macs());
    }

    #[test]
    fn scc_config_extraction() {
        let l = layer(ConvKind::SlidingChannel { cg: 2, co: 0.5 }, 64, 128, 16, 1);
        let cfg = l.scc_config().unwrap();
        assert_eq!(cfg.group_width(), 32);
        assert!(layer(ConvKind::Pointwise, 4, 4, 4, 1)
            .scc_config()
            .is_none());
    }

    #[test]
    fn model_totals_sum_layers_and_classifier() {
        let spec = ModelSpec {
            name: "tiny".into(),
            dataset: Dataset::Cifar10,
            scheme_tag: "Origin".into(),
            convs: vec![
                layer(
                    ConvKind::Standard {
                        kernel: 3,
                        groups: 1,
                    },
                    3,
                    8,
                    32,
                    1,
                ),
                layer(ConvKind::Pointwise, 8, 16, 32, 1),
            ],
            classifier_in: 16,
            classes: 10,
        };
        let conv_params: usize = spec.convs.iter().map(|c| c.params()).sum();
        assert_eq!(spec.params(), conv_params + 16 * 10 + 10);
        assert!(spec.mflops() > 0.0);
        assert_eq!(spec.channel_fusion_layers().len(), 1);
    }

    #[test]
    fn scale_channels_keeps_architecture_consistent() {
        let spec = ModelSpec {
            name: "m".into(),
            dataset: Dataset::Cifar10,
            scheme_tag: "DW+SCC-cg2-co50%".into(),
            convs: vec![
                layer(
                    ConvKind::Standard {
                        kernel: 3,
                        groups: 1,
                    },
                    3,
                    64,
                    32,
                    1,
                ),
                layer(ConvKind::Depthwise { kernel: 3 }, 64, 64, 32, 1),
                layer(ConvKind::SlidingChannel { cg: 2, co: 0.5 }, 64, 128, 32, 1),
            ],
            classifier_in: 128,
            classes: 10,
        };
        let small = spec.scale_channels(8);
        assert!(small.params() < spec.params());
        // Chaining: every layer's input channels equal the previous output.
        let mut prev = small.convs[0].cin;
        for c in &small.convs {
            assert_eq!(c.cin, prev);
            prev = c.cout;
        }
        assert_eq!(small.classifier_in, prev);
        // Groups still divide channels.
        for c in &small.convs {
            if let ConvKind::SlidingChannel { cg, .. } = c.kind {
                assert_eq!(c.cin % cg, 0);
            }
        }
    }

    /// Regression test for the PR 1 `--train`-path crash: channel scaling
    /// used to round each layer independently, so a depthwise stage (group
    /// requirement 1, floor 4) could hand 4 channels to a following cg=8
    /// fusion layer, which panics at construction. The fix aligns the whole
    /// model to the LCM of every layer's group requirement.
    #[test]
    fn scale_channels_aligns_model_wide_to_the_lcm_of_group_requirements() {
        let spec = ModelSpec {
            name: "lcm-regression".into(),
            dataset: Dataset::Cifar10,
            scheme_tag: "DW+SCC-cg8".into(),
            convs: vec![
                layer(
                    ConvKind::Standard {
                        kernel: 3,
                        groups: 1,
                    },
                    3,
                    64,
                    32,
                    1,
                ),
                // Depthwise alone would clamp to 4 channels under factor 16…
                layer(ConvKind::Depthwise { kernel: 3 }, 64, 64, 32, 1),
                // …which an eight-group sliding-channel stage cannot accept.
                layer(ConvKind::SlidingChannel { cg: 8, co: 0.5 }, 64, 128, 32, 1),
                // A GPW stage with a different group count joins the LCM.
                layer(ConvKind::GroupPointwise { cg: 4 }, 128, 128, 32, 1),
            ],
            classifier_in: 128,
            classes: 10,
        };
        for factor in [4, 8, 16, 64] {
            let small = spec.scale_channels(factor);
            for c in &small.convs {
                if c.cin > 3 {
                    assert_eq!(
                        c.cin % 8,
                        0,
                        "factor {factor}: layer {} got {} input channels, not a multiple \
                         of the model-wide alignment",
                        c.name,
                        c.cin
                    );
                }
            }
            // The SCC config of the scaled spec must construct (this is the
            // exact call that crashed before the LCM fix)…
            for scc in small.scc_layers() {
                scc.scc_config().expect("scaled SCC layer must be valid");
            }
            // …and the whole model must build and run a forward pass.
            let mut model = crate::builder::build_model(&small, 3);
            let out = dsx_nn::Layer::forward(
                &mut model,
                &dsx_tensor::Tensor::randn(&[1, 3, 32, 32], 1),
                true,
            );
            assert_eq!(out.shape(), &[1, 10], "factor {factor}");
        }
    }

    #[test]
    fn dataset_geometry() {
        assert_eq!(Dataset::Cifar10.input_size(), 32);
        assert_eq!(Dataset::ImageNet.classes(), 1000);
        assert_eq!(Dataset::Cifar10.name(), "CIFAR-10");
    }
}
