//! Instantiates trainable `dsx-nn` networks from [`ModelSpec`]s.
//!
//! The builder produces a flat [`Sequential`] network: convolution entries
//! become convolution + batch-norm + ReLU triples, spatial reductions that
//! the spec expresses implicitly (VGG's max-pools) are inserted where the
//! feature-map size shrinks without a stride, and a global-average-pool +
//! linear classifier closes the model. Residual connections are not
//! materialised (the spec is a flat list); for the laptop-scale accuracy
//! experiments this changes ResNet into its "plain" counterpart, which is
//! documented in EXPERIMENTS.md and does not affect the FLOP/parameter
//! accounting.

use crate::spec::{ConvKind, ModelSpec};
use dsx_core::{BackendKind, SccConfig, SccImplementation};
use dsx_nn::{
    BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2d, ReLU, SccConv2d, Sequential,
};
use dsx_tensor::init::derive_seed;

/// Builds a trainable network from a model spec using the DSXplore kernel for
/// every SCC layer (on the process-default kernel backend).
pub fn build_model(spec: &ModelSpec, seed: u64) -> Sequential {
    build_model_with(spec, seed, SccImplementation::Dsxplore)
}

/// Builds a trainable network, selecting the implementation used by the SCC
/// layers (so the runtime experiments can train the same architecture under
/// Pytorch-Base / Pytorch-Opt / DSXplore kernels). SCC layers run on the
/// process-default kernel backend.
pub fn build_model_with(
    spec: &ModelSpec,
    seed: u64,
    scc_implementation: SccImplementation,
) -> Sequential {
    build_model_with_backend(spec, seed, scc_implementation, dsx_core::default_backend())
}

/// Builds a trainable network with explicit implementation *and* kernel
/// backend choices (the perf experiments compare the substrates on
/// identical architectures). The backend applies to every convolution in
/// the model: SCC layers pick their `dsx-core` kernel backend and the
/// dense `Conv2d` layers pick the matching GEMM / sliding-window-sum path.
pub fn build_model_with_backend(
    spec: &ModelSpec,
    seed: u64,
    scc_implementation: SccImplementation,
    backend: BackendKind,
) -> Sequential {
    let mut net = Sequential::new(format!("{} [{}]", spec.name, spec.scheme_tag));
    let mut current_hw = spec
        .convs
        .first()
        .map(|c| c.in_hw)
        .unwrap_or(spec.dataset.input_size());

    for (idx, conv) in spec.convs.iter().enumerate() {
        // Insert max-pools wherever the spec's feature map shrinks without a
        // stride (VGG stages, the ImageNet ResNet stem pool).
        let mut reduce_guard = 0;
        while current_hw > conv.in_hw && reduce_guard < 8 {
            net.push_boxed(Box::new(MaxPool2d::new(2, 2)));
            current_hw /= 2;
            reduce_guard += 1;
        }
        assert_eq!(
            current_hw, conv.in_hw,
            "layer {idx} ({}) expects {}x{} input but the running size is {}",
            conv.name, conv.in_hw, conv.in_hw, current_hw
        );

        let layer_seed = derive_seed(seed, idx as u64);
        let layer: Box<dyn Layer> = match conv.kind {
            ConvKind::Standard { kernel, groups } => Box::new(
                Conv2d::grouped(
                    conv.cin,
                    conv.cout,
                    kernel,
                    conv.stride,
                    kernel / 2,
                    groups,
                    layer_seed,
                )
                .without_bias()
                .with_backend(backend),
            ),
            ConvKind::Depthwise { kernel } => Box::new(
                Conv2d::depthwise(conv.cin, kernel, conv.stride, kernel / 2, layer_seed)
                    .without_bias()
                    .with_backend(backend),
            ),
            ConvKind::Pointwise => Box::new(
                Conv2d::pointwise(conv.cin, conv.cout, layer_seed)
                    .without_bias()
                    .with_backend(backend),
            ),
            ConvKind::GroupPointwise { cg } => Box::new(
                Conv2d::group_pointwise(conv.cin, conv.cout, cg, layer_seed)
                    .without_bias()
                    .with_backend(backend),
            ),
            ConvKind::SlidingChannel { cg, co } => {
                let cfg = SccConfig::new(conv.cin, conv.cout, cg, co)
                    // lint: allow(panic) — documented builder contract;
                    // untrusted specs go through `Checkpoint::build_model`,
                    // which validates before calling here.
                    .unwrap_or_else(|e| panic!("invalid SCC layer {}: {e}", conv.name));
                let scc = SccConv2d::with_implementation(cfg, layer_seed, scc_implementation)
                    .with_backend(backend);
                Box::new(if conv.with_bn {
                    scc.without_bias()
                } else {
                    scc
                })
            }
        };
        net.push_boxed(layer);
        if conv.with_bn {
            net.push_boxed(Box::new(BatchNorm2d::new(conv.cout)));
        }
        net.push_boxed(Box::new(ReLU::new()));
        current_hw = conv.out_hw();
    }

    net.push_boxed(Box::new(GlobalAvgPool::new()));
    net.push_boxed(Box::new(Linear::new(
        spec.classifier_in,
        spec.classes,
        derive_seed(seed, 10_000),
    )));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ConvScheme;
    use crate::spec::Dataset;
    use crate::{mobilenet, vgg16};
    use dsx_tensor::Tensor;

    #[test]
    fn built_model_params_match_spec_params() {
        for scheme in [ConvScheme::Origin, ConvScheme::DSXPLORE_DEFAULT] {
            let spec = vgg16(Dataset::Cifar10, scheme).scale_channels(8);
            let mut model = build_model(&spec, 1);
            assert_eq!(
                model.num_params(),
                spec.params(),
                "params mismatch for {}",
                spec.scheme_tag
            );
        }
    }

    #[test]
    fn built_model_macs_match_spec_macs() {
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT).scale_channels(8);
        let model = build_model(&spec, 2);
        let input_shape = [1usize, 3, 32, 32];
        assert_eq!(model.forward_macs(&input_shape), spec.macs());
    }

    #[test]
    fn built_vgg_forward_produces_class_logits() {
        let spec = vgg16(Dataset::Cifar10, ConvScheme::Origin).scale_channels(16);
        let mut model = build_model(&spec, 3);
        let out = model.forward(&Tensor::randn(&[2, 3, 32, 32], 1), true);
        assert_eq!(out.shape(), &[2, 10]);
    }

    #[test]
    fn built_scc_mobilenet_trains_one_step() {
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT).scale_channels(8);
        let mut model = build_model(&spec, 4);
        let images = Tensor::randn(&[4, 3, 32, 32], 2);
        let labels = vec![0usize, 1, 2, 3];
        let loss_fn = dsx_nn::CrossEntropyLoss::new();
        let mut sgd = dsx_nn::Sgd::new(0.01);
        let batch = dsx_nn::Batch::new(images, labels);
        let m1 = dsx_nn::train_step(&mut model, &mut sgd, &loss_fn, &batch);
        let m2 = dsx_nn::train_step(&mut model, &mut sgd, &loss_fn, &batch);
        assert!(
            m2.loss <= m1.loss * 1.5,
            "loss exploded: {} -> {}",
            m1.loss,
            m2.loss
        );
        assert!(m1.loss.is_finite() && m2.loss.is_finite());
    }

    #[test]
    fn implementation_choice_does_not_change_outputs() {
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT).scale_channels(16);
        let input = Tensor::randn(&[1, 3, 32, 32], 5);
        let mut reference = build_model_with(&spec, 7, SccImplementation::Dsxplore);
        let expected = reference.forward(&input, false);
        for implementation in [
            SccImplementation::PytorchBase,
            SccImplementation::PytorchOpt,
        ] {
            let mut model = build_model_with(&spec, 7, implementation);
            let out = model.forward(&input, false);
            assert!(dsx_tensor::allclose(&out, &expected, 1e-3));
        }
    }

    #[test]
    fn backend_choice_does_not_change_outputs() {
        let spec = mobilenet(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT).scale_channels(16);
        let input = Tensor::randn(&[1, 3, 32, 32], 9);
        let mut naive = build_model_with_backend(
            &spec,
            7,
            SccImplementation::Dsxplore,
            dsx_core::BackendKind::Naive,
        );
        let expected = naive.forward(&input, false);
        for backend in [
            dsx_core::BackendKind::Blocked,
            dsx_core::BackendKind::Tiled,
            dsx_core::BackendKind::Swsum,
        ] {
            let mut model =
                build_model_with_backend(&spec, 7, SccImplementation::Dsxplore, backend);
            let out = model.forward(&input, false);
            assert!(
                dsx_tensor::allclose(&out, &expected, 1e-3),
                "backend {backend} diverges from naive"
            );
        }
    }

    #[test]
    fn pools_are_inserted_for_vgg_stages() {
        let spec = vgg16(Dataset::Cifar10, ConvScheme::Origin).scale_channels(16);
        let mut model = build_model(&spec, 8);
        // The summary must show shrinking spatial dimensions down to 2x2.
        let rows = model.summary(&[1, 3, 32, 32]);
        let last_conv_row = rows
            .iter()
            .rev()
            .find(|r| r.output_shape.len() == 4)
            .unwrap();
        assert_eq!(last_conv_row.output_shape[2], 2);
    }
}
