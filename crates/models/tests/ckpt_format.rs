//! Checkpoint format gates.
//!
//! Two jobs: (1) **format stability** — a golden v1 checkpoint committed
//! under `tests/fixtures/` must keep loading on every future commit, so any
//! byte-layout change forces a version bump plus a migration path in the
//! same PR; (2) **hostile input** — property tests over truncations and
//! corruptions mirror the `dsx_net::protocol` suite: typed errors always,
//! panics never.

use dsx_core::{BackendKind, SccImplementation};
use dsx_models::ckpt::MAX_HEADER_LEN;
use dsx_models::{
    build_model_with_backend, model_digest, Checkpoint, CkptError, ConvKind, ConvLayerSpec,
    Dataset, ModelSpec,
};
use dsx_nn::Layer;
use dsx_tensor::Tensor;
use proptest::prelude::*;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden-v1.ckpt");

/// The architecture frozen into the golden fixture. Do not edit: the
/// fixture bytes on disk encode exactly this spec.
fn golden_spec() -> ModelSpec {
    ModelSpec {
        name: "GoldenV1".into(),
        dataset: Dataset::Cifar10,
        scheme_tag: "golden-scc".into(),
        convs: vec![
            ConvLayerSpec {
                name: "stem".into(),
                kind: ConvKind::Standard {
                    kernel: 3,
                    groups: 1,
                },
                cin: 3,
                cout: 8,
                in_hw: 8,
                stride: 2,
                with_bn: true,
            },
            ConvLayerSpec {
                name: "scc".into(),
                kind: ConvKind::SlidingChannel { cg: 2, co: 0.5 },
                cin: 8,
                cout: 8,
                in_hw: 4,
                stride: 1,
                with_bn: true,
            },
        ],
        classifier_in: 8,
        classes: 10,
    }
}

fn golden_checkpoint() -> Checkpoint {
    let spec = golden_spec();
    let model =
        build_model_with_backend(&spec, 1234, SccImplementation::Dsxplore, BackendKind::Naive);
    Checkpoint::capture(&spec, &model)
}

/// Regenerates the committed fixture. Run only when the format version is
/// deliberately bumped: `cargo test -p dsx-models -- --ignored regenerate`.
#[test]
#[ignore = "writes the golden fixture; run manually on a format bump"]
fn regenerate_golden_fixture() {
    golden_checkpoint().save(GOLDEN_PATH).unwrap();
}

/// The format-stability gate: current code must keep reading the fixture
/// byte-for-byte, rebuild its model, and produce finite logits.
#[test]
fn golden_v1_fixture_still_loads() {
    let ckpt = Checkpoint::load(GOLDEN_PATH).expect(
        "the committed golden-v1 fixture no longer decodes — a format change \
         requires a version bump and a migration path in the same PR",
    );
    assert_eq!(ckpt.spec, golden_spec());
    let model = ckpt.build_model(BackendKind::Naive).unwrap();
    let out = model.infer(&Tensor::randn(&[2, 3, 8, 8], 7));
    assert_eq!(out.shape(), &[2, 10]);
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}

/// The fixture is bit-stable: re-encoding the decoded checkpoint must
/// reproduce the committed bytes exactly.
#[test]
fn golden_v1_fixture_reencodes_byte_identically() {
    let bytes = std::fs::read(GOLDEN_PATH).unwrap();
    let ckpt = Checkpoint::decode(&bytes).unwrap();
    assert_eq!(ckpt.encode(), bytes);
}

/// The round-trip guarantee behind `dsx-serve --model`: on every kernel
/// backend, save → load → rebuild infers bit-identically to the source
/// model.
#[test]
fn round_trip_is_bit_identical_on_all_backends() {
    let spec = golden_spec();
    let probe = Tensor::randn(&[3, 3, 8, 8], 11);
    for backend in BackendKind::ALL {
        let src = build_model_with_backend(&spec, 42, SccImplementation::Dsxplore, backend);
        let ckpt = Checkpoint::capture(&spec, &src);
        let loaded = Checkpoint::decode(&ckpt.encode()).unwrap();
        let rebuilt = loaded.build_model(backend).unwrap();
        assert_eq!(
            src.infer(&probe).as_slice(),
            rebuilt.infer(&probe).as_slice(),
            "round trip drifted on {backend:?}"
        );
        assert_eq!(
            model_digest(&src, &spec),
            model_digest(&rebuilt, &spec),
            "digest drifted on {backend:?}"
        );
    }
}

/// Property-test case count: full natively, minimal under Miri or
/// `DSX_TEST_FAST` (sanitizer/interpreter runs need the coverage, not
/// the volume).
fn prop_cases(full: u32) -> u32 {
    if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
        2
    } else {
        full
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(64)))]

    /// Truncation at *any* offset — including every record boundary — is a
    /// typed error, never a panic or a false success.
    #[test]
    fn truncation_at_any_offset_is_a_typed_error(raw_cut in 0usize..1 << 20) {
        let bytes = golden_checkpoint().encode();
        let cut = raw_cut % bytes.len();
        let err = Checkpoint::decode(&bytes[..cut]);
        prop_assert!(err.is_err(), "truncation to {} bytes decoded successfully", cut);
    }

    /// Flipping any single bit is detected (by magic/version/structure
    /// checks or by one of the CRCs).
    #[test]
    fn flipped_bit_at_any_offset_is_detected(raw_idx in 0usize..1 << 20, bit in 0usize..8) {
        let mut bytes = golden_checkpoint().encode();
        let idx = raw_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            Checkpoint::decode(&bytes).is_err(),
            "flipping bit {} of byte {} went undetected",
            bit,
            idx
        );
    }

    /// Forged header lengths either hit the cap or fail a later check;
    /// none of them panic or over-allocate.
    #[test]
    fn forged_header_lengths_are_rejected(len in 0u32..u32::MAX) {
        let mut bytes = golden_checkpoint().encode();
        bytes[6..10].copy_from_slice(&len.to_le_bytes());
        match Checkpoint::decode(&bytes) {
            Ok(_) => prop_assert!(false, "forged header length {len} decoded"),
            Err(CkptError::HeaderTooLarge(l)) => {
                prop_assert!(l > MAX_HEADER_LEN);
            }
            Err(_) => {}
        }
    }
}

/// Truncating exactly at each structural boundary exercises every
/// `Truncated` site deterministically (the proptest above covers the rest
/// of the offsets).
#[test]
fn truncation_at_structural_boundaries() {
    let ckpt = golden_checkpoint();
    let bytes = ckpt.encode();
    // magic end, version end, header_len end, header end, header_crc end,
    // record_count end, then each record end, then just before file_crc.
    let header_len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let mut boundaries = vec![
        0,
        4,
        6,
        10,
        10 + header_len,
        14 + header_len,
        18 + header_len,
    ];
    let mut off = 18 + header_len;
    for (name, tensor) in &ckpt.records {
        off += 2 + name.len() + tensor.wire_len() + 4;
        boundaries.push(off);
    }
    boundaries.push(bytes.len() - 1);
    for cut in boundaries {
        assert!(cut < bytes.len(), "boundary {cut} out of range");
        assert!(
            Checkpoint::decode(&bytes[..cut]).is_err(),
            "truncation at structural boundary {cut} decoded successfully"
        );
    }
}

/// An unknown layer-kind tag in the header surfaces as
/// [`CkptError::UnknownLayerTag`], giving old builds a clean error on new
/// layer types instead of garbage.
#[test]
fn unknown_layer_tag_is_typed_at_the_file_level() {
    let mut spec = golden_spec();
    // Encode with a valid kind, then corrupt the tag in-place and re-seal
    // the checksums so only the tag is "wrong".
    spec.convs.truncate(1);
    spec.convs[0].kind = ConvKind::Pointwise;
    spec.convs[0].cin = 3;
    spec.convs[0].cout = 8;
    spec.classifier_in = 8;
    let ckpt = Checkpoint {
        spec,
        records: vec![("0.weight".into(), Tensor::zeros(&[8, 3, 1, 1]))],
    };
    let mut bytes = ckpt.encode();
    // Header layout: name str | dataset u8 | scheme str | 3×u32 | conv name
    // str | kind tag. Find the Pointwise tag (2) and replace it with 250.
    let header_start = 10;
    let header_len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let mut off = header_start;
    let skip_str = |bytes: &[u8], off: &mut usize| {
        let len = u16::from_le_bytes([bytes[*off], bytes[*off + 1]]) as usize;
        *off += 2 + len;
    };
    skip_str(&bytes, &mut off); // model name
    off += 1; // dataset
    skip_str(&bytes, &mut off); // scheme tag
    off += 12; // classifier_in, classes, conv count
    skip_str(&bytes, &mut off); // conv name
    assert_eq!(bytes[off], 2, "expected the Pointwise tag here");
    bytes[off] = 250;
    // Re-seal header crc and file crc so the tag is the only problem.
    let header_crc = dsx_tensor::crc32(&bytes[header_start..header_start + header_len]);
    let crc_pos = header_start + header_len;
    bytes[crc_pos..crc_pos + 4].copy_from_slice(&header_crc.to_le_bytes());
    let body_end = bytes.len() - 4;
    let file_crc = dsx_tensor::crc32(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&file_crc.to_le_bytes());
    assert_eq!(
        Checkpoint::decode(&bytes).err().unwrap(),
        CkptError::UnknownLayerTag(250)
    );
}

/// Same re-seal trick for an unknown format version: the loader refuses it
/// by version check alone.
#[test]
fn future_version_is_refused_cleanly() {
    let mut bytes = golden_checkpoint().encode();
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    let body_end = bytes.len() - 4;
    let file_crc = dsx_tensor::crc32(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&file_crc.to_le_bytes());
    assert_eq!(
        Checkpoint::decode(&bytes).err().unwrap(),
        CkptError::UnsupportedVersion(99)
    );
}
