//! GPU machine models.
//!
//! The paper measures on a Tesla V100 (5120 CUDA cores, 32 GB HBM2, 15.7
//! TFLOPS single precision). [`GpuModel::v100`] encodes those published
//! specifications plus a small number of empirical constants (kernel-launch
//! overhead, achievable efficiency of library vs hand-written kernels, atomic
//! conflict cost) that determine the *relative* performance of the four SCC
//! implementations. The constants are deliberately coarse — the goal is to
//! reproduce who wins and by roughly how much, not absolute microseconds.

/// Parameters of a GPU-like device used by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Human-readable name.
    pub name: String,
    /// Peak single-precision throughput in TFLOP/s.
    pub peak_tflops: f64,
    /// HBM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Overhead of launching one kernel / framework operator, in microseconds
    /// (CUDA launch latency plus framework dispatch).
    pub kernel_launch_overhead_us: f64,
    /// Relative throughput loss of a kernel whose arithmetic is dominated by
    /// atomic read-modify-write updates: a kernel in which every
    /// multiply-accumulate is followed by an atomicAdd runs
    /// `1 + atomic_slowdown` times slower than its atomic-free counterpart.
    /// Calibrated against the paper's 1.55× DSXplore-vs-DSXplore-Var backward
    /// gap (Fig. 9).
    pub atomic_slowdown: f64,
    /// Fraction of peak FLOPs that library kernels (cuDNN / cuBLAS) achieve
    /// on convolution-sized problems.
    pub library_efficiency: f64,
    /// Fraction of peak FLOPs that the hand-written SCC kernels achieve
    /// (lower: no tensor cores, skewed GEMM shapes — paper §III-B).
    pub custom_kernel_efficiency: f64,
    /// Device memory in GiB (used for the out-of-memory checks of §V-C).
    pub memory_gib: f64,
    /// Inter-device (NVLink-like) bandwidth for gradient all-reduce, GB/s.
    pub interconnect_gbps: f64,
    /// Per-message latency of one all-reduce step, in microseconds.
    pub allreduce_latency_us: f64,
}

impl GpuModel {
    /// A Tesla V100-like device (the paper's evaluation platform).
    pub fn v100() -> Self {
        GpuModel {
            name: "Tesla V100 (32GB)".to_string(),
            peak_tflops: 15.7,
            mem_bandwidth_gbps: 900.0,
            sm_count: 80,
            max_threads_per_sm: 2048,
            kernel_launch_overhead_us: 3.0,
            atomic_slowdown: 0.55,
            library_efficiency: 0.55,
            custom_kernel_efficiency: 0.10,
            memory_gib: 32.0,
            interconnect_gbps: 150.0,
            allreduce_latency_us: 20.0,
        }
    }

    /// Peak FLOP/s as a plain number.
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }

    /// Memory bandwidth in bytes/s.
    pub fn bandwidth_bytes(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9
    }

    /// Kernel launch overhead in seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.kernel_launch_overhead_us * 1e-6
    }

    /// Multiplicative slowdown of a kernel whose ratio of atomic updates to
    /// multiply-accumulates is `atomic_density` (1.0 = one atomic per MAC).
    pub fn atomic_penalty(&self, atomic_density: f64) -> f64 {
        1.0 + self.atomic_slowdown * atomic_density.max(0.0)
    }

    /// Device memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.memory_gib * 1024.0 * 1024.0 * 1024.0) as usize
    }

    /// Total resident threads the device can keep in flight.
    pub fn max_resident_threads(&self) -> usize {
        self.sm_count * self.max_threads_per_sm
    }

    /// Occupancy factor in `(0, 1]` for a kernel that launches `threads`
    /// logical threads: kernels too small to fill the device pay a
    /// proportional utilisation penalty (this produces the batch-size knee of
    /// Fig. 13).
    pub fn occupancy(&self, threads: usize) -> f64 {
        if threads == 0 {
            return 1.0;
        }
        let ratio = threads as f64 / self.max_resident_threads() as f64;
        ratio.clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_published_specs() {
        let gpu = GpuModel::v100();
        assert_eq!(gpu.sm_count, 80);
        assert!((gpu.peak_tflops - 15.7).abs() < 1e-9);
        assert_eq!(gpu.memory_bytes(), 32 * 1024 * 1024 * 1024);
        assert_eq!(gpu.max_resident_threads(), 80 * 2048);
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let gpu = GpuModel::v100();
        assert!((gpu.occupancy(10_000_000) - 1.0).abs() < 1e-9);
        assert!(gpu.occupancy(1000) < 0.1);
        assert!(gpu.occupancy(0) == 1.0);
        // Monotone in thread count until saturation.
        assert!(gpu.occupancy(50_000) < gpu.occupancy(100_000));
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let gpu = GpuModel::v100();
        assert!((gpu.peak_flops() - 15.7e12).abs() < 1e6);
        assert!((gpu.bandwidth_bytes() - 900e9).abs() < 1e3);
        assert!((gpu.launch_overhead_s() - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn atomic_penalty_grows_with_density() {
        let gpu = GpuModel::v100();
        assert!((gpu.atomic_penalty(0.0) - 1.0).abs() < 1e-12);
        assert!(gpu.atomic_penalty(1.0) > 1.3 && gpu.atomic_penalty(1.0) < 2.0);
        assert!(gpu.atomic_penalty(2.0) > gpu.atomic_penalty(1.0));
    }

    #[test]
    fn library_kernels_are_modelled_faster_than_custom() {
        let gpu = GpuModel::v100();
        assert!(gpu.library_efficiency > gpu.custom_kernel_efficiency);
    }
}
