//! Kernel-level cost model: converts an [`OpProfile`] (threads, MACs, bytes,
//! launches, atomics) into an estimated execution time on a [`GpuModel`].
//!
//! The model is a standard roofline-plus-overheads decomposition:
//!
//! ```text
//! time = launches * launch_overhead
//!      + max(compute_time, memory_time)      (overlapping compute & HBM)
//!      + atomic_extra_time                   (throughput lost to atomics)
//! ```
//!
//! where `compute_time` is scaled by the achievable efficiency of the kernel
//! class (library vs hand-written) and by the occupancy the launch reaches,
//! and `atomic_extra_time` models the throughput degradation of kernels whose
//! arithmetic is interleaved with atomic read-modify-write updates (the
//! output-centric backward of Fig. 9): the denser the atomics relative to the
//! MACs, the larger the slowdown.

use crate::machine::GpuModel;
use dsx_core::OpProfile;

/// Breakdown of one kernel-pass estimate, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Kernel/operator launch overheads.
    pub launch_s: f64,
    /// Arithmetic time after efficiency and occupancy scaling.
    pub compute_s: f64,
    /// HBM traffic time (materialised + moved bytes).
    pub memory_s: f64,
    /// Extra time lost to atomic-update serialisation.
    pub atomic_s: f64,
}

impl TimeBreakdown {
    /// Total modelled time: launches + max(compute, memory) + atomics.
    pub fn total(&self) -> f64 {
        self.launch_s + self.compute_s.max(self.memory_s) + self.atomic_s
    }

    /// Elementwise sum (for accumulating layers).
    pub fn add(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            launch_s: self.launch_s + other.launch_s,
            compute_s: self.compute_s + other.compute_s,
            memory_s: self.memory_s + other.memory_s,
            atomic_s: self.atomic_s + other.atomic_s,
        }
    }
}

/// Estimates the execution time of one kernel pass described by `profile`.
///
/// Profiles with `threads > 0` are treated as hand-written (custom) kernels
/// and use the custom efficiency scaled by occupancy; profiles with
/// `threads == 0` are framework operator compositions executed by library
/// kernels at library efficiency.
pub fn kernel_time(gpu: &GpuModel, profile: &OpProfile) -> TimeBreakdown {
    let launch_s = profile.kernel_launches as f64 * gpu.launch_overhead_s();

    let efficiency = if profile.threads > 0 {
        gpu.custom_kernel_efficiency * gpu.occupancy(profile.threads)
    } else {
        gpu.library_efficiency
    };
    let compute_s = if profile.macs == 0 {
        0.0
    } else {
        (2.0 * profile.macs as f64) / (gpu.peak_flops() * efficiency.max(1e-3))
    };

    let bytes = profile.bytes_moved as f64 + profile.bytes_materialized as f64;
    let memory_s = bytes / gpu.bandwidth_bytes();

    // Atomics steal throughput from the arithmetic pipeline: the extra time
    // is the compute time scaled by the atomic-per-MAC density.
    let atomic_density = if profile.macs == 0 {
        0.0
    } else {
        profile.atomic_updates as f64 / profile.macs as f64
    };
    let atomic_s = compute_s * (gpu.atomic_penalty(atomic_density) - 1.0);

    TimeBreakdown {
        launch_s,
        compute_s,
        memory_s,
        atomic_s,
    }
}

/// Estimated time (seconds) of a plain library-executed operator given its
/// multiply-accumulates, the activation/weight bytes it must stream, and its
/// launch count. Used for the non-SCC "backbone" layers that are identical
/// across implementations.
pub fn library_op_time(
    gpu: &GpuModel,
    macs: usize,
    bytes: usize,
    launches: usize,
) -> TimeBreakdown {
    TimeBreakdown {
        launch_s: launches as f64 * gpu.launch_overhead_s(),
        compute_s: (2.0 * macs as f64) / (gpu.peak_flops() * gpu.library_efficiency),
        memory_s: bytes as f64 / gpu.bandwidth_bytes(),
        atomic_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_core::{backward_profile, forward_profile, LayerShape, SccConfig, SccImplementation};

    fn gpu() -> GpuModel {
        GpuModel::v100()
    }

    fn cfg() -> SccConfig {
        SccConfig::new(256, 256, 2, 0.5).unwrap()
    }

    #[test]
    fn totals_compose_launch_roofline_and_atomics() {
        let t = TimeBreakdown {
            launch_s: 1.0,
            compute_s: 2.0,
            memory_s: 3.0,
            atomic_s: 0.5,
        };
        assert!((t.total() - 4.5).abs() < 1e-12);
        let sum = t.add(&t);
        assert!((sum.compute_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dsxplore_forward_is_faster_than_compositions() {
        let shape = LayerShape::square(128, 16);
        let dsx = kernel_time(
            &gpu(),
            &forward_profile(&cfg(), &shape, SccImplementation::Dsxplore),
        );
        let base = kernel_time(
            &gpu(),
            &forward_profile(&cfg(), &shape, SccImplementation::PytorchBase),
        );
        let opt = kernel_time(
            &gpu(),
            &forward_profile(&cfg(), &shape, SccImplementation::PytorchOpt),
        );
        assert!(
            dsx.total() < opt.total(),
            "DSXplore {} !< Opt {}",
            dsx.total(),
            opt.total()
        );
        assert!(
            opt.total() < base.total(),
            "Opt {} !< Base {}",
            opt.total(),
            base.total()
        );
    }

    #[test]
    fn input_centric_backward_beats_output_centric() {
        let shape = LayerShape::square(128, 16);
        let dsx = kernel_time(
            &gpu(),
            &backward_profile(&cfg(), &shape, SccImplementation::Dsxplore),
        );
        let var = kernel_time(
            &gpu(),
            &backward_profile(&cfg(), &shape, SccImplementation::DsxploreVar),
        );
        assert!(dsx.total() < var.total());
        assert!(var.atomic_s > 0.0 && dsx.atomic_s == 0.0);
    }

    #[test]
    fn backward_ordering_matches_paper_fig9() {
        // Fig. 9: Pytorch-Base > Pytorch-Opt > DSXplore-Var > DSXplore.
        let shape = LayerShape::square(128, 16);
        let time = |imp| kernel_time(&gpu(), &backward_profile(&cfg(), &shape, imp)).total();
        let base = time(SccImplementation::PytorchBase);
        let opt = time(SccImplementation::PytorchOpt);
        let var = time(SccImplementation::DsxploreVar);
        let dsx = time(SccImplementation::Dsxplore);
        assert!(base > opt, "base {base} !> opt {opt}");
        assert!(opt > var, "opt {opt} !> var {var}");
        assert!(var > dsx, "var {var} !> dsx {dsx}");
    }

    #[test]
    fn small_launches_are_dominated_by_overhead() {
        // A tiny kernel's time is essentially its launch overhead.
        let profile = OpProfile {
            threads: 64,
            macs: 1_000,
            bytes_materialized: 0,
            bytes_moved: 4_096,
            kernel_launches: 1,
            atomic_updates: 0,
            peak_bytes: 0,
        };
        let t = kernel_time(&gpu(), &profile);
        assert!(t.launch_s > t.compute_s.max(t.memory_s));
    }

    #[test]
    fn library_op_time_scales_with_macs() {
        let small = library_op_time(&gpu(), 1_000_000, 1_000_000, 1);
        let large = library_op_time(&gpu(), 100_000_000, 1_000_000, 1);
        assert!(large.compute_s > 50.0 * small.compute_s);
    }

    #[test]
    fn zero_profile_costs_nothing() {
        let t = kernel_time(&gpu(), &OpProfile::default());
        assert_eq!(t.total(), 0.0);
    }
}
