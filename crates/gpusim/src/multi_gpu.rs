//! Multi-GPU data-parallel scaling model (Fig. 14).
//!
//! Synchronous data parallelism splits each global batch across devices; a
//! training step then costs the per-device compute time (smaller batch) plus
//! a ring all-reduce over the gradients. Speedup over one device saturates
//! when the all-reduce term stops shrinking — exactly the "fewer GPUs are
//! partially offset by communication" behaviour the paper reports.

use crate::e2e::estimate_training_step;
use crate::machine::GpuModel;
use dsx_core::SccImplementation;
use dsx_models::ModelSpec;

const F32: usize = std::mem::size_of::<f32>();

/// One row of the multi-GPU scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of devices.
    pub gpus: usize,
    /// Modelled time of one global-batch training step, seconds.
    pub step_time_s: f64,
    /// Time spent in the gradient all-reduce, seconds.
    pub allreduce_s: f64,
    /// Speedup relative to the single-device step.
    pub speedup: f64,
}

/// Time of a ring all-reduce over `param_bytes` of gradients across `gpus`
/// devices.
pub fn allreduce_time(gpu: &GpuModel, param_bytes: usize, gpus: usize) -> f64 {
    if gpus <= 1 {
        return 0.0;
    }
    let n = gpus as f64;
    let volume_factor = 2.0 * (n - 1.0) / n;
    let bandwidth_term = volume_factor * param_bytes as f64 / (gpu.interconnect_gbps * 1e9);
    let latency_term = 2.0 * (n - 1.0) * gpu.allreduce_latency_us * 1e-6;
    bandwidth_term + latency_term
}

/// Models the training-step time and speedup for 1..=`max_gpus` devices at a
/// fixed *global* batch size (strong scaling, as in Fig. 14).
pub fn scaling_curve(
    gpu: &GpuModel,
    spec: &ModelSpec,
    global_batch: usize,
    implementation: SccImplementation,
    max_gpus: usize,
) -> Vec<ScalingPoint> {
    assert!(max_gpus >= 1, "need at least one device");
    assert!(
        global_batch >= max_gpus,
        "global batch must cover all devices"
    );
    let param_bytes = spec.params() * F32;
    let single = estimate_training_step(gpu, spec, global_batch, implementation).total_s;
    (1..=max_gpus)
        .map(|gpus| {
            let per_device_batch = global_batch / gpus;
            let compute =
                estimate_training_step(gpu, spec, per_device_batch, implementation).total_s;
            let allreduce = allreduce_time(gpu, param_bytes, gpus);
            let step = compute + allreduce;
            ScalingPoint {
                gpus,
                step_time_s: step,
                allreduce_s: allreduce,
                speedup: single / step,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_models::{ConvScheme, Dataset, ModelKind};

    fn gpu() -> GpuModel {
        GpuModel::v100()
    }

    fn spec() -> ModelSpec {
        ModelKind::MobileNet.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT)
    }

    #[test]
    fn allreduce_is_zero_for_one_gpu_and_grows_with_devices() {
        let g = gpu();
        assert_eq!(allreduce_time(&g, 10_000_000, 1), 0.0);
        let t2 = allreduce_time(&g, 10_000_000, 2);
        let t4 = allreduce_time(&g, 10_000_000, 4);
        assert!(t2 > 0.0);
        assert!(t4 > t2);
    }

    #[test]
    fn speedup_increases_with_gpu_count() {
        // Fig. 14: the overall trend of speedup increases with more GPUs.
        let curve = scaling_curve(&gpu(), &spec(), 512, SccImplementation::Dsxplore, 4);
        assert_eq!(curve.len(), 4);
        assert!((curve[0].speedup - 1.0).abs() < 1e-9);
        for window in curve.windows(2) {
            assert!(
                window[1].speedup > window[0].speedup,
                "speedup must be monotone: {:?}",
                curve
            );
        }
    }

    #[test]
    fn speedup_is_sublinear_but_approaches_linear_at_four_gpus() {
        let curve = scaling_curve(&gpu(), &spec(), 1024, SccImplementation::Dsxplore, 4);
        let four = curve[3].speedup;
        assert!(four > 2.0 && four <= 4.0, "4-GPU speedup {four}");
        // Communication keeps it under the ideal.
        assert!(curve[1].speedup < 2.0);
    }

    #[test]
    fn communication_fraction_shrinks_for_larger_batches() {
        let small = scaling_curve(&gpu(), &spec(), 64, SccImplementation::Dsxplore, 4)[3];
        let large = scaling_curve(&gpu(), &spec(), 1024, SccImplementation::Dsxplore, 4)[3];
        let frac = |p: ScalingPoint| p.allreduce_s / p.step_time_s;
        assert!(frac(large) < frac(small));
        assert!(large.speedup > small.speedup);
    }

    #[test]
    #[should_panic]
    fn rejects_batch_smaller_than_device_count() {
        scaling_curve(&gpu(), &spec(), 2, SccImplementation::Dsxplore, 4);
    }
}
