//! End-to-end cost estimation: whole-model training steps and inference
//! batches under each SCC implementation, on ImageNet-scale shapes that the
//! CPU kernels cannot execute directly.
//!
//! For every convolution entry of a [`ModelSpec`]:
//!
//! * sliding-channel layers are costed from their analytic
//!   [`OpProfile`](dsx_core::OpProfile)s (`dsx-core::profile`) under the
//!   chosen [`SccImplementation`];
//! * every other layer (standard / depthwise / pointwise / GPW convolutions)
//!   is executed by library kernels in all four implementations, so it gets
//!   the same library roofline cost everywhere;
//! * a batch-norm + ReLU pair after each convolution adds memory-bound
//!   elementwise passes.
//!
//! The resulting totals are not meant to match the paper's absolute seconds —
//! they reproduce the *relative* behaviour: which implementation wins, how
//! the gap changes with `cg`, `co`, batch size, model family, and when
//! Pytorch-Base falls over the 32 GB memory cliff on ImageNet (§V-C).

use crate::cost::{kernel_time, library_op_time, TimeBreakdown};
use crate::machine::GpuModel;
use dsx_core::{backward_profile, forward_profile, LayerShape, SccConfig, SccImplementation};
use dsx_models::{ConvKind, ConvLayerSpec, ModelSpec};

const F32: usize = std::mem::size_of::<f32>();

/// Cost estimate of one training step (forward + backward) of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingStepEstimate {
    /// Total modelled time, seconds.
    pub total_s: f64,
    /// Time spent in the channel-fusion (SCC) layers.
    pub fusion_s: f64,
    /// Time spent in the rest of the network (identical across
    /// implementations).
    pub backbone_s: f64,
    /// Peak device memory needed, bytes.
    pub peak_memory_bytes: usize,
    /// Whether the step fits in the device memory.
    pub fits_in_memory: bool,
}

/// Cost estimate of one inference (forward-only) batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEstimate {
    /// Total modelled latency, seconds.
    pub total_s: f64,
    /// Peak device memory needed, bytes.
    pub peak_memory_bytes: usize,
}

fn scc_config_of(layer: &ConvLayerSpec) -> Option<SccConfig> {
    match layer.kind {
        ConvKind::SlidingChannel { cg, co } => {
            // lint: allow(panic) — specs reaching the simulator come from
            // the validated model catalog, so this is an invariant check.
            Some(SccConfig::new(layer.cin, layer.cout, cg, co).expect("invalid SCC layer"))
        }
        _ => None,
    }
}

fn activation_bytes(layer: &ConvLayerSpec, batch: usize) -> (usize, usize) {
    let input = batch * layer.cin * layer.in_hw * layer.in_hw * F32;
    let out_hw = layer.out_hw();
    let output = batch * layer.cout * out_hw * out_hw * F32;
    (input, output)
}

fn backbone_layer_time(
    gpu: &GpuModel,
    layer: &ConvLayerSpec,
    batch: usize,
    training: bool,
) -> TimeBreakdown {
    let macs = layer.macs() * batch;
    let (in_bytes, out_bytes) = activation_bytes(layer, batch);
    let weight_bytes = layer.conv_params() * F32;
    let mut t = library_op_time(gpu, macs, in_bytes + out_bytes + weight_bytes, 1);
    if training {
        // Backward: grad-input and grad-weight GEMMs plus their traffic.
        t = t.add(&library_op_time(
            gpu,
            2 * macs,
            2 * (in_bytes + out_bytes) + 2 * weight_bytes,
            2,
        ));
    }
    if layer.with_bn {
        // BatchNorm + ReLU forward (and backward): elementwise passes.
        let passes = if training { 6 } else { 2 };
        t = t.add(&library_op_time(
            gpu,
            0,
            passes * out_bytes,
            if training { 4 } else { 2 },
        ));
    }
    t
}

fn fusion_layer_time(
    gpu: &GpuModel,
    cfg: &SccConfig,
    layer: &ConvLayerSpec,
    batch: usize,
    implementation: SccImplementation,
    training: bool,
) -> (TimeBreakdown, usize) {
    let shape = LayerShape::square(batch, layer.in_hw);
    let fwd = forward_profile(cfg, &shape, implementation);
    let mut time = kernel_time(gpu, &fwd);
    let mut peak = fwd.peak_bytes;
    if training {
        let bwd = backward_profile(cfg, &shape, implementation);
        time = time.add(&kernel_time(gpu, &bwd));
        peak = peak.max(bwd.peak_bytes);
    }
    if layer.with_bn {
        let (_, out_bytes) = activation_bytes(layer, batch);
        let passes = if training { 6 } else { 2 };
        time = time.add(&library_op_time(
            gpu,
            0,
            passes * out_bytes,
            if training { 4 } else { 2 },
        ));
    }
    (time, peak)
}

/// Estimates one training step of `spec` at the given batch size under the
/// given SCC implementation.
pub fn estimate_training_step(
    gpu: &GpuModel,
    spec: &ModelSpec,
    batch: usize,
    implementation: SccImplementation,
) -> TrainingStepEstimate {
    let mut fusion = TimeBreakdown::default();
    let mut backbone = TimeBreakdown::default();
    let mut activations_total = 0usize;
    let mut retained_intermediates = 0usize;
    let mut max_layer_peak = 0usize;

    for layer in &spec.convs {
        let (_, out_bytes) = activation_bytes(layer, batch);
        activations_total += out_bytes;
        match scc_config_of(layer) {
            Some(cfg) => {
                let (t, peak) = fusion_layer_time(gpu, &cfg, layer, batch, implementation, true);
                fusion = fusion.add(&t);
                max_layer_peak = max_layer_peak.max(peak);
                // Operator compositions keep their forward intermediates
                // (window slices, the stacked tensor) alive until the
                // backward pass — this is what pushes Pytorch-Base past the
                // 32 GiB cliff on ImageNet (§V-C).
                let shape = LayerShape::square(batch, layer.in_hw);
                retained_intermediates +=
                    forward_profile(&cfg, &shape, implementation).bytes_materialized;
            }
            None => {
                backbone = backbone.add(&backbone_layer_time(gpu, layer, batch, true));
            }
        }
    }
    // Classifier (GAP + linear) — small, library-executed.
    let classifier_macs = batch * spec.classifier_in * spec.classes;
    backbone = backbone.add(&library_op_time(
        gpu,
        3 * classifier_macs,
        3 * spec.classifier_in * spec.classes * F32,
        4,
    ));

    // Parameters + gradients + momentum, live activations (kept for the
    // backward pass), retained composition intermediates, plus the largest
    // per-layer transient.
    let param_bytes = spec.params() * F32;
    let peak_memory_bytes =
        3 * param_bytes + activations_total + retained_intermediates + max_layer_peak;

    let total = fusion.total() + backbone.total();
    TrainingStepEstimate {
        total_s: total,
        fusion_s: fusion.total(),
        backbone_s: backbone.total(),
        peak_memory_bytes,
        fits_in_memory: peak_memory_bytes <= gpu.memory_bytes(),
    }
}

/// Estimates one inference (forward-only) batch.
pub fn estimate_inference(
    gpu: &GpuModel,
    spec: &ModelSpec,
    batch: usize,
    implementation: SccImplementation,
) -> InferenceEstimate {
    let mut total = TimeBreakdown::default();
    let mut max_layer_peak = 0usize;
    let mut largest_activation = 0usize;
    for layer in &spec.convs {
        let (in_bytes, out_bytes) = activation_bytes(layer, batch);
        largest_activation = largest_activation.max(in_bytes + out_bytes);
        match scc_config_of(layer) {
            Some(cfg) => {
                let (t, peak) = fusion_layer_time(gpu, &cfg, layer, batch, implementation, false);
                total = total.add(&t);
                max_layer_peak = max_layer_peak.max(peak);
            }
            None => {
                total = total.add(&backbone_layer_time(gpu, layer, batch, false));
            }
        }
    }
    let classifier_macs = batch * spec.classifier_in * spec.classes;
    total = total.add(&library_op_time(
        gpu,
        classifier_macs,
        spec.classifier_in * spec.classes * F32,
        2,
    ));
    InferenceEstimate {
        total_s: total.total(),
        peak_memory_bytes: spec.params() * F32 + largest_activation + max_layer_peak,
    }
}

/// Speedup of `fast` over `slow` for one training step (`> 1` means `fast`
/// wins). Returns `None` when the slow implementation does not even fit in
/// device memory (the paper's ImageNet situation for Pytorch-Base).
pub fn training_speedup(
    gpu: &GpuModel,
    spec: &ModelSpec,
    batch: usize,
    slow: SccImplementation,
    fast: SccImplementation,
) -> Option<f64> {
    let slow_est = estimate_training_step(gpu, spec, batch, slow);
    let fast_est = estimate_training_step(gpu, spec, batch, fast);
    if !slow_est.fits_in_memory {
        return None;
    }
    Some(slow_est.total_s / fast_est.total_s)
}

/// Estimated backward-pass-only time of the model's SCC layers (the Fig. 9
/// study), in seconds.
pub fn backward_pass_time(
    gpu: &GpuModel,
    spec: &ModelSpec,
    batch: usize,
    implementation: SccImplementation,
) -> f64 {
    let mut total = TimeBreakdown::default();
    for layer in &spec.convs {
        if let Some(cfg) = scc_config_of(layer) {
            let shape = LayerShape::square(batch, layer.in_hw);
            let bwd = backward_profile(&cfg, &shape, implementation);
            total = total.add(&kernel_time(gpu, &bwd));
        }
    }
    total.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_models::{mobilenet, resnet50, vgg16, ConvScheme, Dataset, ModelKind};

    fn gpu() -> GpuModel {
        GpuModel::v100()
    }

    fn dsx_spec(kind: ModelKind) -> ModelSpec {
        kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT)
    }

    #[test]
    fn implementation_ordering_matches_fig7() {
        // DSXplore < Pytorch-Opt < Pytorch-Base in per-step time.
        for kind in [ModelKind::Vgg16, ModelKind::MobileNet, ModelKind::ResNet50] {
            let spec = dsx_spec(kind);
            let t = |imp| estimate_training_step(&gpu(), &spec, 128, imp).total_s;
            let base = t(SccImplementation::PytorchBase);
            let opt = t(SccImplementation::PytorchOpt);
            let dsx = t(SccImplementation::Dsxplore);
            assert!(
                dsx < opt && opt < base,
                "{}: {dsx} {opt} {base}",
                kind.name()
            );
        }
    }

    #[test]
    fn speedups_are_in_the_papers_range() {
        // Paper Fig. 7: DSXplore vs Pytorch-Base averages 5.68x (1.8x-11x);
        // vs Pytorch-Opt averages 2.34x (1.1x-4x).
        let spec = dsx_spec(ModelKind::Vgg16);
        let vs_base = training_speedup(
            &gpu(),
            &spec,
            128,
            SccImplementation::PytorchBase,
            SccImplementation::Dsxplore,
        )
        .unwrap();
        let vs_opt = training_speedup(
            &gpu(),
            &spec,
            128,
            SccImplementation::PytorchOpt,
            SccImplementation::Dsxplore,
        )
        .unwrap();
        assert!(vs_base > 1.5 && vs_base < 20.0, "vs base {vs_base}");
        assert!(vs_opt > 1.05 && vs_opt < 8.0, "vs opt {vs_opt}");
        assert!(vs_base > vs_opt);
    }

    #[test]
    fn backward_ordering_matches_fig9() {
        let spec = dsx_spec(ModelKind::MobileNet);
        let t = |imp| backward_pass_time(&gpu(), &spec, 128, imp);
        let base = t(SccImplementation::PytorchBase);
        let opt = t(SccImplementation::PytorchOpt);
        let var = t(SccImplementation::DsxploreVar);
        let dsx = t(SccImplementation::Dsxplore);
        assert!(
            base > opt && opt > var && var > dsx,
            "{base} {opt} {var} {dsx}"
        );
    }

    #[test]
    fn pytorch_base_runs_out_of_memory_on_imagenet() {
        // §V-C: "Pytorch-Base cannot even run [on ImageNet] due to the
        // excessive amount of memory consumption."
        let spec = resnet50(Dataset::ImageNet, ConvScheme::DSXPLORE_DEFAULT);
        let base = estimate_training_step(&gpu(), &spec, 64, SccImplementation::PytorchBase);
        let dsx = estimate_training_step(&gpu(), &spec, 64, SccImplementation::Dsxplore);
        assert!(!base.fits_in_memory, "Pytorch-Base should exceed 32 GiB");
        assert!(dsx.fits_in_memory, "DSXplore should fit");
        assert!(training_speedup(
            &gpu(),
            &spec,
            64,
            SccImplementation::PytorchBase,
            SccImplementation::Dsxplore
        )
        .is_none());
    }

    #[test]
    fn imagenet_speedup_over_opt_matches_fig8_range() {
        // Fig. 8: 1.95x - 3.88x over Pytorch-Opt on ImageNet.
        let spec = resnet50(Dataset::ImageNet, ConvScheme::DSXPLORE_DEFAULT);
        let s = training_speedup(
            &gpu(),
            &spec,
            64,
            SccImplementation::PytorchOpt,
            SccImplementation::Dsxplore,
        )
        .unwrap();
        assert!(s > 1.2 && s < 8.0, "ImageNet speedup {s}");
    }

    #[test]
    fn vgg_benefits_more_than_resnet50() {
        // §V-C: VGG16/19 see larger benefits than ResNet18/50 because a
        // larger fraction of their work is in replaced convolutions.
        let s = |kind| {
            training_speedup(
                &gpu(),
                &dsx_spec(kind),
                128,
                SccImplementation::PytorchOpt,
                SccImplementation::Dsxplore,
            )
            .unwrap()
        };
        assert!(s(ModelKind::Vgg16) > s(ModelKind::ResNet50));
    }

    #[test]
    fn dsxplore_runtime_decreases_with_more_groups() {
        // Fig. 11: increasing cg shrinks each filter's window and therefore
        // the end-to-end running time of the DSXplore implementation.
        let time_at = |cg: usize| {
            let spec = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg, co: 0.5 });
            estimate_training_step(&gpu(), &spec, 128, SccImplementation::Dsxplore).total_s
        };
        let t1_equiv = time_at(2);
        let t4 = time_at(4);
        let t8 = time_at(8);
        assert!(t1_equiv > t4 && t4 > t8, "{t1_equiv} {t4} {t8}");
    }

    #[test]
    fn overlap_ratio_barely_changes_dsxplore_runtime() {
        // Fig. 12: changing co does not change the workload per thread.
        let t = |co: f64| {
            let spec = vgg16(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co });
            estimate_training_step(&gpu(), &spec, 128, SccImplementation::Dsxplore).total_s
        };
        let t25 = t(0.25);
        let t75 = t(0.75);
        assert!(
            (t25 - t75).abs() / t25 < 0.05,
            "co changed runtime too much"
        );
    }

    #[test]
    fn batch_time_grows_sublinearly_then_linearly() {
        // Fig. 13: below ~128 the GPU is not saturated so per-step time grows
        // slowly; beyond that it grows roughly linearly.
        let spec = dsx_spec(ModelKind::MobileNet);
        let t = |b| estimate_training_step(&gpu(), &spec, b, SccImplementation::Dsxplore).total_s;
        let t16 = t(16);
        let t128 = t(128);
        let t1024 = t(1024);
        assert!(
            t128 / t16 < 8.0,
            "sub-linear region violated: {}",
            t128 / t16
        );
        assert!(
            t1024 / t128 > 4.0,
            "linear region violated: {}",
            t1024 / t128
        );
        assert!(t16 < t128 && t128 < t1024);
    }

    #[test]
    fn inference_latency_is_same_order_of_magnitude_as_gpw_for_table5() {
        // Table V: DSXplore inference latency stays within a small factor of
        // the cuDNN-backed DW+GPW across batch sizes (the paper measures
        // 0.75x-1.6x; our conservative custom-kernel efficiency places it
        // within one order of magnitude — see EXPERIMENTS.md for the noted
        // deviation at small batches).
        let gpw = mobilenet(Dataset::Cifar10, ConvScheme::DwGpw { cg: 2 });
        let scc = mobilenet(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co: 0.5 });
        let mut ratios = Vec::new();
        for &batch in &[16usize, 64, 256] {
            let t_gpw =
                estimate_inference(&gpu(), &gpw, batch, SccImplementation::Dsxplore).total_s;
            let t_scc =
                estimate_inference(&gpu(), &scc, batch, SccImplementation::Dsxplore).total_s;
            let ratio = t_scc / t_gpw;
            assert!(ratio > 0.3 && ratio < 10.0, "batch {batch}: ratio {ratio}");
            ratios.push(ratio);
        }
        // Latency grows with batch size for both implementations.
        let grows = |spec: &ModelSpec| {
            let t16 = estimate_inference(&gpu(), spec, 16, SccImplementation::Dsxplore).total_s;
            let t256 = estimate_inference(&gpu(), spec, 256, SccImplementation::Dsxplore).total_s;
            t256 > t16
        };
        assert!(grows(&gpw) && grows(&scc));
    }

    #[test]
    fn fusion_plus_backbone_equals_total() {
        let spec = dsx_spec(ModelKind::Vgg16);
        let est = estimate_training_step(&gpu(), &spec, 64, SccImplementation::Dsxplore);
        assert!((est.fusion_s + est.backbone_s - est.total_s).abs() < 1e-9);
        assert!(est.fusion_s > 0.0 && est.backbone_s > 0.0);
    }
}
