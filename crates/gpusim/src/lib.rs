//! # dsx-gpusim
//!
//! A V100-like GPU cost model used to reproduce the DSXplore paper's runtime
//! figures (Figs. 7–14, Table V) without CUDA hardware.
//!
//! The model consumes the analytic per-layer [`dsx_core::OpProfile`]s and
//! [`dsx_models::ModelSpec`]s and converts them into estimated execution
//! times through a roofline-plus-overheads decomposition ([`cost`]),
//! whole-model training/inference estimates ([`e2e`]) and a data-parallel
//! scaling model ([`multi_gpu`]). See DESIGN.md §2 for why this substitution
//! preserves the paper's qualitative results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod e2e;
pub mod machine;
pub mod multi_gpu;

pub use cost::{kernel_time, library_op_time, TimeBreakdown};
pub use e2e::{
    backward_pass_time, estimate_inference, estimate_training_step, training_speedup,
    InferenceEstimate, TrainingStepEstimate,
};
pub use machine::GpuModel;
pub use multi_gpu::{allreduce_time, scaling_curve, ScalingPoint};
