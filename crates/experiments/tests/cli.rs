//! End-to-end tests of the `dsx-experiments` binary's flag handling: exit
//! codes and the backend-before-construction ordering guarantee.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsx-experiments"))
        .args(args)
        .output()
        .expect("running the dsx-experiments binary failed")
}

#[test]
fn invalid_backend_exits_non_zero_without_running_anything() {
    let out = run(&["table1", "--backend", "cuda"]);
    assert_eq!(out.status.code(), Some(2), "must exit 2, not fall through");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown kernel backend"),
        "stderr must name the bad backend, got: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("Table I"),
        "no experiment output may be produced after a flag error"
    );
}

#[test]
fn backend_flag_without_a_value_exits_non_zero() {
    let out = run(&["table1", "--backend"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_exits_non_zero() {
    let out = run(&["table1", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_command_exits_non_zero() {
    let out = run(&["not-a-command"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn backend_is_applied_before_any_experiment_output() {
    // The flag sits *after* the command on purpose: wherever it appears in
    // argv, the process-wide backend default must be set before the command
    // runs (layers read the default at construction time). The announcement
    // line printed at apply time makes the ordering observable.
    let out = run(&["table1", "--backend", "blocked"]);
    assert!(out.status.success(), "table1 must succeed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let backend_at = stdout
        .find("kernel backend: blocked")
        .expect("the backend announcement must be printed");
    let table_at = stdout
        .find("Table I")
        .expect("table1 output must be printed");
    assert!(
        backend_at < table_at,
        "backend must be applied (and announced) before the experiment runs:\n{stdout}"
    );
}
