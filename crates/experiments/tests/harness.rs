//! Integration test: the experiment harness regenerates every table/figure
//! without training (analytic + cost-model columns) and the outputs satisfy
//! the paper's qualitative claims.

use std::process::Command;

#[test]
fn experiments_binary_runs_all_analytic_experiments() {
    let output = Command::new(env!("CARGO_BIN_EXE_dsx-experiments"))
        .arg("all")
        .output()
        .expect("failed to launch dsx-experiments");
    assert!(
        output.status.success(),
        "dsx-experiments all failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for marker in [
        "Table I",
        "Table II",
        "Table III",
        "Table IV",
        "Table V",
        "Figure 7",
        "Figure 8",
        "Figure 9",
        "Figure 10",
        "Figure 11",
        "Figure 12",
        "Figure 13",
        "Figure 14",
        "Atomic-operation study",
    ] {
        assert!(stdout.contains(marker), "missing section: {marker}");
    }
    // Every model appears in the speedup figures.
    for model in ["VGG16", "VGG19", "MobileNet", "ResNet18", "ResNet50"] {
        assert!(stdout.contains(model), "missing model: {model}");
    }
}

#[test]
fn experiments_binary_rejects_unknown_commands() {
    let output = Command::new(env!("CARGO_BIN_EXE_dsx-experiments"))
        .arg("not-a-command")
        .output()
        .expect("failed to launch dsx-experiments");
    assert!(!output.status.success());
}
