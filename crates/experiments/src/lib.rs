//! # dsx-experiments
//!
//! Regenerates every table and figure of the DSXplore paper's evaluation
//! (Tables I–V, Figures 7–14). Each `table*` / `fig*` function returns the
//! rows as plain data (so the integration tests can assert on them) and the
//! `dsx-experiments` binary prints them in the paper's layout.
//!
//! Analytic columns (MFLOPs, parameters, cost-model runtimes) reproduce the
//! paper's numbers directly; accuracy columns are measured by short training
//! runs on the synthetic cross-channel datasets from `dsx-data` (see
//! DESIGN.md §2 and EXPERIMENTS.md for the substitution rationale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsx_core::SccImplementation;
use dsx_gpusim::{estimate_inference, estimate_training_step, scaling_curve, GpuModel};
use dsx_models::{ConvScheme, Dataset, ModelKind};
use dsx_nn::{evaluate, train_epoch, Batch, CrossEntropyLoss, Sgd};

/// Batch size used for the CIFAR-scale runtime estimates (the paper's
/// training batch).
pub const CIFAR_BATCH: usize = 128;
/// Batch size used for the ImageNet-scale runtime estimates.
pub const IMAGENET_BATCH: usize = 64;

/// One row of Table I: qualitative comparison of PW, GPW and SCC.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Kernel name.
    pub kernel: String,
    /// MFLOPs of a representative layer (Cin=Cout=256, 16x16 feature map).
    pub mflops: f64,
    /// Parameters of the representative layer.
    pub params: usize,
    /// Qualitative accuracy class reproduced from the Table IV measurements.
    pub accuracy_class: &'static str,
}

/// Table I — FLOPs / parameters / accuracy class of PW vs GPW vs SCC.
pub fn table1() -> Vec<Table1Row> {
    use dsx_models::{ConvKind, ConvLayerSpec};
    let layer = |kind: ConvKind| ConvLayerSpec {
        name: "repr".into(),
        kind,
        cin: 256,
        cout: 256,
        in_hw: 16,
        stride: 1,
        with_bn: false,
    };
    let pw = layer(ConvKind::Pointwise);
    let gpw = layer(ConvKind::GroupPointwise { cg: 2 });
    let scc = layer(ConvKind::SlidingChannel { cg: 2, co: 0.5 });
    vec![
        Table1Row {
            kernel: "PW".into(),
            mflops: pw.macs() as f64 / 1e6,
            params: pw.params(),
            accuracy_class: "High",
        },
        Table1Row {
            kernel: "GPW".into(),
            mflops: gpw.macs() as f64 / 1e6,
            params: gpw.params(),
            accuracy_class: "Low",
        },
        Table1Row {
            kernel: "SCC".into(),
            mflops: scc.macs() as f64 / 1e6,
            params: scc.params(),
            accuracy_class: "High",
        },
    ]
}

/// One row of Table II / III / IV: a model under a scheme.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Model name.
    pub model: String,
    /// Scheme tag (Origin, DW+SCC-cg2-co50%, ...).
    pub scheme: String,
    /// Analytic MFLOPs at batch 1.
    pub mflops: f64,
    /// Parameters in millions.
    pub params_m: f64,
    /// Measured accuracy on the synthetic dataset (None when `--train` was
    /// not requested; the analytic columns never need training).
    pub accuracy: Option<f32>,
}

/// Configuration of the (optional) accuracy-measurement training runs.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Channel-scaling divisor applied to each model so it trains in seconds.
    pub channel_scale: usize,
    /// Spatial down-scaling of the synthetic dataset.
    pub image_scale: usize,
    /// Training set size.
    pub train_size: usize,
    /// Test set size.
    pub test_size: usize,
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            channel_scale: 16,
            image_scale: 2,
            train_size: 256,
            test_size: 128,
            epochs: 4,
            batch_size: 32,
            lr: 0.05,
            seed: 7,
        }
    }
}

/// Trains a (channel-scaled) model spec briefly on the synthetic CIFAR-like
/// dataset and returns its test accuracy.
pub fn measure_accuracy(kind: ModelKind, scheme: ConvScheme, cfg: &TrainConfig) -> f32 {
    let mut spec = kind.spec(Dataset::Cifar10, scheme);
    // The flat sequential builder cannot materialise the ResNet projection
    // shortcuts (a parallel branch); the accuracy measurement trains the
    // "plain" counterpart instead (documented in EXPERIMENTS.md).
    spec.convs.retain(|c| !c.name.contains("downsample"));
    let spec = spec.scale_channels(cfg.channel_scale);
    let mut model = dsx_models::build_model(&spec, cfg.seed);
    // VGG's five pooling stages need the full 32x32 resolution.
    let image_scale = match kind {
        ModelKind::Vgg16 | ModelKind::Vgg19 => 1,
        _ => cfg.image_scale,
    };
    let dataset = dsx_data::cifar_like(cfg.train_size, cfg.test_size, image_scale, cfg.seed);
    let train_batches: Vec<Batch> = dataset
        .train
        .batches(cfg.batch_size)
        .into_iter()
        .map(|(images, labels)| Batch::new(images, labels))
        .collect();
    let test_batches: Vec<Batch> = dataset
        .test
        .batches(cfg.batch_size)
        .into_iter()
        .map(|(images, labels)| Batch::new(images, labels))
        .collect();
    let loss_fn = CrossEntropyLoss::new();
    let mut sgd = Sgd::with_config(cfg.lr, 0.9, 5e-4);
    for _ in 0..cfg.epochs {
        train_epoch(&mut model, &mut sgd, &loss_fn, &train_batches);
    }
    evaluate(&mut model, &loss_fn, &test_batches).accuracy
}

/// Table II — CIFAR-10 Origin vs DSXplore for all five models.
pub fn table2(train: Option<&TrainConfig>) -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        for scheme in [ConvScheme::Origin, ConvScheme::DSXPLORE_DEFAULT] {
            let spec = kind.spec(Dataset::Cifar10, scheme);
            rows.push(AccuracyRow {
                model: kind.name().to_string(),
                scheme: if scheme == ConvScheme::Origin {
                    "Origin".into()
                } else {
                    "DSXplore".into()
                },
                mflops: spec.mflops(),
                params_m: spec.params_m(),
                accuracy: train.map(|cfg| measure_accuracy(kind, scheme, cfg)),
            });
        }
    }
    rows
}

/// Table III — ImageNet ResNet50 Origin vs DSXplore (analytic columns;
/// accuracy measured on the reduced ImageNet-like dataset when requested).
pub fn table3(train: Option<&TrainConfig>) -> Vec<AccuracyRow> {
    [ConvScheme::Origin, ConvScheme::DSXPLORE_DEFAULT]
        .into_iter()
        .map(|scheme| {
            let spec = ModelKind::ResNet50.spec(Dataset::ImageNet, scheme);
            AccuracyRow {
                model: "ResNet50".into(),
                scheme: if scheme == ConvScheme::Origin {
                    "Origin".into()
                } else {
                    "DSXplore".into()
                },
                mflops: spec.mflops(),
                params_m: spec.params_m(),
                accuracy: train.map(|cfg| measure_accuracy(ModelKind::ResNet50, scheme, cfg)),
            }
        })
        .collect()
}

/// The schemes of Table IV (MobileNet ablation), in the paper's row order.
pub fn table4_schemes() -> Vec<ConvScheme> {
    vec![
        ConvScheme::Origin, // Baseline (DW+PW)
        ConvScheme::DwGpw { cg: 2 },
        ConvScheme::DwGpw { cg: 4 },
        ConvScheme::DwGpw { cg: 8 },
        ConvScheme::DwScc { cg: 2, co: 0.33 },
        ConvScheme::DwScc { cg: 2, co: 0.5 },
        ConvScheme::DwScc { cg: 4, co: 0.33 },
        ConvScheme::DwScc { cg: 4, co: 0.5 },
        ConvScheme::DwScc { cg: 8, co: 0.33 },
        ConvScheme::DwScc { cg: 8, co: 0.5 },
    ]
}

/// Table IV — MobileNet under every DSC scheme.
pub fn table4(train: Option<&TrainConfig>) -> Vec<AccuracyRow> {
    table4_schemes()
        .into_iter()
        .map(|scheme| {
            let spec = ModelKind::MobileNet.spec(Dataset::Cifar10, scheme);
            let label = if scheme == ConvScheme::Origin {
                "Baseline (DW+PW)".to_string()
            } else {
                scheme.tag()
            };
            AccuracyRow {
                model: "MobileNet".into(),
                scheme: label,
                mflops: spec.mflops(),
                params_m: spec.params_m(),
                accuracy: train.map(|cfg| measure_accuracy(ModelKind::MobileNet, scheme, cfg)),
            }
        })
        .collect()
}

/// One row of Table V: inference latency at a batch size.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Inference batch size.
    pub batch: usize,
    /// Modelled DW+GPW (cuDNN) latency in milliseconds.
    pub gpw_ms: f64,
    /// Modelled DSXplore latency in milliseconds.
    pub dsxplore_ms: f64,
}

/// Table V — VGG16 inference latency, DW+GPW-cg2 vs DSXplore-cg2-co50%.
pub fn table5() -> Vec<Table5Row> {
    let gpu = GpuModel::v100();
    let gpw = ModelKind::Vgg16.spec(Dataset::Cifar10, ConvScheme::DwGpw { cg: 2 });
    let scc = ModelKind::Vgg16.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
    [16usize, 32, 64, 128, 256, 512]
        .into_iter()
        .map(|batch| Table5Row {
            batch,
            gpw_ms: estimate_inference(&gpu, &gpw, batch, SccImplementation::Dsxplore).total_s
                * 1e3,
            dsxplore_ms: estimate_inference(&gpu, &scc, batch, SccImplementation::Dsxplore).total_s
                * 1e3,
        })
        .collect()
}

/// One speedup point of Figures 7/8: a model under a setting.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// `(cg, co)` setting of the SCC layers.
    pub setting: String,
    /// Speedup of Pytorch-Opt over the baseline (1.0 when Pytorch-Opt *is*
    /// the baseline).
    pub pytorch_opt: Option<f64>,
    /// Speedup of DSXplore over the baseline.
    pub dsxplore: Option<f64>,
}

/// The two setting groups of Figures 7/8: varying `cg` at `co = 50 %` and
/// varying `co` at `cg = 2`.
pub fn figure_settings() -> Vec<(usize, f64)> {
    vec![(2, 0.5), (4, 0.5), (8, 0.5), (2, 0.25), (2, 0.75)]
}

/// Figure 7 — CIFAR-10 training speedup over Pytorch-Base.
pub fn fig7() -> Vec<SpeedupRow> {
    let gpu = GpuModel::v100();
    let mut rows = Vec::new();
    for (cg, co) in figure_settings() {
        for kind in ModelKind::ALL {
            let spec = kind.spec(Dataset::Cifar10, ConvScheme::DwScc { cg, co });
            let base =
                estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::PytorchBase);
            let opt =
                estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::PytorchOpt);
            let dsx = estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::Dsxplore);
            let fits = base.fits_in_memory;
            rows.push(SpeedupRow {
                model: kind.name().to_string(),
                setting: format!("cg={cg}, co={}%", (co * 100.0) as usize),
                pytorch_opt: fits.then(|| base.total_s / opt.total_s),
                dsxplore: fits.then(|| base.total_s / dsx.total_s),
            });
        }
    }
    rows
}

/// Figure 8 — ImageNet training speedup of DSXplore over Pytorch-Opt
/// (Pytorch-Base does not fit in memory, as in the paper).
pub fn fig8() -> Vec<SpeedupRow> {
    let gpu = GpuModel::v100();
    let mut rows = Vec::new();
    for (cg, co) in figure_settings() {
        for kind in ModelKind::ALL {
            let spec = kind.spec(Dataset::ImageNet, ConvScheme::DwScc { cg, co });
            let base =
                estimate_training_step(&gpu, &spec, IMAGENET_BATCH, SccImplementation::PytorchBase);
            let opt =
                estimate_training_step(&gpu, &spec, IMAGENET_BATCH, SccImplementation::PytorchOpt);
            let dsx =
                estimate_training_step(&gpu, &spec, IMAGENET_BATCH, SccImplementation::Dsxplore);
            rows.push(SpeedupRow {
                model: kind.name().to_string(),
                setting: format!(
                    "cg={cg}, co={}%{}",
                    (co * 100.0) as usize,
                    if base.fits_in_memory {
                        ""
                    } else {
                        " (Pytorch-Base OOM)"
                    }
                ),
                pytorch_opt: Some(1.0),
                dsxplore: Some(opt.total_s / dsx.total_s),
            });
        }
    }
    rows
}

/// One row of Figure 9: backward-pass time per implementation.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Model name.
    pub model: String,
    /// Backward time (seconds) for Pytorch-Base / Pytorch-Opt / DSXplore-Var
    /// / DSXplore, in that order.
    pub seconds: [f64; 4],
}

/// Figure 9 — backward-propagation runtime of the SCC layers under the four
/// implementations (cg=2, co=50%).
pub fn fig9() -> Vec<Fig9Row> {
    let gpu = GpuModel::v100();
    ModelKind::ALL
        .iter()
        .map(|kind| {
            let spec = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
            let t = |imp| dsx_gpusim::backward_pass_time(&gpu, &spec, CIFAR_BATCH, imp);
            Fig9Row {
                model: kind.name().to_string(),
                seconds: [
                    t(SccImplementation::PytorchBase),
                    t(SccImplementation::PytorchOpt),
                    t(SccImplementation::DsxploreVar),
                    t(SccImplementation::Dsxplore),
                ],
            }
        })
        .collect()
}

/// One row of Figure 10: stacking memory with and without the channel-cyclic
/// optimization.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Model name.
    pub model: String,
    /// Megabytes of window slices materialised without the optimization.
    pub without_cc_mb: f64,
    /// Megabytes with the optimization.
    pub with_cc_mb: f64,
    /// Relative saving in percent.
    pub saving_pct: f64,
}

/// Figure 10 — memory consumed by the operator-composition stacking, with vs
/// without the channel-cyclic optimization.
pub fn fig10() -> Vec<Fig10Row> {
    ModelKind::ALL
        .iter()
        .map(|kind| {
            let spec = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
            let mut without = 0usize;
            let mut with = 0usize;
            for layer in spec.scc_layers() {
                // lint: allow(panic) — `scc_layers()` already filtered to
                // layers whose kind carries an SCC config.
                let cfg = layer.scc_config().expect("scc layer");
                let shape = dsx_core::LayerShape::square(CIFAR_BATCH, layer.in_hw);
                let (wo, wi) = dsx_core::profile::stacking_memory_bytes(&cfg, &shape);
                without += wo;
                with += wi;
            }
            Fig10Row {
                model: kind.name().to_string(),
                without_cc_mb: without as f64 / 1e6,
                with_cc_mb: with as f64 / 1e6,
                saving_pct: 100.0 * (1.0 - with as f64 / without.max(1) as f64),
            }
        })
        .collect()
}

/// One normalised-runtime series point for Figures 11/12/13.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Model name.
    pub model: String,
    /// X value (cg, co in percent, or batch size).
    pub x: f64,
    /// Y value (normalised runtime or seconds, per the figure).
    pub y: f64,
}

/// Figure 11 — normalised DSXplore runtime vs number of groups (co = 50 %),
/// normalised to cg = 1.
pub fn fig11() -> Vec<SeriesPoint> {
    let gpu = GpuModel::v100();
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        // cg = 1 is SCC degenerated to a full-window (pointwise-like) filter,
        // still executed by the DSXplore kernel — the paper's normalisation
        // point.
        let reference = {
            let spec = kind.spec(Dataset::Cifar10, ConvScheme::DwScc { cg: 1, co: 0.0 });
            estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::Dsxplore).total_s
        };
        for cg in [1usize, 2, 4, 8] {
            let scheme = if cg == 1 {
                ConvScheme::DwScc { cg: 1, co: 0.0 }
            } else {
                ConvScheme::DwScc { cg, co: 0.5 }
            };
            let spec = kind.spec(Dataset::Cifar10, scheme);
            let t = estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::Dsxplore)
                .total_s;
            rows.push(SeriesPoint {
                model: kind.name().to_string(),
                x: cg as f64,
                y: t / reference,
            });
        }
    }
    rows
}

/// Figure 12 — normalised DSXplore runtime vs overlap ratio (cg = 2),
/// normalised to co = 10 %.
pub fn fig12() -> Vec<SeriesPoint> {
    let gpu = GpuModel::v100();
    let overlaps = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let reference = {
            let spec = kind.spec(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co: 0.1 });
            estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::Dsxplore).total_s
        };
        for co in overlaps {
            let spec = kind.spec(Dataset::Cifar10, ConvScheme::DwScc { cg: 2, co });
            let t = estimate_training_step(&gpu, &spec, CIFAR_BATCH, SccImplementation::Dsxplore)
                .total_s;
            rows.push(SeriesPoint {
                model: kind.name().to_string(),
                x: co * 100.0,
                y: t / reference,
            });
        }
    }
    rows
}

/// Figure 13 — time per training batch vs batch size (cg=2, co=50%) for
/// VGG16, MobileNet and ResNet18.
pub fn fig13() -> Vec<SeriesPoint> {
    let gpu = GpuModel::v100();
    let mut rows = Vec::new();
    for kind in [ModelKind::Vgg16, ModelKind::MobileNet, ModelKind::ResNet18] {
        let spec = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
        for batch in [16usize, 32, 64, 128, 256, 512, 1024] {
            let t = estimate_training_step(&gpu, &spec, batch, SccImplementation::Dsxplore).total_s;
            rows.push(SeriesPoint {
                model: kind.name().to_string(),
                x: batch as f64,
                y: t,
            });
        }
    }
    rows
}

/// Figure 14 — multi-GPU speedup for VGG16, MobileNet and ResNet18
/// (cg=2, co=50%, global batch 512).
pub fn fig14() -> Vec<SeriesPoint> {
    let gpu = GpuModel::v100();
    let mut rows = Vec::new();
    for kind in [ModelKind::Vgg16, ModelKind::MobileNet, ModelKind::ResNet18] {
        let spec = kind.spec(Dataset::Cifar10, ConvScheme::DSXPLORE_DEFAULT);
        for point in scaling_curve(&gpu, &spec, 512, SccImplementation::Dsxplore, 4) {
            rows.push(SeriesPoint {
                model: kind.name().to_string(),
                x: point.gpus as f64,
                y: point.speedup,
            });
        }
    }
    rows
}

/// Atomic-operation study (§V-D): measured counter values from the real CPU
/// kernels for a representative layer, per backward design.
#[derive(Debug, Clone)]
pub struct AtomicsRow {
    /// Backward design name.
    pub design: String,
    /// Number of atomic updates recorded by the instrumented kernel.
    pub atomic_updates: usize,
}

/// Runs both backward kernels on a representative layer and reports the
/// atomic-update counters (reproducing the ">90% fewer atomics" claim).
pub fn atomics_study() -> Vec<AtomicsRow> {
    use dsx_core::{
        scc_backward_input_centric, scc_backward_output_centric, KernelStats, SccConfig,
    };
    use dsx_tensor::Tensor;
    // lint: allow(panic) — hard-coded experiment constants, valid by
    // inspection; the validator runs at startup, not on user input.
    let cfg = SccConfig::new(64, 128, 2, 0.5).unwrap();
    let input = Tensor::randn(&[4, 64, 16, 16], 1);
    let weight = Tensor::randn(&[128, 32], 2);
    let grad_out = Tensor::randn(&[4, 128, 16, 16], 3);
    let out_stats = KernelStats::new();
    scc_backward_output_centric(&cfg, &input, &weight, &grad_out, Some(&out_stats));
    let in_stats = KernelStats::new();
    scc_backward_input_centric(&cfg, &input, &weight, &grad_out, Some(&in_stats));
    vec![
        AtomicsRow {
            design: "Output-centric (DSXplore-Var)".into(),
            atomic_updates: out_stats.atomic_updates(),
        },
        AtomicsRow {
            design: "Input-centric (DSXplore)".into(),
            atomic_updates: in_stats.atomic_updates(),
        },
    ]
}

/// Outcome of the train→save half of the model lifecycle
/// (`dsx-experiments train-serve`).
#[derive(Debug)]
pub struct TrainServeOutcome {
    /// The trained weights, ready to [`dsx_models::Checkpoint::save`].
    pub checkpoint: dsx_models::Checkpoint,
    /// Mean training loss over the final epoch.
    pub loss: f32,
    /// Mean training accuracy over the final epoch.
    pub accuracy: f32,
    /// CRC-32 fingerprint of the trained model's inference output
    /// ([`dsx_models::model_digest`]); `dsx-serve --model` prints the same
    /// line after loading, so CI can gate bit-identical round trips on a
    /// string comparison.
    pub digest: u32,
}

/// Trains a compact serving tower on the synthetic CIFAR-like workload
/// (8×8 inputs — the shape `dsx-serve`'s load generator drives) and
/// captures the trained weights as a checkpoint.
///
/// The tower is deliberately narrower than the default serving model
/// (width 32, 2 blocks) so the lifecycle CI job trains in seconds; the
/// checkpoint still exercises every layer kind the format must carry
/// (standard/depthwise/SCC convolutions, batch-norm running statistics,
/// the linear classifier).
pub fn train_serving_checkpoint(cfg: &TrainConfig) -> TrainServeOutcome {
    let spec = dsx_serve::serving_spec_with(32, 2);
    let mut model = dsx_models::build_model(&spec, cfg.seed);
    // image_scale 4 → 8×8 images, matching the serving request shape.
    let dataset = dsx_data::cifar_like(cfg.train_size, cfg.test_size, 4, cfg.seed);
    let train_batches: Vec<Batch> = dataset
        .train
        .batches(cfg.batch_size)
        .into_iter()
        .map(|(images, labels)| Batch::new(images, labels))
        .collect();
    let loss_fn = CrossEntropyLoss::new();
    let mut sgd = Sgd::with_config(cfg.lr, 0.9, 5e-4);
    let mut metrics = train_epoch(&mut model, &mut sgd, &loss_fn, &train_batches);
    for _ in 1..cfg.epochs {
        metrics = train_epoch(&mut model, &mut sgd, &loss_fn, &train_batches);
    }
    let digest = dsx_models::model_digest(&model, &spec);
    TrainServeOutcome {
        checkpoint: dsx_models::Checkpoint::capture(&spec, &model),
        loss: metrics.loss,
        accuracy: metrics.accuracy,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scc_matches_gpw_cost_and_pw_accuracy_class() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        let pw = &rows[0];
        let gpw = &rows[1];
        let scc = &rows[2];
        assert!(scc.mflops < pw.mflops);
        assert!((scc.mflops - gpw.mflops).abs() < 1e-9);
        assert_eq!(scc.accuracy_class, "High");
        assert_eq!(gpw.accuracy_class, "Low");
    }

    #[test]
    fn table2_has_two_rows_per_model_and_dsxplore_is_cheaper() {
        let rows = table2(None);
        assert_eq!(rows.len(), 10);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].scheme, "Origin");
            assert_eq!(pair[1].scheme, "DSXplore");
            assert!(pair[1].mflops < pair[0].mflops);
            assert!(pair[1].params_m < pair[0].params_m);
        }
    }

    #[test]
    fn table4_flops_decrease_with_cg_and_match_between_gpw_and_scc() {
        let rows = table4(None);
        assert_eq!(rows.len(), 10);
        // GPW-cg2 and SCC-cg2 rows must agree analytically.
        let find = |tag: &str| rows.iter().find(|r| r.scheme.contains(tag)).unwrap();
        assert!((find("GPW-cg2").mflops - find("SCC-cg2-co50%").mflops).abs() < 1e-9);
        assert!(find("SCC-cg8-co50%").mflops < find("SCC-cg2-co50%").mflops);
    }

    #[test]
    fn fig7_speedups_are_greater_than_one() {
        let rows = fig7();
        assert_eq!(rows.len(), 5 * 5);
        for row in &rows {
            if let (Some(opt), Some(dsx)) = (row.pytorch_opt, row.dsxplore) {
                assert!(opt > 1.0, "{row:?}");
                assert!(dsx > opt, "{row:?}");
            }
        }
    }

    #[test]
    fn fig9_ordering_matches_paper() {
        for row in fig9() {
            let [base, opt, var, dsx] = row.seconds;
            assert!(base > opt && opt > var && var > dsx, "{row:?}");
        }
    }

    #[test]
    fn fig10_savings_fall_in_paper_range() {
        for row in fig10() {
            assert!(
                row.saving_pct > 40.0 && row.saving_pct < 99.9,
                "{row:?} outside plausible range"
            );
            assert!(row.with_cc_mb < row.without_cc_mb);
        }
    }

    #[test]
    fn fig11_runtime_decreases_with_groups() {
        let rows = fig11();
        for model in ["VGG16", "MobileNet"] {
            let series: Vec<&SeriesPoint> = rows.iter().filter(|p| p.model == model).collect();
            assert_eq!(series.len(), 4);
            for pair in series.windows(2) {
                assert!(pair[1].y <= pair[0].y * 1.001, "{model}: {pair:?}");
            }
        }
    }

    #[test]
    fn fig12_runtime_is_flat_in_overlap() {
        let rows = fig12();
        for point in &rows {
            assert!((point.y - 1.0).abs() < 0.1, "{point:?}");
        }
    }

    #[test]
    fn fig13_time_grows_with_batch() {
        let rows = fig13();
        for model in ["VGG16", "MobileNet", "ResNet18"] {
            let series: Vec<&SeriesPoint> = rows.iter().filter(|p| p.model == model).collect();
            for pair in series.windows(2) {
                assert!(pair[1].y > pair[0].y);
            }
        }
    }

    #[test]
    fn fig14_speedup_monotone_up_to_four_gpus() {
        let rows = fig14();
        for model in ["VGG16", "MobileNet", "ResNet18"] {
            let series: Vec<&SeriesPoint> = rows.iter().filter(|p| p.model == model).collect();
            assert_eq!(series.len(), 4);
            assert!(series[3].y > series[0].y);
            assert!(series[3].y <= 4.0);
        }
    }

    #[test]
    fn atomics_study_shows_more_than_90_percent_reduction() {
        let rows = atomics_study();
        let output_centric = rows[0].atomic_updates as f64;
        let input_centric = rows[1].atomic_updates as f64;
        assert!(input_centric <= output_centric * 0.1);
    }

    #[test]
    fn table5_latencies_increase_with_batch() {
        let rows = table5();
        for pair in rows.windows(2) {
            assert!(pair[1].gpw_ms > pair[0].gpw_ms);
            assert!(pair[1].dsxplore_ms > pair[0].dsxplore_ms);
        }
    }

    #[test]
    fn accuracy_measurement_runs_and_is_sane() {
        // Tiny budget so this stays fast; just checks the training path.
        let cfg = TrainConfig {
            channel_scale: 32,
            image_scale: 4,
            train_size: 48,
            test_size: 24,
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            seed: 3,
        };
        let acc = measure_accuracy(ModelKind::MobileNet, ConvScheme::DSXPLORE_DEFAULT, &cfg);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn trained_checkpoint_round_trips_with_an_identical_digest() {
        // Tiny budget: this checks the train→save→load→serve parity chain,
        // not convergence.
        let cfg = TrainConfig {
            train_size: 32,
            test_size: 16,
            epochs: 1,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let outcome = train_serving_checkpoint(&cfg);
        assert!(outcome.loss.is_finite());
        let bytes = outcome.checkpoint.encode();
        let loaded = dsx_models::Checkpoint::decode(&bytes).expect("own bytes decode");
        // Rebuild on the same backend the trained model used so the digest
        // comparison tests checkpoint losslessness, not backend parity.
        let model = loaded
            .build_model(dsx_core::default_backend())
            .expect("own checkpoint rebuilds");
        assert_eq!(
            dsx_models::model_digest(&model, &loaded.spec),
            outcome.digest,
            "loaded weights must infer bit-identically to the trained model"
        );
    }
}
