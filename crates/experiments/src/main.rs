//! `dsx-experiments` — command-line harness that regenerates every table and
//! figure of the DSXplore paper.
//!
//! ```text
//! dsx-experiments <command> [--train] [--backend <naive|blocked|tiled|swsum>]
//!                 [--save PATH] [--trace-out PATH]
//!
//! Commands:
//!   table1 table2 table3 table4 table5
//!   fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!   atomics      kernel-level atomic-operation study (§V-D)
//!   train-serve  train the compact serving tower and (with --save PATH)
//!                write a versioned checkpoint for `dsx-serve --model`
//!   all          run everything (analytic columns only unless --train)
//! ```
//!
//! `--train` additionally measures the accuracy columns by briefly training
//! channel-scaled models on the synthetic datasets (a few minutes on a
//! laptop); without it only the analytic columns are printed.
//!
//! `--backend` selects the SCC kernel execution backend for everything that
//! runs real CPU kernels (the training runs and the atomics study): it sets
//! the process-default backend before any layer is constructed. Analytic
//! columns are backend-independent.

use dsx_experiments::*;

fn print_accuracy_rows(title: &str, rows: &[AccuracyRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<12} {:<22} {:>10} {:>12} {:>10}",
        "Model", "Implementation", "MFLOPs", "Param. (M)", "Acc. (%)"
    );
    for row in rows {
        let acc = row
            .accuracy
            .map(|a| format!("{:.2}", a * 100.0))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<12} {:<22} {:>10.2} {:>12.2} {:>10}",
            row.model, row.scheme, row.mflops, row.params_m, acc
        );
    }
}

fn print_speedups(title: &str, rows: &[SpeedupRow], baseline: &str) {
    println!("\n=== {title} (speedup over {baseline}) ===");
    println!(
        "{:<12} {:<28} {:>14} {:>12}",
        "Model", "Setting", "Pytorch-Opt(x)", "DSXplore(x)"
    );
    for row in rows {
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "OOM".into());
        println!(
            "{:<12} {:<28} {:>14} {:>12}",
            row.model,
            row.setting,
            fmt(row.pytorch_opt),
            fmt(row.dsxplore)
        );
    }
}

fn print_series(title: &str, rows: &[SeriesPoint], x_label: &str, y_label: &str) {
    println!("\n=== {title} ===");
    println!("{:<12} {:>12} {:>16}", "Model", x_label, y_label);
    for point in rows {
        println!("{:<12} {:>12.2} {:>16.6}", point.model, point.x, point.y);
    }
}

fn run(command: &str, train_cfg: Option<&TrainConfig>) {
    match command {
        "table1" => {
            let rows = table1();
            println!("\n=== Table I: SCC vs PW vs GPW (Cin=Cout=256, 16x16) ===");
            println!(
                "{:<8} {:>10} {:>10} {:>8}",
                "Kernel", "MFLOPs", "Params", "Acc."
            );
            for r in rows {
                println!(
                    "{:<8} {:>10.2} {:>10} {:>8}",
                    r.kernel, r.mflops, r.params, r.accuracy_class
                );
            }
        }
        "table2" => print_accuracy_rows("Table II: CIFAR-10 accuracy/cost", &table2(train_cfg)),
        "table3" => print_accuracy_rows("Table III: ImageNet ResNet50", &table3(train_cfg)),
        "table4" => print_accuracy_rows("Table IV: MobileNet DSC ablation", &table4(train_cfg)),
        "table5" => {
            println!("\n=== Table V: VGG16 inference latency (ms) ===");
            println!(
                "{:>10} {:>14} {:>14}",
                "Batch", "DW+GPW (ms)", "DSXplore (ms)"
            );
            for r in table5() {
                println!("{:>10} {:>14.2} {:>14.2}", r.batch, r.gpw_ms, r.dsxplore_ms);
            }
        }
        "fig7" => print_speedups(
            "Figure 7: CIFAR-10 training speedup",
            &fig7(),
            "Pytorch-Base",
        ),
        "fig8" => print_speedups(
            "Figure 8: ImageNet training speedup",
            &fig8(),
            "Pytorch-Opt",
        ),
        "fig9" => {
            println!("\n=== Figure 9: backward-pass runtime (s) ===");
            println!(
                "{:<12} {:>14} {:>14} {:>14} {:>12}",
                "Model", "Pytorch-Base", "Pytorch-Opt", "DSXplore-Var", "DSXplore"
            );
            for r in fig9() {
                println!(
                    "{:<12} {:>14.4} {:>14.4} {:>14.4} {:>12.4}",
                    r.model, r.seconds[0], r.seconds[1], r.seconds[2], r.seconds[3]
                );
            }
        }
        "fig10" => {
            println!("\n=== Figure 10: channel-cyclic optimization memory (MB) ===");
            println!(
                "{:<12} {:>14} {:>14} {:>12}",
                "Model", "w/o CCO (MB)", "w/ CCO (MB)", "Saving (%)"
            );
            for r in fig10() {
                println!(
                    "{:<12} {:>14.1} {:>14.1} {:>12.2}",
                    r.model, r.without_cc_mb, r.with_cc_mb, r.saving_pct
                );
            }
        }
        "fig11" => print_series(
            "Figure 11: runtime vs number of groups (normalised to cg=1)",
            &fig11(),
            "cg",
            "normalised time",
        ),
        "fig12" => print_series(
            "Figure 12: runtime vs channel overlap (normalised to co=10%)",
            &fig12(),
            "co (%)",
            "normalised time",
        ),
        "fig13" => print_series(
            "Figure 13: time per training batch vs batch size",
            &fig13(),
            "batch",
            "time (s)",
        ),
        "fig14" => print_series(
            "Figure 14: multi-GPU scalability",
            &fig14(),
            "GPUs",
            "speedup (x)",
        ),
        "atomics" => {
            println!("\n=== Atomic-operation study (§V-D) ===");
            for r in atomics_study() {
                println!("{:<34} {:>14}", r.design, r.atomic_updates);
            }
        }
        "all" => {
            for cmd in [
                "table1", "table2", "table3", "table4", "table5", "fig7", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13", "fig14", "atomics",
            ] {
                run(cmd, train_cfg);
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
                "commands: table1..table5, fig7..fig14, atomics, train-serve, all  (add --train for accuracy columns)"
            );
            std::process::exit(2);
        }
    }
}

/// Fully parsed command line. Parsing is side-effect free so every flag —
/// wherever it sits relative to the command — is validated *before* any
/// process state changes or any layer is constructed.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    command: String,
    train: bool,
    backend: Option<dsx_core::BackendKind>,
    save: Option<std::path::PathBuf>,
    /// Enable `dsx-obs` tracing for the run and write Chrome trace-event
    /// JSON here on exit (pool, per-layer and GEMM spans).
    trace_out: Option<std::path::PathBuf>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut train = false;
    let mut command: Option<String> = None;
    let mut backend = None;
    let mut save = None;
    let mut trace_out = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // `--flag value` and `--flag=value` spellings for valued flags.
        let mut valued = |flag: &str| -> Result<Option<String>, String> {
            if arg == flag {
                iter.next()
                    .cloned()
                    .map(Some)
                    .ok_or_else(|| format!("{flag} needs a value"))
            } else {
                Ok(arg.strip_prefix(&format!("{flag}=")).map(str::to_string))
            }
        };
        if let Some(value) = valued("--backend")? {
            backend = Some(value.parse::<dsx_core::BackendKind>()?);
        } else if let Some(value) = valued("--save")? {
            save = Some(std::path::PathBuf::from(value));
        } else if let Some(value) = valued("--trace-out")? {
            trace_out = Some(std::path::PathBuf::from(value));
        } else if arg == "--train" {
            train = true;
        } else if !arg.starts_with("--") {
            command.get_or_insert_with(|| arg.clone());
        } else {
            return Err(format!(
                "unknown flag '{arg}' (flags: --train, --backend <naive|blocked|tiled|swsum>, --save PATH, --trace-out PATH)"
            ));
        }
    }
    let command = command.unwrap_or_else(|| "all".to_string());
    if save.is_some() && command != "train-serve" {
        return Err(format!(
            "--save only applies to the train-serve command (got '{command}')"
        ));
    }
    Ok(Cli {
        command,
        train,
        backend,
        save,
        trace_out,
    })
}

/// `train-serve`: one short training run of the compact serving tower,
/// optionally checkpointed to disk for `dsx-serve --model`.
fn run_train_serve(save: Option<&std::path::Path>) {
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    };
    let outcome = train_serving_checkpoint(&cfg);
    println!("\n=== train-serve: model lifecycle ===");
    println!(
        "trained {} for 1 epoch: loss {:.4}, train accuracy {:.2}%",
        outcome.checkpoint.spec.name,
        outcome.loss,
        outcome.accuracy * 100.0
    );
    // The exact line `dsx-serve --model` also prints; CI string-compares
    // the two to gate bit-identical save→load round trips.
    println!("model digest: {:08x}", outcome.digest);
    if let Some(path) = save {
        if let Err(e) = outcome.checkpoint.save(path) {
            eprintln!(
                "dsx-experiments: cannot save checkpoint to {}: {e}",
                path.display()
            );
            std::process::exit(1);
        }
        println!(
            "saved checkpoint: {} ({} tensors)",
            path.display(),
            outcome.checkpoint.records.len()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    // Apply the backend before anything builds a layer: the process-wide
    // default is read at construction time, so ordering is correctness, not
    // cosmetics. The announcement line is printed first so the output
    // itself witnesses the ordering (the CLI tests assert on it).
    if let Some(kind) = cli.backend {
        dsx_core::set_default_backend(kind);
        println!("kernel backend: {kind}");
    }
    if cli.trace_out.is_some() {
        dsx_obs::enable(true);
    }
    if cli.command == "train-serve" {
        run_train_serve(cli.save.as_deref());
    } else {
        let train_cfg = TrainConfig::default();
        run(&cli.command, cli.train.then_some(&train_cfg));
    }
    if let Some(path) = &cli.trace_out {
        dsx_obs::enable(false);
        match dsx_obs::export_chrome_trace(path) {
            Ok(events) => println!("trace: wrote {events} events to {}", path.display()),
            Err(e) => {
                eprintln!(
                    "dsx-experiments: cannot write --trace-out {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_core::BackendKind;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_running_everything() {
        let cli = parse_cli(&[]).unwrap();
        assert_eq!(cli.command, "all");
        assert!(!cli.train);
        assert_eq!(cli.backend, None);
    }

    #[test]
    fn backend_parses_in_both_spellings_and_any_position() {
        for list in [
            ["--backend", "blocked", "table1"],
            ["table1", "--backend", "blocked"],
            ["table1", "--backend=blocked", "--train"],
        ] {
            let cli = parse_cli(&args(&list)).unwrap();
            assert_eq!(cli.backend, Some(BackendKind::Blocked), "{list:?}");
            assert_eq!(cli.command, "table1");
        }
    }

    #[test]
    fn invalid_backend_is_an_error_before_anything_runs() {
        let err = parse_cli(&args(&["--backend", "cuda", "table1"])).unwrap_err();
        assert!(err.contains("unknown kernel backend"), "{err}");
        assert!(parse_cli(&args(&["--backend"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse_cli(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn trace_out_parses_in_both_spellings_and_any_position() {
        for list in [
            ["--trace-out", "/tmp/t.json", "table1"].as_slice(),
            ["table1", "--trace-out=/tmp/t.json"].as_slice(),
        ] {
            let cli = parse_cli(&args(list)).unwrap();
            assert_eq!(
                cli.trace_out.as_deref(),
                Some(std::path::Path::new("/tmp/t.json")),
                "{list:?}"
            );
            assert_eq!(cli.command, "table1");
        }
        assert!(parse_cli(&[]).unwrap().trace_out.is_none());
        assert!(parse_cli(&args(&["--trace-out"])).is_err());
    }

    #[test]
    fn save_parses_with_train_serve_only() {
        for list in [
            ["train-serve", "--save", "/tmp/model.ckpt"].as_slice(),
            ["train-serve", "--save=/tmp/model.ckpt"].as_slice(),
        ] {
            let cli = parse_cli(&args(list)).unwrap();
            assert_eq!(cli.command, "train-serve");
            assert_eq!(
                cli.save.as_deref(),
                Some(std::path::Path::new("/tmp/model.ckpt"))
            );
        }
        // train-serve without --save is a dry run (digest only).
        assert!(parse_cli(&args(&["train-serve"])).unwrap().save.is_none());
        assert!(parse_cli(&args(&["--save"])).is_err());
        let err = parse_cli(&args(&["table1", "--save", "/tmp/m.ckpt"])).unwrap_err();
        assert!(err.contains("train-serve"), "{err}");
        let err = parse_cli(&args(&["--save", "/tmp/m.ckpt"])).unwrap_err();
        assert!(err.contains("train-serve"), "{err}");
    }
}
