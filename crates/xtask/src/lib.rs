//! `dsx-xtask` — repo-local developer tooling for the DSXplore workspace.
//!
//! The one subcommand today is `lint`: a concurrency-correctness static
//! analysis purpose-built for this codebase (see [`lints`] for the rule
//! table). PRs 5–7 concentrated the system's risk into a small amount of
//! `unsafe` concurrent code — the work-stealing pool, the `SharedMutF32`
//! raw-pointer seam, the pooled GEMM — and these lints are the
//! machine-enforced floor under it: every `unsafe` justified, every weak
//! atomic ordering argued, library code panic-free unless a human signed
//! off, clean crates locked clean, and all parallelism routed through the
//! persistent pool.
//!
//! Run it as `cargo run -p dsx-xtask -- lint`; CI runs it before the main
//! build so a violation fails in seconds.

#![forbid(unsafe_code)]

pub mod lex;
pub mod lints;

pub use lints::{lint_root, Finding};
