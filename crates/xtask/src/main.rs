//! The `dsx-xtask` CLI. `dsx-xtask lint [ROOT]` runs the repo lints (see
//! `dsx_xtask::lints`) and exits nonzero on any finding.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args.next().map(PathBuf::from).unwrap_or_else(default_root);
            lint(&root)
        }
        Some(other) => {
            eprintln!("dsx-xtask: unknown subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: dsx-xtask lint [ROOT]

Runs the repo's concurrency-correctness lints (L1-L5) over ROOT (default:
the workspace root). Exits 0 when clean, 1 on findings, 2 on usage or I/O
errors. See the README's \"Correctness tooling\" section for the rule table
and the annotation syntax.";

/// The workspace root: two levels above this crate's manifest when built
/// in-tree, else the current directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|crates| crates.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint(root: &Path) -> ExitCode {
    match dsx_xtask::lint_root(root) {
        Ok(findings) if findings.is_empty() => {
            println!("dsx-xtask lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!(
                "dsx-xtask lint: {} finding(s) in {}",
                findings.len(),
                root.display()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("dsx-xtask lint: failed to scan {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
