//! A minimal Rust lexer: just enough to separate *code* from *comments*
//! and to blank out string/char-literal contents, so the lint passes in
//! [`crate::lints`] can match keywords and method calls textually without
//! tripping on `"unsafe"` inside a string or `.unwrap()` inside a doc
//! comment.
//!
//! Hand-rolled on purpose: the workspace builds offline against vendored
//! shims, so pulling `syn`/`proc-macro2` is not an option, and full parsing
//! is not needed — every lint here is a line-oriented rule over token text.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`, `/** .. */`), string literals with escapes, raw strings
//! (`r"..."`, `r#"..."#`, any hash depth, plus `b`/`c` prefixes), char and
//! byte literals (`'x'`, `b'\n'`, `'\u{1F600}'`), and lifetimes (`'a` is
//! *not* a char literal).

/// One source line, split into its code text and its comment text.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line with comments removed and string/char-literal *contents*
    /// replaced by spaces (the delimiting quotes survive, so token
    /// boundaries stay sane).
    pub code: String,
    /// The concatenated text of every comment that touches this line,
    /// including doc comments and the interior lines of a block comment.
    pub comment: String,
}

impl Line {
    /// True when the line carries no code at all (blank, or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// Lexer state that can span line boundaries.
enum State {
    Code,
    /// Inside a block comment, at the given nesting depth.
    Block(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(usize),
}

/// Splits `source` into per-line code/comment texts (see [`Line`]).
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw in source.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::Block(depth - 1);
                        }
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        line.comment.push_str("/*");
                        i += 2;
                        state = State::Block(depth + 1);
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        line.code.push(' ');
                        if i + 1 < chars.len() {
                            line.code.push(' ');
                        }
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        i += 1;
                        state = State::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i + 1, hashes) {
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        i += 1 + hashes;
                        state = State::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment (plain or doc): the rest of the line.
                        line.comment
                            .push_str(&chars[i..].iter().collect::<String>());
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        line.comment.push_str("/*");
                        i += 2;
                        state = State::Block(1);
                    } else if c == '"' {
                        line.code.push('"');
                        i += 1;
                        state = State::Str;
                    } else if c == 'r' && is_raw_string_start(&chars, i) {
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        line.code.push('r');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        line.code.push('"');
                        i = j + 1;
                        state = State::RawStr(hashes);
                    } else if c == '\'' {
                        if let Some(end) = char_literal_end(&chars, i) {
                            // Keep the quotes, blank the contents.
                            line.code.push('\'');
                            for _ in i + 1..end {
                                line.code.push(' ');
                            }
                            line.code.push('\'');
                            i = end + 1;
                        } else {
                            // A lifetime (or a stray quote): plain code.
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(line);
    }
    lines
}

/// True when `chars[from..]` is exactly `hashes` `#`s (the closing tail of
/// a raw string whose `"` was just seen).
fn closes_raw(chars: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(from + k) == Some(&'#'))
}

/// True when the `r` at `i` starts a raw string (`r"`, `r#"`, ...), rather
/// than being part of an identifier like `for` or `ptr`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// If the `'` at `i` opens a char/byte literal, returns the index of its
/// closing quote; returns `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        // Escape: scan forward to the first unescaped closing quote
        // (covers '\n', '\'', '\u{1F600}').
        Some('\\') => {
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => return Some(j),
                    _ => j += 1,
                }
            }
            None
        }
        // 'x' — a single char then the closing quote. ('a' the lifetime has
        // no closing quote in the next-but-one slot.)
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

/// Identifier-ish characters, for token-boundary checks shared with the
/// lint passes.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds every occurrence of the identifier-like token `needle` in `code`
/// that sits on its own token boundaries (so `unsafe` does not match
/// `unsafe_code`). Returns byte offsets.
pub fn find_token(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Marks the lines that belong to test-only code: everything from a
/// `#[cfg(test)]` / `#[test]` attribute through the end of the item's brace
/// block. Attribute lines themselves count as test lines.
pub fn test_lines(lines: &[Line]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depths at which a test item's block opened; while non-empty we are
    // inside test-only code (regions can nest, e.g. #[test] fns inside a
    // #[cfg(test)] mod).
    let mut regions: Vec<i64> = Vec::new();
    let mut pending = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[cfg(any(test")
        {
            pending = true;
        }
        if pending || !regions.is_empty() {
            out[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                // A braceless item ends the pending attribute's reach
                // (`#[cfg(test)] mod tests;` re-exports, `use` lines).
                ';' if pending && regions.is_empty() => {
                    pending = false;
                }
                _ => {}
            }
        }
        if !regions.is_empty() {
            out[idx] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let lines = lex("let x = \"unsafe // not code\"; // SAFETY: trailing\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("SAFETY"));
        assert!(lines[0].comment.contains("SAFETY: trailing"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = lex("/* outer /* inner */ still comment */ let y = 1;\nlet z = 2;\n");
        assert!(!lines[0].code.contains("comment"));
        assert!(lines[0].code.contains("let y = 1;"));
        assert!(lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let lines = lex("let s = r#\"has \" a quote and unsafe\"# ; call();\n");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("call();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines =
            lex("fn f<'a>(x: &'a str, c: char) -> &'a str { if c == 'x' { x } else { x } }\n");
        assert!(lines[0].code.contains("fn f<'a>"));
        // The 'x' literal's interior is blanked but its quotes remain.
        assert!(lines[0].code.contains("' '"));
    }

    #[test]
    fn escaped_char_literals_do_not_derail_the_lexer() {
        let lines = lex("let q = '\\''; let n = '\\n'; after();\n");
        assert!(lines[0].code.contains("after();"));
    }

    #[test]
    fn multiline_block_comment_text_lands_on_every_line() {
        let lines = lex("/* SAFETY: one\n   two */ code();\n");
        assert!(lines[0].comment.contains("SAFETY: one"));
        assert!(lines[1].comment.contains("two"));
        assert!(lines[1].code.contains("code();"));
    }

    #[test]
    fn find_token_respects_boundaries() {
        assert_eq!(find_token("unsafe_code unsafe code", "unsafe"), vec![12]);
        assert!(find_token("#![forbid(unsafe_code)]", "unsafe").is_empty());
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { body(); }\n}\nfn after() {}\n";
        let lines = lex(src);
        let test = test_lines(&lines);
        assert_eq!(test, vec![false, true, true, true, true, true, false]);
    }

    #[test]
    fn braceless_test_attr_does_not_leak() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn real() {}\n";
        let lines = lex(src);
        let test = test_lines(&lines);
        assert_eq!(test, vec![true, true, false]);
    }
}
