//! The repo-specific lint rules (`L1`–`L5`) over the lexed line model of
//! [`crate::lex`].
//!
//! | rule | requirement |
//! |------|-------------|
//! | `L1` | every `unsafe` block / fn / impl / field is preceded by (or carries) a `// SAFETY:` comment (a `/// # Safety` doc section also counts) |
//! | `L2` | no `.unwrap()` / `.expect(` / `panic!(` / `unreachable!(` in non-test library code, unless annotated `// lint: allow(panic) — <reason>` |
//! | `L3` | every `Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel` in non-test library code carries a `// ORDER:` justification (`SeqCst` is the conservative default and needs none) |
//! | `L4` | a crate whose sources contain zero `unsafe` tokens must declare `#![forbid(unsafe_code)]` in its `lib.rs` (or `main.rs` for bin-only crates) |
//! | `L5` | `thread::spawn` / `thread::Builder` only in `crates/tensor/src/pool.rs` (the persistent pool) and `crates/net` (connection threads), unless annotated `// lint: allow(thread) — <reason>` |
//!
//! **Scope.** Everything under `src/`, `crates/*/src`, `examples/` and
//! `tests/` is lexed; `vendor/` (offline registry shims), `target/` and any
//! directory named `fixtures` are skipped. `L1` applies to every scanned
//! line, tests included — an unjustified `unsafe` is never fine. `L2`/`L3`
//! apply only to *non-test library* code: integration tests, benches,
//! examples, `main.rs` / `src/bin` CLI code, in-file `#[cfg(test)]` /
//! `#[test]` regions and the `crates/bench` harness crate are exempt. `L5`
//! exempts test code only.
//!
//! **Annotations** live in comments on the flagged line or the contiguous
//! comment block directly above it, and must carry a reason, e.g.:
//! `// lint: allow(panic) — the slice is exactly 4 bytes by construction`.

use crate::lex::{find_token, lex, test_lines, Line};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id: `"L1"` … `"L5"`.
    pub rule: &'static str,
    /// Path relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// One lexed source file, with its path classified for rule scoping.
pub struct SourceFile {
    /// Path relative to the scanned root, with `/` separators.
    pub rel: String,
    pub lines: Vec<Line>,
    pub is_test_line: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` as the file at `rel` (root-relative, `/`-separated).
    pub fn parse(rel: &str, source: &str) -> SourceFile {
        let lines = lex(source);
        let is_test_line = test_lines(&lines);
        SourceFile {
            rel: rel.to_string(),
            lines,
            is_test_line,
        }
    }

    /// True for files that are test/bench/example/CLI code, where the
    /// panic-freedom and ordering-justification rules don't apply.
    fn is_test_scope(&self) -> bool {
        let rel = self.rel.as_str();
        rel.contains("/tests/")
            || rel.starts_with("tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
            || rel.starts_with("examples/")
            || rel.ends_with("/main.rs")
            || rel.contains("/src/bin/")
            // The bench harness crate is measurement tooling end to end;
            // its process dying on a broken invariant is the right outcome.
            || rel.starts_with("crates/bench/")
    }

    /// The crate directory this file belongs to (`crates/foo`), or `"."`
    /// for the umbrella package's `src/`.
    fn crate_root(&self) -> Option<String> {
        let mut parts = self.rel.split('/');
        match parts.next() {
            Some("crates") => parts.next().map(|name| format!("crates/{name}")),
            Some("src") => Some(".".to_string()),
            _ => None,
        }
    }

    /// True when line `idx` (0-based) or the contiguous comment/attribute
    /// block directly above it contains `marker` in a comment.
    fn justified(&self, idx: usize, markers: &[&str]) -> bool {
        let has = |line: &Line| markers.iter().any(|marker| line.comment.contains(marker));
        if has(&self.lines[idx]) {
            return true;
        }
        // Walk up through comment-only and attribute lines.
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let line = &self.lines[i];
            let code = line.code.trim();
            let is_attr = code.starts_with("#[") || code.starts_with("#![");
            if !code.is_empty() && !is_attr {
                return false;
            }
            if code.is_empty() && line.comment.is_empty() {
                return false; // a blank line breaks the block
            }
            if has(line) {
                return true;
            }
        }
        false
    }
}

/// Runs every rule over `files` (the whole scanned tree — `L4` needs the
/// cross-file view) and returns the findings sorted by rule, file, line.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        l1_unsafe_needs_safety(file, &mut findings);
        l2_no_panics_in_library(file, &mut findings);
        l3_atomics_need_order(file, &mut findings);
        l5_no_raw_thread_spawn(file, &mut findings);
    }
    l4_clean_crates_forbid_unsafe(files, &mut findings);
    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    findings
}

/// L1: every `unsafe` token needs a `SAFETY:` comment (or a `# Safety` doc
/// section) on the line or the comment block directly above. Applies to
/// tests too.
fn l1_unsafe_needs_safety(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if find_token(&line.code, "unsafe").is_empty() {
            continue;
        }
        if file.justified(idx, &["SAFETY:", "# Safety"]) {
            continue;
        }
        findings.push(Finding {
            rule: "L1",
            file: PathBuf::from(&file.rel),
            line: idx + 1,
            message: "`unsafe` without a `// SAFETY:` justification comment".to_string(),
        });
    }
}

/// The `L2` needles: a match requires the full text, so `.unwrap_or_else`
/// never matches `.unwrap()`.
const PANIC_NEEDLES: [&str; 4] = [".unwrap()", ".expect(", "panic!(", "unreachable!("];

/// L2: non-test library code must not panic, unless annotated
/// `// lint: allow(panic) — <reason>`.
fn l2_no_panics_in_library(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.is_test_scope() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test_line[idx] {
            continue;
        }
        for needle in PANIC_NEEDLES {
            let Some(at) = line.code.find(needle) else {
                continue;
            };
            // Token boundary on the leading identifier char (so
            // `debug_panic!(` or `their_unreachable!(` never match; the
            // leading `.` needles bound themselves).
            if !needle.starts_with('.') {
                let before = line.code[..at].chars().next_back();
                if before.is_some_and(crate::lex::is_ident_char) {
                    continue;
                }
            }
            if file.justified(idx, &["lint: allow(panic)"]) {
                continue;
            }
            findings.push(Finding {
                rule: "L2",
                file: PathBuf::from(&file.rel),
                line: idx + 1,
                message: format!(
                    "`{needle}` in non-test library code — return a typed error, or annotate \
                     `// lint: allow(panic) — <reason>`",
                ),
            });
            break; // one finding per line is enough
        }
    }
}

/// The orderings that need a justification; `SeqCst` is the conservative
/// default and is exempt.
const ORDERINGS: [&str; 4] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// L3: every non-`SeqCst` atomic ordering in non-test library code needs a
/// `// ORDER:` comment explaining why the weaker ordering is sound.
fn l3_atomics_need_order(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.is_test_scope() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test_line[idx] {
            continue;
        }
        if !ORDERINGS.iter().any(|o| line.code.contains(o)) {
            continue;
        }
        if file.justified(idx, &["ORDER:"]) {
            continue;
        }
        findings.push(Finding {
            rule: "L3",
            file: PathBuf::from(&file.rel),
            line: idx + 1,
            message: "relaxed/acquire/release atomic ordering without a `// ORDER:` \
                      justification comment"
                .to_string(),
        });
    }
}

/// L4: a crate with zero `unsafe` in its sources must say so in its crate
/// root via `#![forbid(unsafe_code)]`, turning "happens to be clean" into a
/// compiler-enforced guarantee.
fn l4_clean_crates_forbid_unsafe(files: &[SourceFile], findings: &mut Vec<Finding>) {
    use std::collections::BTreeMap;
    // crate root dir -> (has unsafe anywhere, crate-root file rel + has forbid)
    let mut crates: BTreeMap<String, (bool, Option<(String, bool)>)> = BTreeMap::new();
    for file in files {
        let Some(root) = file.crate_root() else {
            continue;
        };
        // Only library/binary sources define the crate; its integration
        // tests are separate crates.
        if file.rel.contains("/tests/") || file.rel.contains("/benches/") {
            continue;
        }
        let entry = crates.entry(root.clone()).or_default();
        if file
            .lines
            .iter()
            .any(|line| !find_token(&line.code, "unsafe").is_empty())
        {
            entry.0 = true;
        }
        let is_lib = file.rel.ends_with("src/lib.rs");
        let is_main = file.rel.ends_with("src/main.rs");
        if is_lib || (is_main && entry.1.is_none()) {
            let forbids = file
                .lines
                .iter()
                .any(|line| line.code.contains("#![forbid(unsafe_code)]"));
            // lib.rs wins over main.rs as the crate root.
            if is_lib
                || entry
                    .1
                    .as_ref()
                    .is_none_or(|(rel, _)| !rel.ends_with("lib.rs"))
            {
                entry.1 = Some((file.rel.clone(), forbids));
            }
        }
    }
    for (root, (has_unsafe, crate_root_file)) in crates {
        if has_unsafe {
            continue;
        }
        match crate_root_file {
            Some((_, true)) => {}
            Some((rel, false)) => findings.push(Finding {
                rule: "L4",
                file: PathBuf::from(rel),
                line: 1,
                message: format!(
                    "crate `{root}` contains no unsafe code but does not declare \
                     `#![forbid(unsafe_code)]`",
                ),
            }),
            None => {} // no lib.rs/main.rs scanned (not a crate dir)
        }
    }
}

/// Files and directories where spawning OS threads is the *point*.
const SPAWN_ALLOWED: [&str; 3] = ["crates/tensor/src/pool.rs", "crates/net/", "crates/chaos/"];

/// L5: everything outside the persistent pool, the network front-end and
/// the chaos proxy (whose per-connection pump threads are the tool) must
/// schedule work on the pool, not spawn raw threads.
fn l5_no_raw_thread_spawn(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.is_test_scope() {
        return;
    }
    if SPAWN_ALLOWED
        .iter()
        .any(|allowed| file.rel == *allowed || file.rel.starts_with(allowed))
    {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test_line[idx] {
            continue;
        }
        if !line.code.contains("thread::spawn") && !line.code.contains("thread::Builder") {
            continue;
        }
        if file.justified(idx, &["lint: allow(thread)"]) {
            continue;
        }
        findings.push(Finding {
            rule: "L5",
            file: PathBuf::from(&file.rel),
            line: idx + 1,
            message: "raw thread spawn outside the persistent pool (`crates/tensor/src/pool.rs`), \
                      `crates/net` and `crates/chaos` — schedule on `dsx_tensor::par`, or \
                      annotate `// lint: allow(thread) — <reason>`"
                .to_string(),
        });
    }
}

/// Recursively collects the `.rs` files to lint under `root`, returning
/// root-relative `/`-separated paths in sorted order. Skips `vendor/`
/// (offline registry shims, not this repo's code), `target/`, hidden
/// directories, and any directory named `fixtures` (lint-test corpora
/// contain deliberate violations).
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.')
                    || name == "target"
                    || name == "vendor"
                    || name == "fixtures"
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_path_buf());
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the repository at `root`: collects, lexes and runs every rule.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for rel in collect_sources(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        files.push(SourceFile::parse(&rel, &source));
    }
    Ok(run_all(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, source: &str) -> Vec<Finding> {
        run_all(&[SourceFile::parse(rel, source)])
    }

    #[test]
    fn l1_flags_bare_unsafe_and_accepts_safety_comments() {
        let bad = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "L1");
        assert_eq!(bad[0].line, 2);
        let good = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        );
        assert!(good.iter().all(|f| f.rule != "L1"), "{good:?}");
    }

    #[test]
    fn l1_accepts_doc_safety_sections_through_attributes() {
        let good = lint_one(
            "crates/foo/src/lib.rs",
            "/// # Safety\n/// p must be valid.\n#[inline]\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: contract forwarded.\n    unsafe { *p }\n}\n",
        );
        assert!(good.iter().all(|f| f.rule != "L1"), "{good:?}");
    }

    #[test]
    fn l2_flags_unwrap_in_library_but_not_tests_or_allows() {
        let bad = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        );
        assert_eq!(bad.iter().filter(|f| f.rule == "L2").count(), 1);
        assert_eq!(bad[0].line, 2);
        let tests = lint_one(
            "crates/foo/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n",
        );
        assert!(tests.iter().all(|f| f.rule != "L2"), "{tests:?}");
        let allowed = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    // lint: allow(panic) — x is Some by construction.\n    x.unwrap()\n}\n",
        );
        assert!(allowed.iter().all(|f| f.rule != "L2"), "{allowed:?}");
    }

    #[test]
    fn l2_ignores_unwrap_or_else_and_main_rs() {
        let clean = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or_else(|| 0)\n}\n",
        );
        assert!(clean.iter().all(|f| f.rule != "L2"));
        let cli = lint_one(
            "crates/foo/src/main.rs",
            "fn main() {\n    std::env::args().next().unwrap();\n}\n",
        );
        assert!(cli.iter().all(|f| f.rule != "L2"));
    }

    #[test]
    fn l3_flags_unjustified_relaxed_orderings() {
        let bad = lint_one(
            "crates/foo/src/lib.rs",
            "use std::sync::atomic::{AtomicUsize, Ordering};\npub fn f(c: &AtomicUsize) -> usize {\n    c.load(Ordering::Relaxed)\n}\n",
        );
        assert_eq!(bad.iter().filter(|f| f.rule == "L3").count(), 1);
        assert_eq!(bad[0].line, 3);
        let good = lint_one(
            "crates/foo/src/lib.rs",
            "use std::sync::atomic::{AtomicUsize, Ordering};\npub fn f(c: &AtomicUsize) -> usize {\n    // ORDER: monotonic counter, no other memory depends on it.\n    c.load(Ordering::Relaxed)\n}\n",
        );
        assert!(good.iter().all(|f| f.rule != "L3"), "{good:?}");
        let seqcst = lint_one(
            "crates/foo/src/lib.rs",
            "use std::sync::atomic::{AtomicUsize, Ordering};\npub fn f(c: &AtomicUsize) -> usize {\n    c.load(Ordering::SeqCst)\n}\n",
        );
        assert!(seqcst.iter().all(|f| f.rule != "L3"), "{seqcst:?}");
    }

    #[test]
    fn l4_requires_forbid_only_in_clean_crates() {
        let clean_without = SourceFile::parse("crates/foo/src/lib.rs", "pub fn f() {}\n");
        let findings = run_all(&[clean_without]);
        assert_eq!(findings.iter().filter(|f| f.rule == "L4").count(), 1);
        let clean_with = SourceFile::parse(
            "crates/foo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(run_all(&[clean_with]).iter().all(|f| f.rule != "L4"));
        let with_unsafe = SourceFile::parse(
            "crates/foo/src/lib.rs",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: test stub.\n    unsafe { *p }\n}\n",
        );
        assert!(run_all(&[with_unsafe]).iter().all(|f| f.rule != "L4"));
    }

    #[test]
    fn l5_flags_spawns_outside_the_pool_and_net() {
        let bad = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        );
        assert_eq!(bad.iter().filter(|f| f.rule == "L5").count(), 1);
        let pool = lint_one(
            "crates/tensor/src/pool.rs",
            "pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        );
        assert!(pool.iter().all(|f| f.rule != "L5"));
        let net = lint_one(
            "crates/net/src/server.rs",
            "pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        );
        assert!(net.iter().all(|f| f.rule != "L5"));
        let chaos = lint_one(
            "crates/chaos/src/lib.rs",
            "pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        );
        assert!(chaos.iter().all(|f| f.rule != "L5"));
        let allowed = lint_one(
            "crates/foo/src/lib.rs",
            "pub fn f() {\n    // lint: allow(thread) — long-lived supervisor, not kernel work.\n    std::thread::spawn(|| {});\n}\n",
        );
        assert!(allowed.iter().all(|f| f.rule != "L5"), "{allowed:?}");
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let clean = lint_one(
            "crates/foo/src/lib.rs",
            "//! Docs mention .unwrap() and unsafe and Ordering::Relaxed freely.\npub fn f() -> &'static str {\n    \"panic!( and .unwrap() and thread::spawn in a string\"\n}\n",
        );
        assert!(
            clean.iter().all(|f| f.rule == "L4"),
            "only the forbid(unsafe_code) finding may remain: {clean:?}"
        );
    }
}
