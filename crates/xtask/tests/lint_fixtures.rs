//! End-to-end checks for `dsx-xtask lint`: the seeded `bad` fixture must
//! trip every rule at exactly the seeded line, its `good` twin must be
//! clean, and — the real deliverable — the repository itself must be
//! clean, so a regression anywhere in the workspace fails this test
//! before CI even reaches the dedicated lint job.

use dsx_xtask::lint_root;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// `(rule, file, line)` triples of a lint run, normalized for comparison.
fn triples(root: &Path) -> Vec<(String, String, usize)> {
    lint_root(root)
        .expect("fixture tree is readable")
        .into_iter()
        .map(|f| {
            (
                f.rule.to_string(),
                f.file.to_string_lossy().replace('\\', "/"),
                f.line,
            )
        })
        .collect()
}

#[test]
fn bad_fixture_trips_every_rule_at_the_seeded_lines() {
    let got = triples(&fixture("bad"));
    let want = vec![
        ("L1".to_string(), "crates/demo/src/lib.rs".to_string(), 8),
        ("L2".to_string(), "crates/demo/src/lib.rs".to_string(), 12),
        ("L3".to_string(), "crates/demo/src/lib.rs".to_string(), 16),
        ("L4".to_string(), "crates/pure/src/lib.rs".to_string(), 1),
        ("L5".to_string(), "crates/demo/src/lib.rs".to_string(), 20),
    ];
    assert_eq!(got, want, "exact findings (sorted by rule/file/line)");
}

#[test]
fn good_fixture_is_clean() {
    let got = triples(&fixture("good"));
    assert!(
        got.is_empty(),
        "good twins must produce no findings: {got:?}"
    );
}

#[test]
fn the_repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the repo root");
    let findings = lint_root(root).expect("repo tree is readable");
    assert!(
        findings.is_empty(),
        "the repository must pass its own lint:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
