//! Good twin for L5's allow-list: `crates/net/` may spawn raw threads
//! (connection reader/writer pairs) without an annotation.

#![forbid(unsafe_code)]

pub fn spawn_is_allowed_here() {
    std::thread::spawn(|| {});
}
