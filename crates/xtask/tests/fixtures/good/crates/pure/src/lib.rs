//! Good twin of the L4 fixture: an unsafe-free crate that declares the
//! forbid, as L4 requires.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
