//! Good twin of the `bad` fixture: the same constructs, each carrying the
//! justification the lint accepts. The integration test asserts this tree
//! produces zero findings.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn l1_unsafe_with_safety(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points to a live, initialized byte.
    unsafe { *p }
}

pub fn l2_unwrap_with_allow(v: Option<u8>) -> u8 {
    // lint: allow(panic) — fixture: a documented contract panic.
    v.unwrap()
}

pub fn l2_unwrap_with_trailing_allow(v: Option<u8>) -> u8 {
    v.unwrap() // lint: allow(panic) — same-line form is accepted too
}

pub fn l3_relaxed_with_order(flag: &AtomicBool) -> bool {
    // ORDER: standalone flag, no memory is published through it.
    flag.load(Ordering::Relaxed)
}

pub fn l3_seqcst_needs_no_comment(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}

pub fn l5_spawn_with_allow() {
    // lint: allow(thread) — fixture: a justified long-lived helper thread.
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn l2_is_exempt_in_test_code() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
