//! Seeded L4 fixture: a crate with zero unsafe code that fails to declare
//! `#![forbid(unsafe_code)]` — flagged at line 1 of this file.

pub fn answer() -> u32 {
    42
}
