//! Seeded-violation fixture: every lint rule must fire here, at exactly
//! the line the integration test pins. Keep line numbers stable — the
//! test asserts them.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn l1_unsafe_without_safety(p: *const u8) -> u8 {
    unsafe { *p } // line 8: L1 — no SAFETY comment
}

pub fn l2_unwrap_in_library(v: Option<u8>) -> u8 {
    v.unwrap() // line 12: L2 — no allow(panic) annotation
}

pub fn l3_relaxed_without_order(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed) // line 16: L3 — no ORDER comment
}

pub fn l5_spawn_outside_the_pool() {
    std::thread::spawn(|| {}); // line 20: L5 — raw spawn outside crates/tensor pool / crates/net
}
