//! Synthetic cross-channel classification datasets.

use dsx_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image channels (3 for the RGB-like presets).
    pub channels: usize,
    /// Square image edge length.
    pub image_size: usize,
    /// Number of training images.
    pub train_size: usize,
    /// Number of test images.
    pub test_size: usize,
    /// Standard deviation of the additive pixel noise.
    pub noise: f32,
    /// Number of shared spatial basis patterns mixed into every image.
    pub basis_patterns: usize,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
}

impl DatasetConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes < 2 {
            return Err("need at least two classes".into());
        }
        if self.channels == 0 || self.image_size == 0 {
            return Err("channels and image_size must be positive".into());
        }
        if self.train_size == 0 || self.test_size == 0 {
            return Err("train and test sizes must be positive".into());
        }
        if self.basis_patterns == 0 {
            return Err("need at least one basis pattern".into());
        }
        if self.noise.is_nan() || self.noise < 0.0 {
            return Err("noise must be non-negative".into());
        }
        Ok(())
    }
}

/// A set of labelled images in NCHW layout.
#[derive(Debug, Clone)]
pub struct LabeledImages {
    /// Images, `[N, C, H, W]`, roughly zero-centred.
    pub images: Tensor,
    /// One class index per image.
    pub labels: Vec<usize>,
}

impl LabeledImages {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits the set into mini-batches of at most `batch_size` samples,
    /// preserving order. The last batch may be smaller.
    pub fn batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch_size must be positive");
        let n = self.len();
        let (c, h, w) = (self.images.dim(1), self.images.dim(2), self.images.dim(3));
        let plane = c * h * w;
        let mut out = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let data = self.images.as_slice()[start * plane..end * plane].to_vec();
            out.push((
                Tensor::from_vec(data, &[end - start, c, h, w]),
                self.labels[start..end].to_vec(),
            ));
            start = end;
        }
        out
    }

    /// Per-class sample counts (useful for checking balance).
    pub fn class_histogram(&self, classes: usize) -> Vec<usize> {
        let mut hist = vec![0usize; classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

/// A generated train/test split.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Configuration the dataset was generated from.
    pub config: DatasetConfig,
    /// Training split.
    pub train: LabeledImages,
    /// Test split.
    pub test: LabeledImages,
}

/// Generates a dataset where each class is identified by its cross-channel
/// mixing signature over a shared set of spatial basis patterns.
pub fn generate(config: &DatasetConfig) -> SyntheticDataset {
    // lint: allow(panic) — documented contract: callers validate (or
    // construct via the checked builders); a bad config is programmer
    // error, not runtime input.
    config.validate().expect("invalid dataset configuration");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let plane = config.image_size * config.image_size;
    // Shared spatial basis patterns (smooth-ish random fields).
    let basis: Vec<Vec<f32>> = (0..config.basis_patterns)
        .map(|p| init::normal_vec(plane, 0.0, 1.0, config.seed.wrapping_add(1000 + p as u64)))
        .collect();
    // Class signatures: for every class, a [channels x basis] mixing matrix.
    // Classes differ in how the SAME spatial patterns are distributed across
    // channels, so cross-channel fusion is required to separate them.
    let signatures: Vec<Vec<f32>> = (0..config.classes)
        .map(|k| {
            init::uniform_vec(
                config.channels * config.basis_patterns,
                -1.0,
                1.0,
                config.seed.wrapping_add(5000 + k as u64),
            )
        })
        .collect();

    let mut make_split = |count: usize, split_seed: u64| -> LabeledImages {
        let mut images =
            Tensor::zeros(&[count, config.channels, config.image_size, config.image_size]);
        let mut labels = Vec::with_capacity(count);
        let noise = init::normal_vec(
            count * config.channels * plane,
            0.0,
            config.noise,
            split_seed,
        );
        let data = images.as_mut_slice();
        for i in 0..count {
            let class = rng.gen_range(0..config.classes);
            labels.push(class);
            // Per-image random coefficients over the basis patterns give
            // within-class variability.
            let coeffs = init::uniform_vec(
                config.basis_patterns,
                0.5,
                1.5,
                split_seed
                    .wrapping_mul(31)
                    .wrapping_add(i as u64)
                    .wrapping_add(config.seed),
            );
            let sig = &signatures[class];
            for c in 0..config.channels {
                let base = (i * config.channels + c) * plane;
                for (p, basis_pattern) in basis.iter().enumerate() {
                    let weight = sig[c * config.basis_patterns + p] * coeffs[p];
                    for (px, &b) in basis_pattern.iter().enumerate() {
                        data[base + px] += weight * b;
                    }
                }
                for px in 0..plane {
                    data[base + px] += noise[base + px];
                }
            }
        }
        LabeledImages { images, labels }
    };

    let train = make_split(config.train_size, config.seed.wrapping_add(11));
    let test = make_split(config.test_size, config.seed.wrapping_add(22));
    SyntheticDataset {
        config: config.clone(),
        train,
        test,
    }
}

/// CIFAR-10-like preset: 32×32×3 images, 10 classes. `scale` shrinks the
/// image size and sample counts together so tests and laptop experiments can
/// choose their budget (scale 1 = 32×32; scale 4 = 8×8).
pub fn cifar_like(
    train_size: usize,
    test_size: usize,
    scale: usize,
    seed: u64,
) -> SyntheticDataset {
    let scale = scale.max(1);
    generate(&DatasetConfig {
        classes: 10,
        channels: 3,
        image_size: (32 / scale).max(4),
        train_size,
        test_size,
        noise: 0.3,
        basis_patterns: 6,
        seed,
    })
}

/// Reduced ImageNet-like preset: 64×64×3 images, 100 classes.
pub fn imagenet_like(
    train_size: usize,
    test_size: usize,
    scale: usize,
    seed: u64,
) -> SyntheticDataset {
    let scale = scale.max(1);
    generate(&DatasetConfig {
        classes: 100,
        channels: 3,
        image_size: (64 / scale).max(8),
        train_size,
        test_size,
        noise: 0.3,
        basis_patterns: 10,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DatasetConfig {
        DatasetConfig {
            classes: 4,
            channels: 3,
            image_size: 8,
            train_size: 64,
            test_size: 32,
            noise: 0.2,
            basis_patterns: 4,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&tiny_config());
        let b = generate(&tiny_config());
        assert_eq!(a.train.images.as_slice(), b.train.images.as_slice());
        assert_eq!(a.train.labels, b.train.labels);
        let mut different = tiny_config();
        different.seed = 43;
        let c = generate(&different);
        assert_ne!(a.train.labels, c.train.labels);
    }

    #[test]
    fn shapes_match_configuration() {
        let ds = generate(&tiny_config());
        assert_eq!(ds.train.images.shape(), &[64, 3, 8, 8]);
        assert_eq!(ds.test.images.shape(), &[32, 3, 8, 8]);
        assert_eq!(ds.train.len(), 64);
        assert!(!ds.test.is_empty());
    }

    #[test]
    fn labels_are_in_range_and_all_classes_appear() {
        let ds = generate(&tiny_config());
        assert!(ds.train.labels.iter().all(|&l| l < 4));
        let hist = ds.train.class_histogram(4);
        assert!(hist.iter().all(|&c| c > 0), "class histogram {hist:?}");
    }

    #[test]
    fn batches_cover_all_samples_without_overlap() {
        let ds = generate(&tiny_config());
        let batches = ds.train.batches(10);
        assert_eq!(batches.len(), 7);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 64);
        assert_eq!(batches.last().unwrap().1.len(), 4);
        // First batch images are exactly the first ten images.
        let (imgs, _) = &batches[0];
        assert_eq!(imgs.as_slice(), &ds.train.images.as_slice()[..10 * 3 * 64]);
    }

    #[test]
    fn classes_are_separable_by_cross_channel_statistics() {
        // A nearest-centroid classifier on per-channel-pair correlation
        // features must beat chance by a wide margin — evidence that the
        // class signal lives in cross-channel structure.
        let mut cfg = tiny_config();
        cfg.train_size = 200;
        cfg.test_size = 100;
        let ds = generate(&cfg);

        let feature = |images: &Tensor, i: usize| -> Vec<f32> {
            let c = images.dim(1);
            let plane = images.dim(2) * images.dim(3);
            let mut f = Vec::new();
            for a in 0..c {
                for b in 0..c {
                    let xa = &images.as_slice()[(i * c + a) * plane..(i * c + a + 1) * plane];
                    let xb = &images.as_slice()[(i * c + b) * plane..(i * c + b + 1) * plane];
                    let dot: f32 = xa.iter().zip(xb).map(|(p, q)| p * q).sum();
                    f.push(dot / plane as f32);
                }
            }
            f
        };

        let dim = cfg.channels * cfg.channels;
        let mut centroids = vec![vec![0.0f32; dim]; cfg.classes];
        let mut counts = vec![0usize; cfg.classes];
        for i in 0..ds.train.len() {
            let f = feature(&ds.train.images, i);
            let k = ds.train.labels[i];
            counts[k] += 1;
            for (c, v) in centroids[k].iter_mut().zip(f) {
                *c += v;
            }
        }
        for (k, centroid) in centroids.iter_mut().enumerate() {
            for v in centroid.iter_mut() {
                *v /= counts[k].max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..ds.test.len() {
            let f = feature(&ds.test.images, i);
            let best = (0..cfg.classes)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a]
                        .iter()
                        .zip(&f)
                        .map(|(c, v)| (c - v) * (c - v))
                        .sum();
                    let db: f32 = centroids[b]
                        .iter()
                        .zip(&f)
                        .map(|(c, v)| (c - v) * (c - v))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == ds.test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / ds.test.len() as f32;
        assert!(
            acc > 0.5,
            "cross-channel features only reach {acc} accuracy"
        );
    }

    #[test]
    fn presets_have_paper_like_geometry() {
        let cifar = cifar_like(32, 16, 1, 7);
        assert_eq!(cifar.train.images.shape(), &[32, 3, 32, 32]);
        assert_eq!(cifar.config.classes, 10);
        let imagenet = imagenet_like(16, 8, 2, 7);
        assert_eq!(imagenet.train.images.shape(), &[16, 3, 32, 32]);
        assert_eq!(imagenet.config.classes, 100);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = tiny_config();
        cfg.classes = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny_config();
        cfg.train_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny_config();
        cfg.noise = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn batches_reject_zero_batch_size() {
        generate(&tiny_config()).train.batches(0);
    }
}
