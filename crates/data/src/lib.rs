//! # dsx-data
//!
//! Synthetic image-classification datasets used in place of CIFAR-10 and
//! ImageNet.
//!
//! The paper's accuracy experiments (Tables II–IV) need datasets whose
//! classes can only be separated by *fusing information across channels* —
//! that is precisely the capability that distinguishes SCC (overlapping
//! channel windows) from GPW (segregated windows). The generator in
//! [`synthetic`] therefore assigns each class a distinct *cross-channel
//! mixing signature*: every image is built from shared spatial basis
//! patterns whose per-channel mixing weights are class-specific, plus noise.
//! A classifier that can only look at channels within one group sees a
//! harder problem than one that can combine evidence across groups, so the
//! accuracy ordering the paper reports (PW ≈ SCC > GPW) is reproducible at
//! laptop scale.
//!
//! Two presets mirror the paper's datasets:
//!
//! * [`cifar_like`] — 32×32×3, 10 classes;
//! * [`imagenet_like`] — 64×64×3, 100 classes (a reduced stand-in; the real
//!   ImageNet is neither redistributable nor trainable on one CPU core).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;

pub use synthetic::{cifar_like, imagenet_like, DatasetConfig, LabeledImages};
