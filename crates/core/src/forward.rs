//! Output-centric SCC forward kernel (paper §IV-B).
//!
//! The GPU implementation launches `N * Cout * Fw * Fw` threads, one per
//! output pixel; each thread performs a `group_width`-long dot product
//! between a filter's weights and the pixels of its input-channel window at
//! the same spatial position. The properties the paper highlights —
//!
//! 1. no data duplication (every thread indexes the original input tensor),
//! 2. good locality (threads of one output channel share the same weights and
//!    walk the same input-channel window),
//! 3. no inter-thread contention (each output value has exactly one writer)
//!
//! — are preserved by the CPU port: each *output-channel plane*
//! (`Fw × Fw` values of one `(n, oc)` pair) is an independent chunk handed to
//! one worker thread, and the channel-cyclic map (Algorithm 2) is computed
//! once and shared read-only by all workers.

use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::reference::{dims4, validate_shapes};
use crate::stats::KernelStats;
use dsx_tensor::{par, Tensor};

/// Output-centric forward pass of the sliding-channel convolution.
///
/// * `input`  — `[N, Cin, H, W]`
/// * `weight` — `[Cout, group_width]`
/// * `bias`   — optional `[Cout]`
/// * `stats`  — optional instrumentation counters
///
/// Returns `[N, Cout, H, W]`.
pub fn scc_forward(
    cfg: &SccConfig,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stats: Option<&KernelStats>,
) -> Tensor {
    let map = ChannelCycleMap::build(cfg);
    scc_forward_with_map(cfg, &map, input, weight, bias, stats)
}

/// Same as [`scc_forward`] but reuses a prebuilt [`ChannelCycleMap`]; layers
/// call this so the cycle map is built once at construction time rather than
/// per batch (the index-reuse part of the channel-cyclic optimization).
pub fn scc_forward_with_map(
    cfg: &SccConfig,
    map: &ChannelCycleMap,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stats: Option<&KernelStats>,
) -> Tensor {
    validate_shapes(cfg, input, weight, bias);
    let (n, cin, h, w) = dims4(input);
    let cout = cfg.cout();
    let gw = cfg.group_width();
    let plane = h * w;

    let mut output = Tensor::zeros(&[n, cout, h, w]);
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let b_data = bias.map(|b| b.as_slice());

    // One chunk per (image, output channel) plane: a single writer per chunk,
    // mirroring "no inter-thread contention" on the GPU.
    par::parallel_for_each_chunk_mut(output.as_mut_slice(), plane, |chunk_idx, out_plane| {
        let img = chunk_idx / cout;
        let oc = chunk_idx % cout;
        let window = map.window_for_output(oc);
        let filter = &w_data[oc * gw..(oc + 1) * gw];
        let b = b_data.map(|b| b[oc]).unwrap_or(0.0);

        out_plane.iter_mut().for_each(|v| *v = b);
        // Accumulate channel by channel: the inner loop is a unit-stride AXPY
        // over the spatial plane, the cache-friendly order on CPUs.
        for (j, &wj) in filter.iter().enumerate() {
            let ic = window.channel_at(j);
            let in_plane = &in_data[(img * cin + ic) * plane..(img * cin + ic + 1) * plane];
            for (o, &iv) in out_plane.iter_mut().zip(in_plane.iter()) {
                *o += wj * iv;
            }
        }
    });

    if let Some(s) = stats {
        s.add_launch();
        s.add_macs(n * cout * plane * gw);
        // The kernel writes only the output tensor; nothing intermediate is
        // materialised (key contrast with the operator compositions).
        s.add_bytes_moved(output.bytes());
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::scc_forward_reference;
    use dsx_tensor::{allclose, TEST_TOLERANCE};
    use proptest::prelude::*;

    fn run_case(cin: usize, cout: usize, cg: usize, co: f64, n: usize, hw: usize) {
        let cfg = SccConfig::new(cin, cout, cg, co).unwrap();
        let input = Tensor::randn(&[n, cin, hw, hw], 7);
        let weight = Tensor::randn(&[cout, cfg.group_width()], 8);
        let bias = Tensor::randn(&[cout], 9);
        let fast = scc_forward(&cfg, &input, &weight, Some(&bias), None);
        let slow = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        assert!(
            allclose(&fast, &slow, TEST_TOLERANCE),
            "kernel diverges from reference for cin={cin} cout={cout} cg={cg} co={co}"
        );
    }

    #[test]
    fn matches_reference_on_paper_settings() {
        run_case(16, 32, 2, 0.5, 2, 5);
        run_case(16, 32, 4, 0.5, 1, 4);
        run_case(16, 32, 8, 0.5, 1, 4);
        run_case(12, 24, 2, 0.33, 2, 3);
        run_case(16, 16, 2, 0.25, 1, 6);
        run_case(16, 16, 2, 0.75, 1, 6);
    }

    #[test]
    fn matches_reference_for_pw_and_gpw_corners() {
        run_case(8, 12, 1, 0.0, 1, 4); // pointwise
        run_case(8, 12, 4, 0.0, 1, 4); // GPW
    }

    #[test]
    fn output_shape_is_nchw_with_cout_channels() {
        let cfg = SccConfig::new(8, 20, 2, 0.5).unwrap();
        let input = Tensor::randn(&[3, 8, 6, 7], 1);
        let weight = Tensor::randn(&[20, 4], 2);
        let out = scc_forward(&cfg, &input, &weight, None, None);
        assert_eq!(out.shape(), &[3, 20, 6, 7]);
    }

    #[test]
    fn bias_shifts_every_pixel_of_the_channel() {
        let cfg = SccConfig::new(4, 4, 2, 0.5).unwrap();
        let input = Tensor::zeros(&[1, 4, 3, 3]);
        let weight = Tensor::randn(&[4, 2], 3);
        let bias = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]);
        let out = scc_forward(&cfg, &input, &weight, Some(&bias), None);
        for oc in 0..4 {
            for y in 0..3 {
                for x in 0..3 {
                    assert_eq!(out.at4(0, oc, y, x), bias.as_slice()[oc]);
                }
            }
        }
    }

    #[test]
    fn stats_record_macs_and_single_launch() {
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let input = Tensor::randn(&[2, 8, 4, 4], 5);
        let weight = Tensor::randn(&[16, 4], 6);
        let stats = KernelStats::new();
        scc_forward(&cfg, &input, &weight, None, Some(&stats));
        assert_eq!(stats.kernel_launches(), 1);
        assert_eq!(stats.macs(), cfg.forward_macs(2, 4));
        assert_eq!(stats.bytes_materialized(), 0);
    }

    /// Property-test case count: full natively, minimal under Miri or
    /// `DSX_TEST_FAST` (sanitizer/interpreter runs need the coverage, not
    /// the volume).
    fn prop_cases(full: u32) -> u32 {
        if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
            2
        } else {
            full
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(prop_cases(24)))]

        #[test]
        fn prop_kernel_equals_reference(
            cg_pow in 0u32..3,
            cin_mult in 1usize..4,
            cout in 1usize..20,
            co in prop::sample::select(vec![0.0f64, 0.25, 0.33, 0.5, 0.66, 0.75]),
            n in 1usize..3,
            hw in 1usize..5,
            seed in 0u64..500,
        ) {
            let cg = 1usize << cg_pow;
            let cin = cg * cin_mult;
            let cfg = match SccConfig::new(cin, cout, cg, co) {
                Ok(c) => c,
                Err(_) => return Ok(()), // skip degenerate combinations
            };
            let input = Tensor::randn(&[n, cin, hw, hw], seed);
            let weight = Tensor::randn(&[cout, cfg.group_width()], seed + 1);
            let fast = scc_forward(&cfg, &input, &weight, None, None);
            let slow = scc_forward_reference(&cfg, &input, &weight, None);
            prop_assert!(allclose(&fast, &slow, TEST_TOLERANCE));
        }
    }
}
