//! Kernel instrumentation counters.
//!
//! The paper supports its implementation claims with NVProf measurements
//! (atomic-operation counts for the backward study, memory consumption for
//! the channel-cyclic study). Our kernels and operator-composition baselines
//! record the equivalent quantities directly as they run, so experiments can
//! report them without an external profiler.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-safe counters accumulated while a kernel or an operator composition
/// executes.
///
/// **Memory ordering.** Each field is an independent instrumentation
/// counter: nothing synchronises through them, readers run after the
/// kernels they measure have been joined (the pool's completion latch is
/// the happens-before edge), and a racy read would at worst smear a
/// profiler number. `Relaxed` is sound on every access — the per-site
/// `// ORDER:` tags below point back here.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Multiply-accumulate operations performed.
    macs: AtomicUsize,
    /// Atomic read-modify-write updates a GPU implementation would need
    /// (scatter-adds into shared gradient buffers).
    atomic_updates: AtomicUsize,
    /// Bytes of intermediate tensors materialised (slices, concatenations,
    /// im2col buffers) — the quantity Fig. 10 plots.
    bytes_materialized: AtomicUsize,
    /// Bytes copied between tensors (data movement of slicing / concat).
    bytes_moved: AtomicUsize,
    /// Number of logical kernel launches / framework operator invocations.
    kernel_launches: AtomicUsize,
}

impl KernelStats {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` multiply-accumulates.
    pub fn add_macs(&self, n: usize) {
        self.macs.fetch_add(n, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Adds `n` atomic updates.
    pub fn add_atomics(&self, n: usize) {
        self.atomic_updates.fetch_add(n, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Adds `n` bytes of materialised intermediate storage.
    pub fn add_bytes_materialized(&self, n: usize) {
        self.bytes_materialized.fetch_add(n, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Adds `n` bytes of copies between buffers.
    pub fn add_bytes_moved(&self, n: usize) {
        self.bytes_moved.fetch_add(n, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Records one kernel launch / operator invocation.
    pub fn add_launch(&self) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Records `n` kernel launches.
    pub fn add_launches(&self, n: usize) {
        self.kernel_launches.fetch_add(n, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> usize {
        self.macs.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Atomic update count.
    pub fn atomic_updates(&self) -> usize {
        self.atomic_updates.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Materialised intermediate bytes.
    pub fn bytes_materialized(&self) -> usize {
        self.bytes_materialized.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Moved bytes.
    pub fn bytes_moved(&self) -> usize {
        self.bytes_moved.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Kernel launch count.
    pub fn kernel_launches(&self) -> usize {
        self.kernel_launches.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.macs.store(0, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.atomic_updates.store(0, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.bytes_materialized.store(0, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.bytes_moved.store(0, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.kernel_launches.store(0, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Snapshot of the counters as a plain-old-data summary.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            macs: self.macs(),
            atomic_updates: self.atomic_updates(),
            bytes_materialized: self.bytes_materialized(),
            bytes_moved: self.bytes_moved(),
            kernel_launches: self.kernel_launches(),
        }
    }
}

/// Plain-old-data snapshot of [`KernelStats`], suitable for diffing and
/// reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Multiply-accumulate operations performed.
    pub macs: usize,
    /// Atomic updates a GPU implementation would need.
    pub atomic_updates: usize,
    /// Bytes of intermediate tensors materialised.
    pub bytes_materialized: usize,
    /// Bytes copied between buffers.
    pub bytes_moved: usize,
    /// Kernel launches / operator invocations.
    pub kernel_launches: usize,
}

impl StatsSnapshot {
    /// Elementwise sum of two snapshots.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            macs: self.macs + other.macs,
            atomic_updates: self.atomic_updates + other.atomic_updates,
            bytes_materialized: self.bytes_materialized + other.bytes_materialized,
            bytes_moved: self.bytes_moved + other.bytes_moved,
            kernel_launches: self.kernel_launches + other.kernel_launches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = KernelStats::new();
        s.add_macs(10);
        s.add_macs(5);
        s.add_atomics(3);
        s.add_bytes_materialized(100);
        s.add_bytes_moved(50);
        s.add_launch();
        s.add_launches(2);
        assert_eq!(s.macs(), 15);
        assert_eq!(s.atomic_updates(), 3);
        assert_eq!(s.bytes_materialized(), 100);
        assert_eq!(s.bytes_moved(), 50);
        assert_eq!(s.kernel_launches(), 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_merge_adds_fields() {
        let a = StatsSnapshot {
            macs: 1,
            atomic_updates: 2,
            bytes_materialized: 3,
            bytes_moved: 4,
            kernel_launches: 5,
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!(m.macs, 2);
        assert_eq!(m.kernel_launches, 10);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = KernelStats::new();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1000 {
                        s.add_atomics(1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(s.atomic_updates(), 4000);
    }
}
