//! # dsx-core — sliding-channel convolutions
//!
//! The core of the DSXplore reproduction: the **sliding-channel convolution
//! (SCC)** factorized kernel and the four implementations the paper
//! evaluates.
//!
//! SCC replaces the pointwise (1×1) stage of a depthwise-separable block.
//! Each of the `Cout` filters reads a window of `Cin / cg` input channels;
//! adjacent filters' windows overlap by a ratio `co` and slide cyclically
//! around the channel axis, so cross-channel information segregated by plain
//! group convolution is recovered at GPW-level cost (paper §III).
//!
//! ## Modules
//!
//! * [`backend`] — [`KernelBackend`]: pluggable execution substrates for the
//!   kernels (naive chunked loops vs register-blocked/autovectorized).
//! * [`config`] — [`SccConfig`]: validated `(cin, cout, cg, co)` parameters.
//! * [`cyclic`] — Algorithm 1/2: the channel-cycle map and its reverse map.
//! * [`forward`] — the output-centric forward kernel.
//! * [`backward`] — the input-centric backward kernel (DSXplore) and the
//!   atomic-heavy output-centric variant (DSXplore-Var).
//! * [`compose`] — the channel-stack / convolution-stack operator
//!   compositions (the paper's Pytorch-Base / Pytorch-Opt baselines).
//! * [`layer`] — [`SlidingChannelConv2d`], the high-level operator with owned
//!   weights that dispatches across implementations.
//! * [`mod@reference`] — naive scalar implementations used as ground truth.
//! * [`profile`] — closed-form resource profiles per implementation, consumed
//!   by the `dsx-gpusim` cost model.
//! * [`stats`] — instrumentation counters (MACs, bytes, launches, atomics).
//!
//! ## Example
//!
//! ```
//! use dsx_core::{SccConfig, SccImplementation, SlidingChannelConv2d};
//! use dsx_tensor::Tensor;
//!
//! let cfg = SccConfig::new(16, 32, 2, 0.5).unwrap();
//! let layer = SlidingChannelConv2d::new(cfg)
//!     .with_implementation(SccImplementation::Dsxplore);
//! let input = Tensor::randn(&[4, 16, 8, 8], 1);
//! let output = layer.forward(&input);
//! assert_eq!(output.shape(), &[4, 32, 8, 8]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod backward;
pub mod compose;
pub mod config;
pub mod cyclic;
pub mod forward;
pub mod layer;
pub mod profile;
pub mod reference;
pub mod stats;

pub use backend::{
    default_backend, set_default_backend, BackendKind, BlockedBackend, KernelBackend, NaiveBackend,
    TiledBackend,
};
pub use backward::{scc_backward_input_centric, scc_backward_output_centric, SccGradients};
pub use compose::{ComposedScc, Composition};
pub use config::{SccConfig, SccConfigError};
pub use cyclic::{ChannelCycleMap, ChannelWindow};
pub use forward::scc_forward;
pub use layer::{SccImplementation, SlidingChannelConv2d};
pub use profile::{
    backward_profile, forward_profile, training_step_profile, LayerShape, OpProfile,
};
pub use stats::{KernelStats, StatsSnapshot};
