//! Channel-cyclic pattern (Algorithm 1 and Algorithm 2 of the paper).
//!
//! Adjacent SCC filters read overlapping, sliding windows of input channels;
//! because both the window width and the slide stride are fixed, the sequence
//! of windows repeats with a short period — the *cyclic distance*. Algorithm
//! 1 enumerates the distinct windows of one cycle; Algorithm 2 maps a filter
//! (output channel) index back to its window with a single modulo and a table
//! lookup, which is what the GPU kernels do per thread.
//!
//! The same map drives the channel-cyclic optimization of the operator
//! composition baselines: only the first cycle's windows need to be sliced
//! and concatenated, everything after that is a repeat.

use crate::config::SccConfig;

/// A single filter's input-channel window.
///
/// `start` is the first input channel; the window covers `len` channels and
/// wraps around `cin` when `start + len > cin` (the channel-circulation
/// scheme of §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelWindow {
    /// First input channel of the window.
    pub start: usize,
    /// Number of channels covered.
    pub len: usize,
    /// Total number of input channels (the modulus for wrap-around).
    pub cin: usize,
}

impl ChannelWindow {
    /// The input channel read at position `offset` within the window.
    #[inline]
    pub fn channel_at(&self, offset: usize) -> usize {
        debug_assert!(offset < self.len);
        (self.start + offset) % self.cin
    }

    /// Whether the window covers input channel `ic`.
    pub fn contains(&self, ic: usize) -> bool {
        self.offset_of(ic).is_some()
    }

    /// Position of input channel `ic` within the window, if covered.
    pub fn offset_of(&self, ic: usize) -> Option<usize> {
        let ic = ic % self.cin;
        let rel = (ic + self.cin - self.start % self.cin) % self.cin;
        if rel < self.len {
            Some(rel)
        } else {
            None
        }
    }

    /// Whether the window wraps past the last input channel.
    pub fn wraps(&self) -> bool {
        self.start + self.len > self.cin
    }

    /// The channels of the window in order.
    pub fn channels(&self) -> Vec<usize> {
        (0..self.len).map(|o| self.channel_at(o)).collect()
    }
}

/// The enumerated cycle of distinct channel windows for an SCC configuration
/// (the output of Algorithm 1), plus the reverse map used by the
/// input-centric backward kernel.
#[derive(Debug, Clone)]
pub struct ChannelCycleMap {
    windows: Vec<ChannelWindow>,
    cyclic_dist: usize,
    cin: usize,
    cout: usize,
}

impl ChannelCycleMap {
    /// Runs Algorithm 1 for the given configuration.
    ///
    /// Starting from the window `[0, group_width)`, each subsequent window is
    /// shifted by `group_width - overlap_channels` (modulo `cin`); the
    /// enumeration stops as soon as a window repeats or every output channel
    /// has been assigned one.
    pub fn build(cfg: &SccConfig) -> Self {
        let cin = cfg.cin();
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let stride = cfg.slide_stride();

        let mut windows = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut start = 0usize;
        for _oid in 0..cout {
            let window = ChannelWindow {
                start,
                len: gw,
                cin,
            };
            if !seen.insert(window.start) {
                break;
            }
            windows.push(window);
            start = (start + stride) % cin;
        }
        let cyclic_dist = windows.len();
        ChannelCycleMap {
            windows,
            cyclic_dist,
            cin,
            cout,
        }
    }

    /// The cyclic distance: how many filters it takes before the same
    /// input-channel window re-appears (paper Fig. 5).
    pub fn cyclic_dist(&self) -> usize {
        self.cyclic_dist
    }

    /// The distinct windows of one cycle, in filter order.
    pub fn windows(&self) -> &[ChannelWindow] {
        &self.windows
    }

    /// Number of input channels.
    pub fn cin(&self) -> usize {
        self.cin
    }

    /// Number of output channels the map was built for.
    pub fn cout(&self) -> usize {
        self.cout
    }

    /// Algorithm 2: the window of output channel `oc`, looked up via
    /// `oc % cyclic_dist`.
    #[inline]
    pub fn window_for_output(&self, oc: usize) -> ChannelWindow {
        self.windows[oc % self.cyclic_dist]
    }

    /// Reverse map for the input-centric backward pass: for every input
    /// channel, the list of `(output_channel, offset_within_window)` pairs
    /// whose filters read it.
    ///
    /// The backward kernel assigns one thread per *input* gradient pixel and
    /// walks this list, pulling contributions instead of scattering them —
    /// which is exactly how the paper eliminates atomic updates (§IV-B).
    pub fn input_to_outputs(&self) -> Vec<Vec<(usize, usize)>> {
        let mut map = vec![Vec::new(); self.cin];
        for oc in 0..self.cout {
            let window = self.window_for_output(oc);
            for offset in 0..window.len {
                let ic = window.channel_at(offset);
                map[ic].push((oc, offset));
            }
        }
        map
    }

    /// Number of cycles needed to cover all `cout` output channels
    /// (the repetition count used by the cyclic-optimized compositions).
    pub fn num_cycles(&self) -> usize {
        self.cout.div_ceil(self.cyclic_dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cin: usize, cout: usize, cg: usize, co: f64) -> SccConfig {
        SccConfig::new(cin, cout, cg, co).unwrap()
    }

    #[test]
    fn paper_fig5a_cycle() {
        // Cin = 4, cg = 2, co = 50% -> group width 2, stride 1, cyclic_dist 4.
        let map = ChannelCycleMap::build(&cfg(4, 8, 2, 0.5));
        assert_eq!(map.cyclic_dist(), 4);
        let starts: Vec<usize> = map.windows().iter().map(|w| w.start).collect();
        assert_eq!(starts, vec![0, 1, 2, 3]);
        // Filter 3's window wraps: channels {3, 0} as in Fig. 2(c).
        assert_eq!(map.windows()[3].channels(), vec![3, 0]);
    }

    #[test]
    fn paper_fig5b_cycle() {
        // Cin = 6, cg = 2, co = 33% -> group width 3, overlap 1, stride 2,
        // cyclic_dist 3.
        let map = ChannelCycleMap::build(&cfg(6, 6, 2, 0.33));
        assert_eq!(map.cyclic_dist(), 3);
        let starts: Vec<usize> = map.windows().iter().map(|w| w.start).collect();
        assert_eq!(starts, vec![0, 2, 4]);
    }

    #[test]
    fn gpw_cycle_equals_group_count() {
        // co = 0: windows tile the channels exactly, cyclic distance = cg.
        let map = ChannelCycleMap::build(&cfg(16, 32, 4, 0.0));
        assert_eq!(map.cyclic_dist(), 4);
        for (g, w) in map.windows().iter().enumerate() {
            assert_eq!(w.start, g * 4);
            assert!(!w.wraps());
        }
    }

    #[test]
    fn pointwise_cycle_is_one() {
        let map = ChannelCycleMap::build(&cfg(8, 16, 1, 0.0));
        assert_eq!(map.cyclic_dist(), 1);
        assert_eq!(map.windows()[0].len, 8);
    }

    #[test]
    fn cycle_is_bounded_by_cout() {
        // Even if the window sequence would take longer to repeat, we never
        // enumerate more windows than there are output channels.
        let map = ChannelCycleMap::build(&cfg(64, 4, 2, 0.5));
        assert!(map.cyclic_dist() <= 4);
    }

    #[test]
    fn window_lookup_is_periodic() {
        let map = ChannelCycleMap::build(&cfg(4, 16, 2, 0.5));
        for oc in 0..16 {
            assert_eq!(
                map.window_for_output(oc),
                map.window_for_output(oc % map.cyclic_dist())
            );
        }
    }

    #[test]
    fn window_offset_round_trips() {
        let map = ChannelCycleMap::build(&cfg(6, 12, 2, 0.33));
        for w in map.windows() {
            for offset in 0..w.len {
                let ic = w.channel_at(offset);
                assert_eq!(w.offset_of(ic), Some(offset));
            }
        }
    }

    #[test]
    fn window_contains_rejects_outside_channels() {
        let w = ChannelWindow {
            start: 3,
            len: 2,
            cin: 4,
        };
        assert!(w.contains(3));
        assert!(w.contains(0));
        assert!(!w.contains(1));
        assert!(!w.contains(2));
        assert!(w.wraps());
    }

    #[test]
    fn reverse_map_is_consistent_with_forward_windows() {
        let config = cfg(8, 24, 4, 0.5);
        let map = ChannelCycleMap::build(&config);
        let rev = map.input_to_outputs();
        assert_eq!(rev.len(), 8);
        // Every (oc, offset) in the reverse map must agree with the forward
        // window, and every forward pair must appear exactly once.
        let mut count = 0usize;
        for (ic, pairs) in rev.iter().enumerate() {
            for &(oc, offset) in pairs {
                assert_eq!(map.window_for_output(oc).channel_at(offset), ic);
                count += 1;
            }
        }
        assert_eq!(count, config.cout() * config.group_width());
    }

    #[test]
    fn every_input_channel_is_read_by_some_filter_when_cout_covers_cycle() {
        let config = cfg(16, 32, 4, 0.5);
        let map = ChannelCycleMap::build(&config);
        let rev = map.input_to_outputs();
        assert!(rev.iter().all(|pairs| !pairs.is_empty()));
    }

    #[test]
    fn num_cycles_covers_all_outputs() {
        let map = ChannelCycleMap::build(&cfg(4, 10, 2, 0.5));
        assert_eq!(map.cyclic_dist(), 4);
        assert_eq!(map.num_cycles(), 3); // ceil(10 / 4)
    }

    #[test]
    fn algorithm1_matches_paper_pseudocode_for_50_percent() {
        // Mirrors the paper's Algorithm 1 trace for Cin=4, cg=2, co=50%:
        // windows (0,2), (1,3), (2,4->wrap), (3,5->wrap), then (0,2) repeats.
        let map = ChannelCycleMap::build(&cfg(4, 8, 2, 0.5));
        let expected: Vec<(usize, usize)> = vec![(0, 2), (1, 2), (2, 2), (3, 2)];
        let got: Vec<(usize, usize)> = map.windows().iter().map(|w| (w.start, w.len)).collect();
        assert_eq!(got, expected);
    }
}
