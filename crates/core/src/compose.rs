//! Operator-composition baselines: the paper's *channel-stack*
//! (Pytorch-Base) and *convolution-stack* (Pytorch-Opt) implementations of
//! SCC, with and without the channel-cyclic optimization (Figs. 3 and 6).
//!
//! These reproduce, on our own tensor library, exactly what the paper builds
//! out of stock PyTorch operators:
//!
//! * **Channel-stack** — slice every filter's input-channel window out of the
//!   feature map, concatenate all of them into one huge `[N, Cout·gw, H, W]`
//!   tensor, then run a grouped 1×1 convolution with `groups = Cout`.
//! * **Convolution-stack** — run one tiny single-filter convolution per
//!   output channel over its (sliced) window and concatenate the outputs,
//!   avoiding the huge intermediate at the cost of `Cout` small launches.
//! * **Channel-cyclic optimization** — only the first `cyclic_dist` windows
//!   are sliced; the rest of the stacked tensor is produced by repeating that
//!   block (channel-stack) or by re-reading it (convolution-stack).
//!
//! Every slice, concatenation and small convolution is accounted in
//! [`KernelStats`]: bytes materialised (Fig. 10), bytes moved, and operator
//! launches — the quantities the GPU cost model replays to reproduce the
//! paper's speedup figures.

use crate::backend::{self, BackendKind};
use crate::backward::SccGradients;
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::reference::{dims4, validate_shapes};
use crate::stats::KernelStats;
use dsx_tensor::Tensor;

/// Which operator composition to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// Slice + concatenate every window, then one grouped convolution
    /// (`groups = Cout`). The paper's Pytorch-Base building block.
    ChannelStack,
    /// One single-filter convolution per window, concatenate the outputs.
    /// With the cyclic optimization this is the paper's Pytorch-Opt.
    ConvolutionStack,
}

/// An SCC layer implemented by composing framework-style tensor operators.
#[derive(Debug, Clone)]
pub struct ComposedScc {
    cfg: SccConfig,
    map: ChannelCycleMap,
    composition: Composition,
    cyclic_opt: bool,
    backend: BackendKind,
}

impl ComposedScc {
    /// Builds a composed implementation of the given SCC configuration.
    pub fn new(cfg: SccConfig, composition: Composition, cyclic_opt: bool) -> Self {
        let map = ChannelCycleMap::build(&cfg);
        ComposedScc {
            cfg,
            map,
            composition,
            cyclic_opt,
            backend: backend::default_backend(),
        }
    }

    /// Selects the kernel backend executing the composition's *forward*
    /// convolution stages (the grouped pointwise over the stack and the
    /// per-filter small convolutions). The backward paths deliberately stay
    /// backend-independent: they emulate, launch by launch, what a
    /// framework's autograd would execute, and that emulation — not kernel
    /// throughput — is what the Fig. 9 comparison measures.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The paper's Pytorch-Base configuration: channel-stack without the
    /// channel-cyclic optimization.
    pub fn pytorch_base(cfg: SccConfig) -> Self {
        Self::new(cfg, Composition::ChannelStack, false)
    }

    /// The paper's Pytorch-Opt configuration: convolution-stack with the
    /// channel-cyclic optimization.
    pub fn pytorch_opt(cfg: SccConfig) -> Self {
        Self::new(cfg, Composition::ConvolutionStack, true)
    }

    /// The SCC configuration this composition implements.
    pub fn config(&self) -> &SccConfig {
        &self.cfg
    }

    /// Which composition strategy is in use.
    pub fn composition(&self) -> Composition {
        self.composition
    }

    /// Whether the channel-cyclic optimization is enabled.
    pub fn cyclic_opt(&self) -> bool {
        self.cyclic_opt
    }

    /// The kernel backend executing the convolution stages.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    // ------------------------------------------------------------------
    // Forward
    // ------------------------------------------------------------------

    /// Forward pass through the composed operators. Numerically identical to
    /// [`crate::forward::scc_forward`] for the same weights.
    pub fn forward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        validate_shapes(&self.cfg, input, weight, bias);
        match self.composition {
            Composition::ChannelStack => self.forward_channel_stack(input, weight, bias, stats),
            Composition::ConvolutionStack => {
                self.forward_convolution_stack(input, weight, bias, stats)
            }
        }
    }

    fn forward_channel_stack(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        let stacked = self.build_stacked_input(input, stats);
        self.grouped_pointwise_over_stack(&stacked, weight, bias, stats)
    }

    fn forward_convolution_stack(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        let cfg = &self.cfg;
        let gw = cfg.group_width();
        let cout = cfg.cout();

        // With the cyclic optimization the windows of the first cycle are
        // sliced once and kept; without it every filter slices its own window.
        let cycle_tensor = if self.cyclic_opt {
            Some(self.build_cycle_tensor(input, stats))
        } else {
            None
        };

        let mut outputs: Vec<Tensor> = Vec::with_capacity(cout);
        for oc in 0..cout {
            let window = self.map.window_for_output(oc);
            let slice = match &cycle_tensor {
                Some(cycle) => {
                    // Re-read the window from the cached cycle tensor: a
                    // narrow (view + copy in our library) but no fresh
                    // materialisation is attributed to it.
                    let idx = oc % self.map.cyclic_dist();
                    let part = cycle.narrow_channels(idx * gw, gw);
                    record(stats, |s| {
                        s.add_bytes_moved(part.bytes());
                        s.add_launch();
                    });
                    part
                }
                None => {
                    let part = input.narrow_channels_cyclic(window.start, gw);
                    record(stats, |s| {
                        s.add_bytes_materialized(part.bytes());
                        s.add_bytes_moved(part.bytes());
                        s.add_launch();
                    });
                    part
                }
            };
            // One tiny single-filter pointwise convolution per output channel.
            let filter = &weight.as_slice()[oc * gw..(oc + 1) * gw];
            let b = bias.map(|t| t.as_slice()[oc]).unwrap_or(0.0);
            let out_c = self.single_filter_pointwise(&slice, filter, b);
            record(stats, |s| {
                let (n, _, h, w) = dims4(&slice);
                s.add_macs(n * h * w * gw);
                s.add_bytes_materialized(out_c.bytes());
                s.add_launch();
            });
            outputs.push(out_c);
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        let out = Tensor::cat_channels(&refs);
        record(stats, |s| {
            s.add_bytes_materialized(out.bytes());
            s.add_bytes_moved(out.bytes());
            s.add_launch();
        });
        out
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Backward pass through the composed operators (what the framework's
    /// autograd would execute).
    ///
    /// * Channel-stack: the huge stacked tensor is an autograd intermediate,
    ///   so its gradient is materialised in full, the grouped-convolution
    ///   gradients are computed over it, and the per-window slices are
    ///   scattered back onto the original feature map.
    /// * Convolution-stack: autograd walks the `Cout` small convolutions one
    ///   by one, so only one window-sized gradient lives at a time.
    pub fn backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        stats: Option<&KernelStats>,
    ) -> SccGradients {
        validate_shapes(&self.cfg, input, weight, None);
        match self.composition {
            Composition::ChannelStack => {
                self.backward_channel_stack(input, weight, grad_output, stats)
            }
            Composition::ConvolutionStack => {
                self.backward_convolution_stack(input, weight, grad_output, stats)
            }
        }
    }

    fn backward_channel_stack(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        stats: Option<&KernelStats>,
    ) -> SccGradients {
        let cfg = &self.cfg;
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        assert_eq!(grad_output.shape(), &[n, cout, h, w], "grad_output shape");

        // The stacked input is an autograd intermediate: it is materialised
        // (again) during the backward pass of the slicing/concat chain.
        let stacked = self.build_stacked_input(input, stats);
        let st_data = stacked.as_slice();
        let go_data = grad_output.as_slice();
        let w_data = weight.as_slice();

        // Gradients of the grouped pointwise convolution over the stack.
        let mut grad_stacked = Tensor::zeros(stacked.shape());
        let gs_data = grad_stacked.as_mut_slice();
        let mut grad_weight = Tensor::zeros(&[cout, gw]);
        let gw_data = grad_weight.as_mut_slice();
        let mut grad_bias = Tensor::zeros(&[cout]);
        let gb_data = grad_bias.as_mut_slice();

        for img in 0..n {
            for oc in 0..cout {
                let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
                gb_data[oc] += go_plane.iter().sum::<f32>();
                for j in 0..gw {
                    let stacked_c = oc * gw + j;
                    let st_plane = &st_data[(img * cout * gw + stacked_c) * plane
                        ..(img * cout * gw + stacked_c + 1) * plane];
                    let gs_plane = &mut gs_data[(img * cout * gw + stacked_c) * plane
                        ..(img * cout * gw + stacked_c + 1) * plane];
                    let wj = w_data[oc * gw + j];
                    let mut acc = 0.0f32;
                    for ((g, &go), &sv) in gs_plane
                        .iter_mut()
                        .zip(go_plane.iter())
                        .zip(st_plane.iter())
                    {
                        *g += wj * go;
                        acc += sv * go;
                    }
                    gw_data[oc * gw + j] += acc;
                }
            }
        }
        record(stats, |s| {
            s.add_macs(2 * n * cout * plane * gw);
            s.add_bytes_materialized(grad_stacked.bytes());
            s.add_launches(2);
        });

        // Scatter the stacked gradient back onto the original input channels
        // (the backward of slicing + concatenation). Overlapping windows
        // accumulate — the framework realises this as Cout separate
        // index_add kernels.
        let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
        let gi_data = grad_input.as_mut_slice();
        let gs_data = grad_stacked.as_slice();
        for oc in 0..cout {
            let window = self.map.window_for_output(oc);
            for img in 0..n {
                for j in 0..gw {
                    let ic = window.channel_at(j);
                    let stacked_c = oc * gw + j;
                    let src = &gs_data[(img * cout * gw + stacked_c) * plane
                        ..(img * cout * gw + stacked_c + 1) * plane];
                    let dst = &mut gi_data[(img * cin + ic) * plane..(img * cin + ic + 1) * plane];
                    for (d, &s) in dst.iter_mut().zip(src.iter()) {
                        *d += s;
                    }
                }
            }
        }
        record(stats, |s| {
            s.add_bytes_moved(grad_stacked.bytes());
            s.add_launches(cout);
        });

        SccGradients {
            grad_input,
            grad_weight,
            grad_bias,
        }
    }

    fn backward_convolution_stack(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        stats: Option<&KernelStats>,
    ) -> SccGradients {
        let cfg = &self.cfg;
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        assert_eq!(grad_output.shape(), &[n, cout, h, w], "grad_output shape");

        // With the cyclic optimization the first cycle's windows are kept
        // from the forward pass; without it every small conv re-slices.
        let cycle_tensor = if self.cyclic_opt {
            Some(self.build_cycle_tensor(input, stats))
        } else {
            None
        };

        let go_data = grad_output.as_slice();
        let w_data = weight.as_slice();
        let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
        let mut grad_weight = Tensor::zeros(&[cout, gw]);
        let mut grad_bias = Tensor::zeros(&[cout]);

        for oc in 0..cout {
            let window = self.map.window_for_output(oc);
            // The window slice of the input is an autograd intermediate of
            // this small convolution.
            let slice = match &cycle_tensor {
                Some(cycle) => {
                    let idx = oc % self.map.cyclic_dist();
                    let part = cycle.narrow_channels(idx * gw, gw);
                    record(stats, |s| {
                        s.add_bytes_moved(part.bytes());
                        s.add_launch();
                    });
                    part
                }
                None => {
                    let part = input.narrow_channels_cyclic(window.start, gw);
                    record(stats, |s| {
                        s.add_bytes_materialized(part.bytes());
                        s.add_bytes_moved(part.bytes());
                        s.add_launch();
                    });
                    part
                }
            };
            let sl_data = slice.as_slice();
            // Gradient of the single-filter pointwise conv, then scatter the
            // window gradient back into grad_input (index_add in PyTorch).
            let gi_data = grad_input.as_mut_slice();
            let gw_row = &mut grad_weight.as_mut_slice()[oc * gw..(oc + 1) * gw];
            let mut bias_acc = 0.0f32;
            for img in 0..n {
                let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
                bias_acc += go_plane.iter().sum::<f32>();
                for j in 0..gw {
                    let ic = window.channel_at(j);
                    let sl_plane = &sl_data[(img * gw + j) * plane..(img * gw + j + 1) * plane];
                    let gi_plane =
                        &mut gi_data[(img * cin + ic) * plane..(img * cin + ic + 1) * plane];
                    let wj = w_data[oc * gw + j];
                    let mut acc = 0.0f32;
                    for ((g, &go), &sv) in gi_plane
                        .iter_mut()
                        .zip(go_plane.iter())
                        .zip(sl_plane.iter())
                    {
                        *g += wj * go;
                        acc += sv * go;
                    }
                    gw_row[j] += acc;
                }
            }
            grad_bias.as_mut_slice()[oc] = bias_acc;
            record(stats, |s| {
                s.add_macs(2 * n * plane * gw);
                // The transient window gradient is materialised and freed
                // per small convolution.
                s.add_bytes_materialized(n * gw * plane * std::mem::size_of::<f32>());
                s.add_launches(3);
            });
        }

        SccGradients {
            grad_input,
            grad_weight,
            grad_bias,
        }
    }

    // ------------------------------------------------------------------
    // Building blocks
    // ------------------------------------------------------------------

    /// Builds the `[N, Cout·gw, H, W]` stacked input tensor of the
    /// channel-stack design, optionally through the cyclic optimization
    /// (slice one cycle, repeat it).
    fn build_stacked_input(&self, input: &Tensor, stats: Option<&KernelStats>) -> Tensor {
        let gw = self.cfg.group_width();
        let cout = self.cfg.cout();
        if self.cyclic_opt {
            let cycle = self.build_cycle_tensor(input, stats);
            let repeated = cycle.repeat_channels(self.map.num_cycles());
            let stacked = if repeated.dim(1) == cout * gw {
                repeated
            } else {
                repeated.narrow_channels(0, cout * gw)
            };
            record(stats, |s| {
                s.add_bytes_materialized(stacked.bytes());
                s.add_bytes_moved(stacked.bytes());
                s.add_launch();
            });
            stacked
        } else {
            let mut parts: Vec<Tensor> = Vec::with_capacity(cout);
            for oc in 0..cout {
                let window = self.map.window_for_output(oc);
                let part = input.narrow_channels_cyclic(window.start, gw);
                record(stats, |s| {
                    s.add_bytes_materialized(part.bytes());
                    s.add_bytes_moved(part.bytes());
                    s.add_launch();
                });
                parts.push(part);
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            let stacked = Tensor::cat_channels(&refs);
            record(stats, |s| {
                s.add_bytes_materialized(stacked.bytes());
                s.add_bytes_moved(stacked.bytes());
                s.add_launch();
            });
            stacked
        }
    }

    /// Slices and concatenates the windows of the *first cycle* only
    /// (`cyclic_dist` windows), the core of the cyclic optimization.
    fn build_cycle_tensor(&self, input: &Tensor, stats: Option<&KernelStats>) -> Tensor {
        let gw = self.cfg.group_width();
        let mut parts: Vec<Tensor> = Vec::with_capacity(self.map.cyclic_dist());
        for window in self.map.windows() {
            let part = input.narrow_channels_cyclic(window.start, gw);
            record(stats, |s| {
                s.add_bytes_materialized(part.bytes());
                s.add_bytes_moved(part.bytes());
                s.add_launch();
            });
            parts.push(part);
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let cycle = Tensor::cat_channels(&refs);
        record(stats, |s| {
            s.add_bytes_materialized(cycle.bytes());
            s.add_bytes_moved(cycle.bytes());
            s.add_launch();
        });
        cycle
    }

    /// Grouped 1×1 convolution with `groups = Cout` over the stacked tensor:
    /// output channel `oc` is the dot product of filter `oc` with stacked
    /// channels `[oc·gw, (oc+1)·gw)`.
    ///
    /// The stack layout makes this exactly an SCC with zero overlap and
    /// `cg = Cout` over the stacked channels, so the grouped convolution is
    /// executed by the selected [`KernelBackend`](crate::backend::KernelBackend)
    /// rather than a bespoke loop nest.
    fn grouped_pointwise_over_stack(
        &self,
        stacked: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        let cfg = &self.cfg;
        let (n, stacked_c, h, w) = dims4(stacked);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        assert_eq!(
            stacked_c,
            cout * gw,
            "stacked tensor has unexpected channel count"
        );
        let stack_cfg = SccConfig::group_pointwise(cout * gw, cout, cout)
            // lint: allow(panic) — `cout * gw` is divisible by `cout` by
            // construction, which is the only way this constructor fails.
            .expect("the stacked layout is always a valid group-pointwise config");
        let stack_map = ChannelCycleMap::build(&stack_cfg);
        let out = self
            .backend
            .backend()
            .forward(&stack_cfg, &stack_map, stacked, weight, bias, None);
        record(stats, |s| {
            s.add_macs(n * cout * h * w * gw);
            s.add_bytes_materialized(out.bytes());
            s.add_launch();
        });
        out
    }

    /// Applies a single 1×1 filter (length = channel count of `input`) plus
    /// bias to an NCHW tensor, producing `[N, 1, H, W]` — a pointwise SCC
    /// with one output channel, executed by the selected backend.
    fn single_filter_pointwise(&self, input: &Tensor, filter: &[f32], bias: f32) -> Tensor {
        let (_, c, _, _) = dims4(input);
        assert_eq!(c, filter.len(), "filter length must equal channel count");
        let pw_cfg = SccConfig::pointwise(c, 1);
        let pw_map = ChannelCycleMap::build(&pw_cfg);
        let filter_t = Tensor::from_vec(filter.to_vec(), &[1, c]);
        let bias_t = Tensor::from_vec(vec![bias], &[1]);
        self.backend
            .backend()
            .forward(&pw_cfg, &pw_map, input, &filter_t, Some(&bias_t), None)
    }
}

fn record(stats: Option<&KernelStats>, f: impl FnOnce(&KernelStats)) {
    if let Some(s) = stats {
        f(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::scc_backward_input_centric;
    use crate::forward::scc_forward;
    use crate::reference::scc_forward_reference;
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    fn setup(cin: usize, cout: usize, cg: usize, co: f64) -> (SccConfig, Tensor, Tensor, Tensor) {
        let cfg = SccConfig::new(cin, cout, cg, co).unwrap();
        let input = Tensor::randn(&[2, cin, 5, 5], 21);
        let weight = Tensor::randn(&[cout, cfg.group_width()], 22);
        let bias = Tensor::randn(&[cout], 23);
        (cfg, input, weight, bias)
    }

    #[test]
    fn all_four_compositions_match_the_reference_forward() {
        let (cfg, input, weight, bias) = setup(8, 16, 2, 0.5);
        let reference = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        for &composition in &[Composition::ChannelStack, Composition::ConvolutionStack] {
            for &cc in &[false, true] {
                let composed = ComposedScc::new(cfg, composition, cc);
                let out = composed.forward(&input, &weight, Some(&bias), None);
                assert!(
                    allclose(&out, &reference, TEST_TOLERANCE),
                    "{composition:?} cc={cc} diverges from reference"
                );
            }
        }
    }

    #[test]
    fn composition_matches_dsxplore_kernel() {
        let (cfg, input, weight, bias) = setup(12, 20, 4, 0.5);
        let kernel = scc_forward(&cfg, &input, &weight, Some(&bias), None);
        let base = ComposedScc::pytorch_base(cfg).forward(&input, &weight, Some(&bias), None);
        let opt = ComposedScc::pytorch_opt(cfg).forward(&input, &weight, Some(&bias), None);
        assert!(allclose(&kernel, &base, TEST_TOLERANCE));
        assert!(allclose(&kernel, &opt, TEST_TOLERANCE));
    }

    #[test]
    fn composed_backward_matches_kernel_backward() {
        let (cfg, input, weight, _bias) = setup(8, 12, 2, 0.5);
        let grad_out = Tensor::randn(&[2, 12, 5, 5], 31);
        let kernel = scc_backward_input_centric(&cfg, &input, &weight, &grad_out, None);
        for composed in [
            ComposedScc::pytorch_base(cfg),
            ComposedScc::pytorch_opt(cfg),
        ] {
            let grads = composed.backward(&input, &weight, &grad_out, None);
            assert!(allclose(&grads.grad_input, &kernel.grad_input, 1e-3));
            assert!(allclose(&grads.grad_weight, &kernel.grad_weight, 1e-3));
            assert!(allclose(&grads.grad_bias, &kernel.grad_bias, 1e-3));
        }
    }

    #[test]
    fn cyclic_optimization_reduces_materialized_bytes_for_convolution_stack() {
        let (cfg, input, weight, _bias) = setup(16, 64, 2, 0.5);
        let without = KernelStats::new();
        ComposedScc::new(cfg, Composition::ConvolutionStack, false).forward(
            &input,
            &weight,
            None,
            Some(&without),
        );
        let with = KernelStats::new();
        ComposedScc::new(cfg, Composition::ConvolutionStack, true).forward(
            &input,
            &weight,
            None,
            Some(&with),
        );
        assert!(
            with.bytes_materialized() < without.bytes_materialized(),
            "cyclic opt should materialise fewer bytes ({} vs {})",
            with.bytes_materialized(),
            without.bytes_materialized()
        );
    }

    #[test]
    fn cyclic_optimization_reduces_slicing_launches_for_channel_stack() {
        let (cfg, input, weight, _bias) = setup(16, 64, 2, 0.5);
        let without = KernelStats::new();
        ComposedScc::new(cfg, Composition::ChannelStack, false).forward(
            &input,
            &weight,
            None,
            Some(&without),
        );
        let with = KernelStats::new();
        ComposedScc::new(cfg, Composition::ChannelStack, true).forward(
            &input,
            &weight,
            None,
            Some(&with),
        );
        assert!(with.kernel_launches() < without.kernel_launches());
    }

    #[test]
    fn channel_stack_materializes_the_huge_tensor() {
        // The stacked tensor is Cout/cg times larger than the input feature
        // map — the reason Pytorch-Base runs out of memory on ImageNet.
        let (cfg, input, weight, _bias) = setup(16, 64, 2, 0.5);
        let stats = KernelStats::new();
        ComposedScc::pytorch_base(cfg).forward(&input, &weight, None, Some(&stats));
        let stacked_bytes = input.bytes() / cfg.cg() * cfg.cout();
        assert!(stats.bytes_materialized() >= stacked_bytes);
    }

    #[test]
    fn convolution_stack_avoids_the_huge_tensor() {
        let (cfg, input, weight, _bias) = setup(16, 64, 2, 0.5);
        let base = KernelStats::new();
        ComposedScc::pytorch_base(cfg).forward(&input, &weight, None, Some(&base));
        let opt = KernelStats::new();
        ComposedScc::pytorch_opt(cfg).forward(&input, &weight, None, Some(&opt));
        assert!(opt.bytes_materialized() < base.bytes_materialized());
    }

    #[test]
    fn launch_counts_scale_with_cout_for_convolution_stack() {
        let (cfg, input, weight, _bias) = setup(8, 32, 2, 0.5);
        let stats = KernelStats::new();
        ComposedScc::pytorch_opt(cfg).forward(&input, &weight, None, Some(&stats));
        // At least one launch per output channel (the small convs).
        assert!(stats.kernel_launches() >= 32);
    }

    #[test]
    fn works_when_cout_is_not_a_multiple_of_cycle_length() {
        let cfg = SccConfig::new(8, 10, 2, 0.5).unwrap();
        let input = Tensor::randn(&[1, 8, 4, 4], 40);
        let weight = Tensor::randn(&[10, 4], 41);
        let reference = scc_forward_reference(&cfg, &input, &weight, None);
        for composed in [
            ComposedScc::new(cfg, Composition::ChannelStack, true),
            ComposedScc::new(cfg, Composition::ConvolutionStack, true),
        ] {
            let out = composed.forward(&input, &weight, None, None);
            assert!(allclose(&out, &reference, TEST_TOLERANCE));
        }
    }
}
