//! SCC backward kernels: the input-centric design (DSXplore) and the
//! output-centric variant (DSXplore-Var) it is compared against in Fig. 9.
//!
//! The backward pass must produce three gradients: input, weight and bias.
//! Because adjacent SCC filters *overlap* in the input channels they read,
//! the natural "reverse the forward flow" scheme (one thread per output
//! gradient pixel, scattering `W * dL/dO` into the input gradient) makes many
//! threads write the same input-gradient location — on a GPU every such
//! update needs an atomic add. The paper's input-centric design instead
//! assigns one thread per *input* gradient pixel which *pulls* the
//! contributions of every filter whose window covers its channel, so each
//! location has exactly one writer and no atomics are needed.
//!
//! Both designs are implemented here:
//!
//! * [`scc_backward_input_centric`] — the DSXplore kernel: race-free chunked
//!   parallel loops, zero atomic updates.
//! * [`scc_backward_output_centric`] — the DSXplore-Var baseline: a parallel
//!   scatter into shared buffers implemented with real compare-and-swap
//!   atomics (the CPU equivalent of CUDA `atomicAdd`), every one of which is
//!   counted in [`KernelStats::atomic_updates`].
//!
//! The unit and property tests assert both produce the same gradients as the
//! naive reference and as each other, and that the atomic counts differ by
//! the >90 % margin the paper reports.

use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::reference::{dims4, validate_shapes};
use crate::stats::KernelStats;
use dsx_tensor::{par, Tensor};
use std::sync::atomic::{AtomicU32, Ordering};

/// Gradients produced by one SCC backward pass.
#[derive(Debug, Clone)]
pub struct SccGradients {
    /// Gradient with respect to the input feature map, `[N, Cin, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weights, `[Cout, group_width]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[Cout]`.
    pub grad_bias: Tensor,
}

/// Input-centric backward pass (the DSXplore design).
pub fn scc_backward_input_centric(
    cfg: &SccConfig,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stats: Option<&KernelStats>,
) -> SccGradients {
    let map = ChannelCycleMap::build(cfg);
    scc_backward_input_centric_with_map(cfg, &map, input, weight, grad_output, stats)
}

/// Input-centric backward reusing a prebuilt cycle map.
pub fn scc_backward_input_centric_with_map(
    cfg: &SccConfig,
    map: &ChannelCycleMap,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stats: Option<&KernelStats>,
) -> SccGradients {
    validate_shapes(cfg, input, weight, None);
    let (n, _, h, w) = dims4(input);
    assert_eq!(
        grad_output.shape(),
        &[n, cfg.cout(), h, w],
        "grad_output shape"
    );

    let grad_input = naive_grad_input(cfg, map, weight, grad_output);
    let grad_weight = naive_grad_weight(cfg, map, input, grad_output);
    let grad_bias = naive_grad_bias(cfg, grad_output);

    if let Some(s) = stats {
        s.add_launches(3);
        // grad_input and grad_weight each cost N*Cout*plane*gw MACs.
        s.add_macs(2 * n * cfg.cout() * h * w * cfg.group_width() + n * cfg.cout() * h * w);
        // The input-centric design needs no atomic updates at all.
        s.add_bytes_moved(grad_input.bytes() + grad_weight.bytes() + grad_bias.bytes());
    }

    SccGradients {
        grad_input,
        grad_weight,
        grad_bias,
    }
}

/// Input-gradient kernel of the input-centric design: one chunk per
/// (image, input channel) plane; each plane has exactly one writer which
/// PULLS from the covering output channels.
pub(crate) fn naive_grad_input(
    cfg: &SccConfig,
    map: &ChannelCycleMap,
    weight: &Tensor,
    grad_output: &Tensor,
) -> Tensor {
    let (n, cout, h, w) = dims4(grad_output);
    let cin = cfg.cin();
    let gw = cfg.group_width();
    let plane = h * w;
    let go_data = grad_output.as_slice();
    let w_data = weight.as_slice();

    let reverse = map.input_to_outputs();
    let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
    par::parallel_for_each_chunk_mut(grad_input.as_mut_slice(), plane, |chunk_idx, gi_plane| {
        let img = chunk_idx / cin;
        let ic = chunk_idx % cin;
        for &(oc, offset) in &reverse[ic] {
            let wj = w_data[oc * gw + offset];
            let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
            for (g, &go) in gi_plane.iter_mut().zip(go_plane.iter()) {
                *g += wj * go;
            }
        }
    });
    grad_input
}

/// Weight-gradient kernel: one chunk per filter row `[gw]`; a single writer
/// accumulates over all images and pixels of its window.
pub(crate) fn naive_grad_weight(
    cfg: &SccConfig,
    map: &ChannelCycleMap,
    input: &Tensor,
    grad_output: &Tensor,
) -> Tensor {
    let (n, cin, h, w) = dims4(input);
    let cout = cfg.cout();
    let gw = cfg.group_width();
    let plane = h * w;
    let in_data = input.as_slice();
    let go_data = grad_output.as_slice();

    let mut grad_weight = Tensor::zeros(&[cout, gw]);
    // Grain 1: a gw-element row reduces over whole planes, so the
    // length-proportional claim heuristic would under-parallelise it.
    par::parallel_for_each_chunk_mut_with_grain(grad_weight.as_mut_slice(), gw, 1, |oc, gw_row| {
        let window = map.window_for_output(oc);
        for img in 0..n {
            let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
            for (j, slot) in gw_row.iter_mut().enumerate() {
                let ic = window.channel_at(j);
                let in_plane = &in_data[(img * cin + ic) * plane..(img * cin + ic + 1) * plane];
                let mut acc = 0.0f32;
                for (&go, &iv) in go_plane.iter().zip(in_plane.iter()) {
                    acc += go * iv;
                }
                *slot += acc;
            }
        }
    });
    grad_weight
}

/// Bias-gradient kernel: one chunk per output channel.
pub(crate) fn naive_grad_bias(cfg: &SccConfig, grad_output: &Tensor) -> Tensor {
    let (n, cout, h, w) = dims4(grad_output);
    debug_assert_eq!(cout, cfg.cout());
    let plane = h * w;
    let go_data = grad_output.as_slice();
    let mut grad_bias = Tensor::zeros(&[cout]);
    // Grain 1: each single-element chunk sums a plane per image.
    par::parallel_for_each_chunk_mut_with_grain(grad_bias.as_mut_slice(), 1, 1, |oc, slot| {
        let mut acc = 0.0f32;
        for img in 0..n {
            let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
            acc += go_plane.iter().sum::<f32>();
        }
        slot[0] = acc;
    });
    grad_bias
}

/// Output-centric backward pass (DSXplore-Var): reverses the forward flow and
/// scatters gradients with atomic adds, exactly as a naive CUDA port would.
pub fn scc_backward_output_centric(
    cfg: &SccConfig,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stats: Option<&KernelStats>,
) -> SccGradients {
    validate_shapes(cfg, input, weight, None);
    let map = ChannelCycleMap::build(cfg);
    let (n, cin, h, w) = dims4(input);
    let cout = cfg.cout();
    let gw = cfg.group_width();
    let plane = h * w;
    assert_eq!(grad_output.shape(), &[n, cout, h, w], "grad_output shape");

    let in_data = input.as_slice();
    let go_data = grad_output.as_slice();
    let w_data = weight.as_slice();

    // Shared scatter targets, implemented with CAS atomics (the CPU analogue
    // of CUDA atomicAdd on floats).
    let grad_input_atomic: Vec<AtomicU32> = (0..n * cin * plane)
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();
    let grad_weight_atomic: Vec<AtomicU32> = (0..cout * gw)
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();
    let grad_bias_atomic: Vec<AtomicU32> =
        (0..cout).map(|_| AtomicU32::new(0f32.to_bits())).collect();
    let atomic_count = KernelStats::new();

    // One logical thread group per (image, output channel) plane, exactly
    // mirroring the forward decomposition ("simply reverse the forward
    // computation flow", §IV-B).
    par::parallel_for(n * cout, |chunk_idx| {
        let img = chunk_idx / cout;
        let oc = chunk_idx % cout;
        let window = map.window_for_output(oc);
        let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];

        let mut bias_acc = 0.0f32;
        for (p, &go) in go_plane.iter().enumerate() {
            bias_acc += go;
            for j in 0..gw {
                let ic = window.channel_at(j);
                // Scatter into the shared input gradient: needs an atomic.
                let target = (img * cin + ic) * plane + p;
                atomic_add_f32(&grad_input_atomic[target], w_data[oc * gw + j] * go);
                // Scatter into the shared weight gradient: different images
                // update the same filter row concurrently, so this is atomic
                // too.
                let in_v = in_data[(img * cin + ic) * plane + p];
                atomic_add_f32(&grad_weight_atomic[oc * gw + j], in_v * go);
            }
        }
        atomic_add_f32(&grad_bias_atomic[oc], bias_acc);
        atomic_count.add_atomics(plane * gw * 2 + 1);
    });

    // ORDER: the three collection loops below run after the parallel
    // scatter has been joined — the pool's completion latch (AcqRel in
    // `pool.rs`) is the happens-before edge that makes every CAS visible,
    // so the loads need no ordering of their own.
    let grad_input = Tensor::from_vec(
        grad_input_atomic
            .iter()
            .map(|a| f32::from_bits(a.load(Ordering::Relaxed))) // ORDER: post-join read (see above)
            .collect(),
        &[n, cin, h, w],
    );
    let grad_weight = Tensor::from_vec(
        grad_weight_atomic
            .iter()
            .map(|a| f32::from_bits(a.load(Ordering::Relaxed))) // ORDER: post-join read (see above)
            .collect(),
        &[cout, gw],
    );
    let grad_bias = Tensor::from_vec(
        grad_bias_atomic
            .iter()
            .map(|a| f32::from_bits(a.load(Ordering::Relaxed))) // ORDER: post-join read (see above)
            .collect(),
        &[cout],
    );

    if let Some(s) = stats {
        s.add_launches(1);
        s.add_macs(2 * n * cout * plane * gw + n * cout * plane);
        s.add_atomics(atomic_count.atomic_updates());
        s.add_bytes_moved(grad_input.bytes() + grad_weight.bytes() + grad_bias.bytes());
    }

    SccGradients {
        grad_input,
        grad_weight,
        grad_bias,
    }
}

/// Atomic `+=` on an `f32` stored as bits in an `AtomicU32` (CAS loop), the
/// standard CPU emulation of `atomicAdd(float*)`.
fn atomic_add_f32(cell: &AtomicU32, value: f32) {
    // ORDER: pure accumulation into a single cell — the CAS only needs the
    // cell's own modification order (which even Relaxed RMWs get); no other
    // memory is published through it, and readers wait for the pool join.
    let mut current = cell.load(Ordering::Relaxed); // ORDER: hint for the first CAS attempt; any stale value self-corrects
    loop {
        let new = (f32::from_bits(current) + value).to_bits();
        // ORDER: see fn-level comment — single-cell sum, no payload
        match cell.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => current = actual,
        }
    }
}

/// Number of atomic updates the output-centric backward performs for a given
/// problem size (analytic form used by the GPU cost model and the tests):
/// every (output pixel, window tap) pair issues one atomic for the input
/// gradient and one for the weight gradient, plus one per output plane for
/// the bias.
pub fn output_centric_atomic_count(cfg: &SccConfig, n: usize, h: usize, w: usize) -> usize {
    n * cfg.cout() * (h * w * cfg.group_width() * 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::scc_backward_reference;
    use dsx_tensor::{allclose, TEST_TOLERANCE};
    use proptest::prelude::*;

    fn gradients_match(a: &SccGradients, b: &SccGradients, tol: f32) -> bool {
        allclose(&a.grad_input, &b.grad_input, tol)
            && allclose(&a.grad_weight, &b.grad_weight, tol)
            && allclose(&a.grad_bias, &b.grad_bias, tol)
    }

    fn reference_gradients(
        cfg: &SccConfig,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> SccGradients {
        let (gi, gw, gb) = scc_backward_reference(cfg, input, weight, grad_output);
        SccGradients {
            grad_input: gi,
            grad_weight: gw,
            grad_bias: gb,
        }
    }

    #[test]
    fn input_centric_matches_reference() {
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let input = Tensor::randn(&[2, 8, 5, 5], 1);
        let weight = Tensor::randn(&[16, 4], 2);
        let grad_out = Tensor::randn(&[2, 16, 5, 5], 3);
        let fast = scc_backward_input_centric(&cfg, &input, &weight, &grad_out, None);
        let slow = reference_gradients(&cfg, &input, &weight, &grad_out);
        assert!(gradients_match(&fast, &slow, TEST_TOLERANCE));
    }

    #[test]
    fn output_centric_matches_reference() {
        let cfg = SccConfig::new(8, 16, 4, 0.5).unwrap();
        let input = Tensor::randn(&[2, 8, 4, 4], 4);
        let weight = Tensor::randn(&[16, 2], 5);
        let grad_out = Tensor::randn(&[2, 16, 4, 4], 6);
        let fast = scc_backward_output_centric(&cfg, &input, &weight, &grad_out, None);
        let slow = reference_gradients(&cfg, &input, &weight, &grad_out);
        assert!(gradients_match(&fast, &slow, 1e-3));
    }

    #[test]
    fn both_kernels_agree_with_each_other() {
        let cfg = SccConfig::new(12, 18, 2, 0.33).unwrap();
        let input = Tensor::randn(&[1, 12, 6, 6], 7);
        let weight = Tensor::randn(&[18, 6], 8);
        let grad_out = Tensor::randn(&[1, 18, 6, 6], 9);
        let ic = scc_backward_input_centric(&cfg, &input, &weight, &grad_out, None);
        let oc = scc_backward_output_centric(&cfg, &input, &weight, &grad_out, None);
        assert!(gradients_match(&ic, &oc, 1e-3));
    }

    #[test]
    fn input_centric_needs_no_atomics_and_output_centric_needs_many() {
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let input = Tensor::randn(&[2, 8, 8, 8], 10);
        let weight = Tensor::randn(&[16, 4], 11);
        let grad_out = Tensor::randn(&[2, 16, 8, 8], 12);

        let ic_stats = KernelStats::new();
        scc_backward_input_centric(&cfg, &input, &weight, &grad_out, Some(&ic_stats));
        let oc_stats = KernelStats::new();
        scc_backward_output_centric(&cfg, &input, &weight, &grad_out, Some(&oc_stats));

        assert_eq!(ic_stats.atomic_updates(), 0);
        let expected = output_centric_atomic_count(&cfg, 2, 8, 8);
        assert_eq!(oc_stats.atomic_updates(), expected);
        // The paper reports >90% atomic reduction; ours is 100% for this
        // kernel pair.
        assert!(oc_stats.atomic_updates() > 0);
    }

    #[test]
    fn atomic_count_formula_is_consistent() {
        let cfg = SccConfig::new(16, 32, 4, 0.5).unwrap();
        assert_eq!(
            output_centric_atomic_count(&cfg, 3, 7, 5),
            3 * 32 * (7 * 5 * 4 * 2 + 1)
        );
    }

    #[test]
    fn zero_grad_output_gives_zero_gradients() {
        let cfg = SccConfig::new(4, 8, 2, 0.5).unwrap();
        let input = Tensor::randn(&[1, 4, 3, 3], 13);
        let weight = Tensor::randn(&[8, 2], 14);
        let grad_out = Tensor::zeros(&[1, 8, 3, 3]);
        let g = scc_backward_input_centric(&cfg, &input, &weight, &grad_out, None);
        assert_eq!(g.grad_input.sum(), 0.0);
        assert_eq!(g.grad_weight.sum(), 0.0);
        assert_eq!(g.grad_bias.sum(), 0.0);
    }

    /// Property-test case count: full natively, minimal under Miri or
    /// `DSX_TEST_FAST` (sanitizer/interpreter runs need the coverage, not
    /// the volume).
    fn prop_cases(full: u32) -> u32 {
        if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
            2
        } else {
            full
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(prop_cases(12)))]

        #[test]
        fn prop_input_centric_equals_reference(
            cg_pow in 0u32..3,
            cin_mult in 1usize..3,
            cout in 1usize..12,
            co in prop::sample::select(vec![0.0f64, 0.25, 0.5, 0.66]),
            hw in 1usize..5,
            seed in 0u64..300,
        ) {
            let cg = 1usize << cg_pow;
            let cin = cg * cin_mult;
            let cfg = match SccConfig::new(cin, cout, cg, co) {
                Ok(c) => c,
                Err(_) => return Ok(()),
            };
            let input = Tensor::randn(&[1, cin, hw, hw], seed);
            let weight = Tensor::randn(&[cout, cfg.group_width()], seed + 1);
            let grad_out = Tensor::randn(&[1, cout, hw, hw], seed + 2);
            let fast = scc_backward_input_centric(&cfg, &input, &weight, &grad_out, None);
            let slow = reference_gradients(&cfg, &input, &weight, &grad_out);
            prop_assert!(gradients_match(&fast, &slow, 1e-3));
        }
    }
}
