//! Sliding-channel convolution configuration.
//!
//! An SCC layer is fully described by four quantities (paper §III-A):
//!
//! * `cin`  — number of input channels,
//! * `cout` — number of output channels (= number of 1×1 filters),
//! * `cg`   — number of channel groups; every filter reads
//!   `group_width = cin / cg` input channels,
//! * `co`   — input-channel overlap ratio between *adjacent* filters, as a
//!   fraction of the group width (`0.0 ≤ co < 1.0`; `co = 0.5` is the paper's
//!   "co50%" setting).
//!
//! The paper's notation `SCC-cgX-coY%` maps to `SccConfig::new(cin, cout, X,
//! Y/100.0)`. Two degenerate corners recover the existing factorized kernels:
//! `cg = 1` (any overlap) is a plain pointwise convolution, and `co = 0` is
//! group pointwise convolution (GPW).

/// Errors produced when validating an [`SccConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum SccConfigError {
    /// `cin`, `cout` or `cg` was zero.
    ZeroDimension,
    /// `cin` is not divisible by `cg`.
    ChannelsNotDivisible {
        /// Input channels requested.
        cin: usize,
        /// Group count requested.
        cg: usize,
    },
    /// The overlap ratio is outside `[0, 1)`.
    OverlapOutOfRange(f64),
    /// The overlap rounds to a full group width, so adjacent filters would be
    /// identical and the window would never slide.
    OverlapDegenerate {
        /// Overlap (in channels) after rounding.
        overlap_channels: usize,
        /// Group width in channels.
        group_width: usize,
    },
}

impl std::fmt::Display for SccConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SccConfigError::ZeroDimension => {
                write!(f, "cin, cout and cg must all be non-zero")
            }
            SccConfigError::ChannelsNotDivisible { cin, cg } => {
                write!(f, "cin = {cin} is not divisible by cg = {cg}")
            }
            SccConfigError::OverlapOutOfRange(co) => {
                write!(f, "overlap ratio {co} must lie in [0, 1)")
            }
            SccConfigError::OverlapDegenerate {
                overlap_channels,
                group_width,
            } => write!(
                f,
                "overlap of {overlap_channels} channels equals the group width {group_width}; \
                 adjacent filters would never slide (use plain PW instead)"
            ),
        }
    }
}

impl std::error::Error for SccConfigError {}

/// Validated configuration of one sliding-channel convolution layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SccConfig {
    cin: usize,
    cout: usize,
    cg: usize,
    co: f64,
    group_width: usize,
    overlap_channels: usize,
}

impl SccConfig {
    /// Validates and builds a configuration.
    ///
    /// `co` is the overlap ratio in `[0, 1)`. The overlap in *channels* is
    /// `round(co * group_width)` (so `co = 0.33` with a group width of 3
    /// yields 1 overlapping channel, matching Fig. 5(b) of the paper).
    pub fn new(cin: usize, cout: usize, cg: usize, co: f64) -> Result<Self, SccConfigError> {
        if cin == 0 || cout == 0 || cg == 0 {
            return Err(SccConfigError::ZeroDimension);
        }
        if !cin.is_multiple_of(cg) {
            return Err(SccConfigError::ChannelsNotDivisible { cin, cg });
        }
        if !(0.0..1.0).contains(&co) || !co.is_finite() {
            return Err(SccConfigError::OverlapOutOfRange(co));
        }
        let group_width = cin / cg;
        let overlap_channels = ((co * group_width as f64).round() as usize).min(group_width);
        if overlap_channels == group_width && group_width > 1 {
            return Err(SccConfigError::OverlapDegenerate {
                overlap_channels,
                group_width,
            });
        }
        Ok(SccConfig {
            cin,
            cout,
            cg,
            co,
            group_width,
            overlap_channels,
        })
    }

    /// A plain pointwise convolution expressed as an SCC configuration
    /// (`cg = 1`): every filter sees every input channel.
    pub fn pointwise(cin: usize, cout: usize) -> Self {
        // lint: allow(panic) — cg = 1 divides everything and co = 0 is in
        // range; the validator cannot reject this shape.
        SccConfig::new(cin, cout, 1, 0.0).expect("pointwise config is always valid")
    }

    /// A group pointwise convolution expressed as an SCC configuration
    /// (`co = 0`): adjacent filters either fully share or fully split their
    /// input channels.
    pub fn group_pointwise(cin: usize, cout: usize, cg: usize) -> Result<Self, SccConfigError> {
        SccConfig::new(cin, cout, cg, 0.0)
    }

    /// Number of input channels.
    pub fn cin(&self) -> usize {
        self.cin
    }

    /// Number of output channels (filters).
    pub fn cout(&self) -> usize {
        self.cout
    }

    /// Number of channel groups.
    pub fn cg(&self) -> usize {
        self.cg
    }

    /// Overlap ratio as requested by the user.
    pub fn co(&self) -> f64 {
        self.co
    }

    /// Channels each filter reads (`cin / cg`).
    pub fn group_width(&self) -> usize {
        self.group_width
    }

    /// Overlap between adjacent filters, in channels.
    pub fn overlap_channels(&self) -> usize {
        self.overlap_channels
    }

    /// How far (in channels) each filter's window start moves relative to the
    /// previous filter. `group_width - overlap_channels`, at least 1 except
    /// for the degenerate single-channel group.
    pub fn slide_stride(&self) -> usize {
        (self.group_width - self.overlap_channels).max(1)
    }

    /// Whether this configuration degenerates to a plain pointwise
    /// convolution (every filter reads every input channel).
    pub fn is_pointwise(&self) -> bool {
        self.group_width == self.cin
    }

    /// Whether this configuration degenerates to a group pointwise
    /// convolution (no overlap between adjacent filters).
    pub fn is_group_pointwise(&self) -> bool {
        self.overlap_channels == 0
    }

    /// Number of weight parameters of the layer: `cout * group_width`
    /// (each 1×1 filter has `group_width` taps). Excludes bias.
    pub fn weight_params(&self) -> usize {
        self.cout * self.group_width
    }

    /// Multiply-accumulate operations for one forward pass over a
    /// `fw × fw` feature map with batch size `n`.
    pub fn forward_macs(&self, n: usize, fw: usize) -> usize {
        n * self.cout * fw * fw * self.group_width
    }

    /// Short textual tag in the paper's notation, e.g. `SCC-cg2-co50%`.
    pub fn tag(&self) -> String {
        format!(
            "SCC-cg{}-co{}%",
            self.cg,
            (self.co * 100.0).round() as usize
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_reports_derived_quantities() {
        let cfg = SccConfig::new(64, 128, 2, 0.5).unwrap();
        assert_eq!(cfg.group_width(), 32);
        assert_eq!(cfg.overlap_channels(), 16);
        assert_eq!(cfg.slide_stride(), 16);
        assert_eq!(cfg.weight_params(), 128 * 32);
        assert_eq!(cfg.tag(), "SCC-cg2-co50%");
        assert!(!cfg.is_pointwise());
        assert!(!cfg.is_group_pointwise());
    }

    #[test]
    fn paper_fig5_examples() {
        // Fig. 5(a): Cin = 4, cg = 2, co = 50% -> group width 2, overlap 1.
        let a = SccConfig::new(4, 8, 2, 0.5).unwrap();
        assert_eq!(a.group_width(), 2);
        assert_eq!(a.overlap_channels(), 1);
        // Fig. 5(b): Cin = 6, cg = 2, co = 33% -> group width 3, overlap 1.
        let b = SccConfig::new(6, 6, 2, 0.33).unwrap();
        assert_eq!(b.group_width(), 3);
        assert_eq!(b.overlap_channels(), 1);
    }

    #[test]
    fn pointwise_and_gpw_special_cases() {
        let pw = SccConfig::pointwise(16, 32);
        assert!(pw.is_pointwise());
        assert_eq!(pw.group_width(), 16);

        let gpw = SccConfig::group_pointwise(16, 32, 4).unwrap();
        assert!(gpw.is_group_pointwise());
        assert_eq!(gpw.group_width(), 4);
        assert_eq!(gpw.slide_stride(), 4);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert_eq!(
            SccConfig::new(0, 8, 2, 0.5).unwrap_err(),
            SccConfigError::ZeroDimension
        );
        assert_eq!(
            SccConfig::new(8, 0, 2, 0.5).unwrap_err(),
            SccConfigError::ZeroDimension
        );
        assert_eq!(
            SccConfig::new(8, 8, 0, 0.5).unwrap_err(),
            SccConfigError::ZeroDimension
        );
    }

    #[test]
    fn rejects_non_divisible_channels() {
        assert!(matches!(
            SccConfig::new(10, 8, 4, 0.5).unwrap_err(),
            SccConfigError::ChannelsNotDivisible { .. }
        ));
    }

    #[test]
    fn rejects_out_of_range_overlap() {
        assert!(matches!(
            SccConfig::new(8, 8, 2, 1.0).unwrap_err(),
            SccConfigError::OverlapOutOfRange(_)
        ));
        assert!(matches!(
            SccConfig::new(8, 8, 2, -0.1).unwrap_err(),
            SccConfigError::OverlapOutOfRange(_)
        ));
    }

    #[test]
    fn rejects_degenerate_overlap() {
        // group width 4, co = 0.9 rounds to 4 channels of overlap -> stuck.
        assert!(matches!(
            SccConfig::new(8, 8, 2, 0.9).unwrap_err(),
            SccConfigError::OverlapDegenerate { .. }
        ));
    }

    #[test]
    fn forward_macs_formula() {
        let cfg = SccConfig::new(64, 128, 2, 0.5).unwrap();
        // N * Cout * Fw * Fw * group_width
        assert_eq!(cfg.forward_macs(2, 56), 2 * 128 * 56 * 56 * 32);
    }

    #[test]
    fn error_display_is_informative() {
        let err = SccConfig::new(10, 8, 4, 0.5).unwrap_err();
        assert!(err.to_string().contains("not divisible"));
    }
}
