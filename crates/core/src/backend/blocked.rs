//! Register-blocked, autovectorizable SCC kernels.
//!
//! Three ideas, all safe Rust (no `unsafe`, no intrinsics, no nightly):
//!
//! 1. **Spatial tiling** — the output plane is processed in [`LANES`]-wide
//!    strips held in fixed-size `[f32; LANES]` accumulator arrays. The inner
//!    loops run over a constant bound, so LLVM unrolls and autovectorizes
//!    them, and each output strip is written exactly once instead of once
//!    per window tap (the naive kernel makes `group_width` passes over the
//!    whole plane).
//! 2. **Output-channel blocking** — Algorithm 2 makes output channels
//!    `oc` and `oc + cyclic_dist` read the *same* input-channel window, so
//!    the forward kernel groups all planes sharing a window (via
//!    `par::parallel_for_each_chunk_group_mut`) and computes [`OC_BLOCK`]
//!    of them together: every input tile loaded from memory feeds
//!    `OC_BLOCK` independent accumulator rows, cutting input traffic by
//!    that factor. On the default CIFAR-scale bench workload
//!    (`cin=64, cg=2, co=0.5, cout=128`) 32 output channels share each
//!    window.
//! 3. **Tap blocking in the weight gradient** — the `grad_output` strip is
//!    loaded once per [`TAP_BLOCK`] window taps rather than once per tap.
//!
//! The scalar tail handles plane sizes that do not divide [`LANES`], so any
//! spatial shape is supported; the cross-backend proptest suite exercises
//! exactly those ragged cases.

use super::{record_forward_stats, BackendKind, KernelBackend};
use crate::backward::naive_grad_bias;
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::reference::{dims4, validate_shapes};
use crate::stats::KernelStats;
use dsx_tensor::{par, Tensor};

/// Width (in `f32` elements) of one register tile; `[f32; LANES]` arrays
/// are the unit LLVM autovectorizes.
pub const LANES: usize = 8;

/// How many output channels sharing an input-channel window are accumulated
/// per forward pass. Sized so the `OC_BLOCK * LANES`-float accumulator tile
/// plus one input tile still fits the 16 SIMD registers of baseline x86-64.
pub const OC_BLOCK: usize = 6;

/// How many window taps share one `grad_output` strip in the weight-gradient
/// kernel (a narrower block: each tap adds an input tile to the register
/// working set).
pub const TAP_BLOCK: usize = 4;

/// The register-blocked execution substrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend;

impl KernelBackend for BlockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn forward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        validate_shapes(cfg, input, weight, bias);
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        let cd = map.cyclic_dist().max(1);

        let mut output = Tensor::zeros(&[n, cout, h, w]);
        let in_data = input.as_slice();
        let w_data = weight.as_slice();
        let b_data = bias.map(|b| b.as_slice());

        // One group per (image, channel window): all output-channel planes of
        // the group read the same input channels, so one worker streams each
        // input tile once and feeds OC_BLOCK accumulator rows from it.
        par::parallel_for_each_chunk_group_mut(
            output.as_mut_slice(),
            plane,
            n * cd,
            |chunk_idx| {
                let img = chunk_idx / cout;
                let oc = chunk_idx % cout;
                img * cd + oc % cd
            },
            |group_idx, planes| {
                let img = group_idx / cd;
                let window = map.windows()[group_idx % cd];
                // Per-tap channel base offsets into this image, resolved once.
                let bases: Vec<usize> = window.channels().iter().map(|ic| ic * plane).collect();
                let image = &in_data[img * cin * plane..(img + 1) * cin * plane];
                let mut rest = planes;
                while !rest.is_empty() {
                    let take = rest.len().min(OC_BLOCK);
                    let (block, tail) = rest.split_at_mut(take);
                    match take {
                        6 => forward_block::<6>(block, &bases, image, w_data, b_data, gw, cout),
                        5 => forward_block::<5>(block, &bases, image, w_data, b_data, gw, cout),
                        4 => forward_block::<4>(block, &bases, image, w_data, b_data, gw, cout),
                        3 => forward_block::<3>(block, &bases, image, w_data, b_data, gw, cout),
                        2 => forward_block::<2>(block, &bases, image, w_data, b_data, gw, cout),
                        _ => forward_block::<1>(block, &bases, image, w_data, b_data, gw, cout),
                    }
                    rest = tail;
                }
            },
        );

        record_forward_stats(cfg, n, plane, &output, stats);
        output
    }

    fn grad_input(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        let (n, cout, h, w) = dims4(grad_output);
        let cin = cfg.cin();
        let gw = cfg.group_width();
        let plane = h * w;
        let go_data = grad_output.as_slice();
        let w_data = weight.as_slice();
        let reverse = map.input_to_outputs();

        let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
        par::parallel_for_each_chunk_mut(
            grad_input.as_mut_slice(),
            plane,
            |chunk_idx, gi_plane| {
                let img = chunk_idx / cin;
                let ic = chunk_idx % cin;
                let pairs = &reverse[ic];
                let go_image = &go_data[img * cout * plane..(img + 1) * cout * plane];
                let mut t = 0usize;
                // Pull every covering filter's contribution into a register tile
                // and write the strip once (the naive kernel re-reads and
                // re-writes the plane once per covering filter).
                while t + LANES <= plane {
                    let mut acc = [0.0f32; LANES];
                    for &(oc, offset) in pairs {
                        let wj = w_data[oc * gw + offset];
                        let g: [f32; LANES] = go_image[oc * plane + t..oc * plane + t + LANES]
                            .try_into()
                            .expect("strip is LANES wide");
                        for l in 0..LANES {
                            acc[l] += wj * g[l];
                        }
                    }
                    gi_plane[t..t + LANES].copy_from_slice(&acc);
                    t += LANES;
                }
                while t < plane {
                    let mut acc = 0.0f32;
                    for &(oc, offset) in pairs {
                        acc += w_data[oc * gw + offset] * go_image[oc * plane + t];
                    }
                    gi_plane[t] = acc;
                    t += 1;
                }
            },
        );
        grad_input
    }

    fn grad_weight_bias(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor) {
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        let in_data = input.as_slice();
        let go_data = grad_output.as_slice();

        let mut grad_weight = Tensor::zeros(&[cout, gw]);
        par::parallel_for_each_chunk_mut(grad_weight.as_mut_slice(), gw, |oc, gw_row| {
            let window = map.window_for_output(oc);
            let ics = window.channels();
            for img in 0..n {
                let go_plane = &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
                let image = &in_data[img * cin * plane..(img + 1) * cin * plane];
                let mut j = 0usize;
                while j < gw {
                    let take = (gw - j).min(TAP_BLOCK);
                    let taps = &ics[j..j + take];
                    let row = &mut gw_row[j..j + take];
                    match take {
                        4 => grad_weight_taps::<4>(row, taps, go_plane, image, plane),
                        3 => grad_weight_taps::<3>(row, taps, go_plane, image, plane),
                        2 => grad_weight_taps::<2>(row, taps, go_plane, image, plane),
                        _ => grad_weight_taps::<1>(row, taps, go_plane, image, plane),
                    }
                    j += take;
                }
            }
        });
        (grad_weight, naive_grad_bias(cfg, grad_output))
    }
}

/// Computes one spatial pass of `OCB` output-channel planes that share an
/// input-channel window: for every [`LANES`]-wide strip, each input tile is
/// loaded once and multiplied into `OCB` register accumulator rows.
///
/// The per-tap filter weights are pre-broadcast into a `[gw][OCB]`
/// `[f32; LANES]` table so the hot loop is pure loads + mul/add on
/// fixed-width arrays — no scalar broadcasts, no index arithmetic beyond
/// `base + t`, and the only branches are the (predictable) slice checks.
#[allow(clippy::too_many_arguments)]
fn forward_block<const OCB: usize>(
    block: &mut [(usize, &mut [f32])],
    bases: &[usize],
    image: &[f32],
    w_data: &[f32],
    b_data: Option<&[f32]>,
    gw: usize,
    cout: usize,
) {
    debug_assert_eq!(block.len(), OCB);
    let plane = block[0].1.len();
    let mut biases = [0.0f32; OCB];
    // Broadcast weight table: wtab[j * OCB + b] = splat(weight[oc_b][j]).
    let mut wtab: Vec<[f32; LANES]> = vec![[0.0; LANES]; gw * OCB];
    for (b, (chunk_idx, _)) in block.iter().enumerate() {
        let oc = chunk_idx % cout;
        biases[b] = b_data.map(|bd| bd[oc]).unwrap_or(0.0);
        for j in 0..gw {
            wtab[j * OCB + b] = [w_data[oc * gw + j]; LANES];
        }
    }
    let mut t = 0usize;
    while t + LANES <= plane {
        let mut acc = [[0.0f32; LANES]; OCB];
        for (&base, wv) in bases.iter().zip(wtab.chunks_exact(OCB)) {
            let x: [f32; LANES] = image[base + t..base + t + LANES]
                .try_into()
                .expect("tile is LANES wide");
            for b in 0..OCB {
                let w = wv[b];
                let row = &mut acc[b];
                for l in 0..LANES {
                    row[l] += w[l] * x[l];
                }
            }
        }
        for (b, (_, out_plane)) in block.iter_mut().enumerate() {
            let bias = biases[b];
            for (dst, a) in out_plane[t..t + LANES].iter_mut().zip(acc[b]) {
                *dst = a + bias;
            }
        }
        t += LANES;
    }
    // Scalar tail for plane sizes that do not divide the tile width.
    while t < plane {
        for (b, (_, out_plane)) in block.iter_mut().enumerate() {
            let mut acc = biases[b];
            for (&base, wv) in bases.iter().zip(wtab.chunks_exact(OCB)) {
                acc += wv[b][0] * image[base + t];
            }
            out_plane[t] = acc;
        }
        t += 1;
    }
}

/// Accumulates `TB` consecutive taps of one filter row: the `grad_output`
/// strip is loaded once per tile and dotted against `TB` input-channel
/// tiles, with per-tap `[f32; LANES]` partial sums reduced at the end.
fn grad_weight_taps<const TB: usize>(
    row: &mut [f32],
    taps: &[usize],
    go_plane: &[f32],
    image: &[f32],
    plane: usize,
) {
    debug_assert_eq!(row.len(), TB);
    debug_assert_eq!(taps.len(), TB);
    let mut acc = [[0.0f32; LANES]; TB];
    let mut t = 0usize;
    while t + LANES <= plane {
        let g: [f32; LANES] = go_plane[t..t + LANES]
            .try_into()
            .expect("strip is LANES wide");
        for b in 0..TB {
            let base = taps[b] * plane + t;
            let x: [f32; LANES] = image[base..base + LANES]
                .try_into()
                .expect("tile is LANES wide");
            let lanes = &mut acc[b];
            for l in 0..LANES {
                lanes[l] += g[l] * x[l];
            }
        }
        t += LANES;
    }
    let mut tails = [0.0f32; TB];
    while t < plane {
        let g = go_plane[t];
        for b in 0..TB {
            tails[b] += g * image[taps[b] * plane + t];
        }
        t += 1;
    }
    for b in 0..TB {
        row[b] += acc[b].iter().sum::<f32>() + tails[b];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{scc_backward_reference, scc_forward_reference};
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    fn check(cin: usize, cout: usize, cg: usize, co: f64, n: usize, h: usize, w: usize) {
        let cfg = SccConfig::new(cin, cout, cg, co).unwrap();
        let map = ChannelCycleMap::build(&cfg);
        let input = Tensor::randn(&[n, cin, h, w], 11);
        let weight = Tensor::randn(&[cout, cfg.group_width()], 12);
        let bias = Tensor::randn(&[cout], 13);
        let grad_out = Tensor::randn(&[n, cout, h, w], 14);
        let backend = BlockedBackend;

        let fwd = backend.forward(&cfg, &map, &input, &weight, Some(&bias), None);
        let ref_fwd = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        assert!(
            allclose(&fwd, &ref_fwd, TEST_TOLERANCE),
            "forward diverges for cin={cin} cout={cout} cg={cg} co={co} {h}x{w}"
        );

        let grads = backend.backward(&cfg, &map, &input, &weight, &grad_out, None);
        let (ref_gi, ref_gw, ref_gb) = scc_backward_reference(&cfg, &input, &weight, &grad_out);
        assert!(
            allclose(&grads.grad_input, &ref_gi, TEST_TOLERANCE),
            "grad_input"
        );
        assert!(
            allclose(&grads.grad_weight, &ref_gw, TEST_TOLERANCE),
            "grad_weight"
        );
        assert!(
            allclose(&grads.grad_bias, &ref_gb, TEST_TOLERANCE),
            "grad_bias"
        );
    }

    #[test]
    fn matches_reference_on_paper_settings() {
        check(16, 32, 2, 0.5, 2, 5, 5);
        check(16, 32, 4, 0.5, 1, 4, 4);
        check(16, 32, 8, 0.5, 1, 4, 4);
        check(12, 24, 2, 0.33, 2, 3, 3);
    }

    #[test]
    fn matches_reference_on_ragged_planes_and_non_square_dims() {
        // Plane sizes that do not divide LANES (scalar tail), including
        // planes smaller than one tile, and non-square spatial dims.
        check(8, 16, 2, 0.5, 2, 3, 5); // plane 15
        check(8, 16, 2, 0.5, 1, 1, 3); // plane 3 < LANES
        check(8, 12, 4, 0.25, 1, 7, 9); // plane 63
        check(8, 16, 2, 0.5, 1, 2, 4); // plane 8 == LANES exactly
    }

    #[test]
    fn matches_reference_when_output_channels_do_not_fill_blocks() {
        // cout chosen so window groups hold 1, 2, 3 and 5 planes — exercising
        // every forward_block monomorphisation including partial blocks.
        check(8, 4, 2, 0.5, 1, 4, 4); // 4 windows, 1 plane each
        check(8, 7, 2, 0.5, 1, 4, 4); // ragged: some windows get 2 planes
        check(4, 10, 2, 0.5, 1, 4, 4); // cyclic_dist 4 -> groups of 2 and 3
        check(4, 20, 2, 0.5, 1, 4, 4); // groups of 5: one full block + 1
    }

    #[test]
    fn pointwise_and_gpw_corners() {
        check(8, 12, 1, 0.0, 1, 4, 4); // pointwise: one shared window
        check(8, 12, 4, 0.0, 1, 4, 4); // GPW: disjoint windows
    }
}
