//! Register-blocked, autovectorizable SCC kernels.
//!
//! Three ideas, all safe Rust (no `unsafe`, no intrinsics, no nightly):
//!
//! 1. **Spatial tiling** — the output plane is processed in [`LANES`]-wide
//!    strips held in fixed-size `[f32; LANES]` accumulator arrays. The inner
//!    loops run over a constant bound, so LLVM unrolls and autovectorizes
//!    them, and each output strip is written exactly once instead of once
//!    per window tap (the naive kernel makes `group_width` passes over the
//!    whole plane).
//! 2. **Output-channel blocking** — Algorithm 2 makes output channels
//!    `oc` and `oc + cyclic_dist` read the *same* input-channel window, so
//!    the forward kernel groups all planes sharing a window (via
//!    `par::parallel_for_each_chunk_group_mut`) and computes [`OC_BLOCK`]
//!    of them together: every input tile loaded from memory feeds
//!    `OC_BLOCK` independent accumulator rows, cutting input traffic by
//!    that factor. On the default CIFAR-scale bench workload
//!    (`cin=64, cg=2, co=0.5, cout=128`) 32 output channels share each
//!    window.
//! 3. **Tap blocking in the weight gradient** — the `grad_output` strip is
//!    loaded once per [`TAP_BLOCK`] window taps rather than once per tap.
//!
//! The scalar tail handles plane sizes that do not divide [`LANES`], so any
//! spatial shape is supported; the cross-backend proptest suite exercises
//! exactly those ragged cases.

use super::{record_forward_stats, BackendKind, KernelBackend};
use crate::backward::naive_grad_bias;
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::reference::{dims4, validate_shapes};
use crate::stats::KernelStats;
use dsx_tensor::{par, Tensor};

/// Width (in `f32` elements) of one register tile; `[f32; LANES]` arrays
/// are the unit LLVM autovectorizes.
pub const LANES: usize = 8;

/// How many output channels sharing an input-channel window are accumulated
/// per forward pass. Sized so the `OC_BLOCK * LANES`-float accumulator tile
/// plus one input tile still fits the 16 SIMD registers of baseline x86-64.
pub const OC_BLOCK: usize = 6;

/// How many window taps share one `grad_output` strip in the weight-gradient
/// kernel (a narrower block: each tap adds an input tile to the register
/// working set).
pub const TAP_BLOCK: usize = 4;

/// The register-blocked execution substrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend;

impl KernelBackend for BlockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn forward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        validate_shapes(cfg, input, weight, bias);
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        let cd = map.cyclic_dist().max(1);

        let mut output = Tensor::zeros(&[n, cout, h, w]);
        let in_data = input.as_slice();
        let w_data = weight.as_slice();
        let b_data = bias.map(|b| b.as_slice());

        // Per-window tap offsets and pre-broadcast weight tables, resolved
        // once per call and reused by every image that reads the window.
        let window_bases = build_window_bases(map, cd, plane);
        let window_tables = build_all_window_tables(cd, cout, w_data, b_data, gw);

        // One group per (image, channel window): all output-channel planes of
        // the group read the same input channels, so one worker streams each
        // input tile once and feeds OC_BLOCK accumulator rows from it.
        par::parallel_for_each_chunk_group_mut(
            output.as_mut_slice(),
            plane,
            n * cd,
            |chunk_idx| {
                let img = chunk_idx / cout;
                let oc = chunk_idx % cout;
                img * cd + oc % cd
            },
            |group_idx, planes| {
                let img = group_idx / cd;
                let window = group_idx % cd;
                let image = &in_data[img * cin * plane..(img + 1) * cin * plane];
                forward_blocks(
                    planes,
                    0,
                    &window_bases[window],
                    image,
                    &window_tables[window],
                );
            },
        );

        record_forward_stats(cfg, n, plane, &output, stats);
        output
    }

    fn grad_input(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        let (n, cout, h, w) = dims4(grad_output);
        let cin = cfg.cin();
        let gw = cfg.group_width();
        let plane = h * w;
        let go_data = grad_output.as_slice();
        let w_data = weight.as_slice();
        let reverse = map.input_to_outputs();

        let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
        par::parallel_for_each_chunk_mut(
            grad_input.as_mut_slice(),
            plane,
            |chunk_idx, gi_plane| {
                let img = chunk_idx / cin;
                let ic = chunk_idx % cin;
                let go_image = &go_data[img * cout * plane..(img + 1) * cout * plane];
                grad_input_strip(gi_plane, 0, &reverse[ic], go_image, plane, w_data, gw);
            },
        );
        grad_input
    }

    fn grad_weight_bias(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor) {
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        let in_data = input.as_slice();
        let go_data = grad_output.as_slice();

        let mut grad_weight = Tensor::zeros(&[cout, gw]);
        // Grain 1: each gw-element row reduces over every image's whole
        // plane, so the length-proportional claim heuristic would batch
        // (or inline) rows that should spread across the pool.
        par::parallel_for_each_chunk_mut_with_grain(
            grad_weight.as_mut_slice(),
            gw,
            1,
            |oc, gw_row| {
                let window = map.window_for_output(oc);
                let ics = window.channels();
                for img in 0..n {
                    let go_plane =
                        &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
                    let image = &in_data[img * cin * plane..(img + 1) * cin * plane];
                    grad_weight_tap_blocks(gw_row, &ics, go_plane, image, plane, 0, plane);
                }
            },
        );
        (grad_weight, naive_grad_bias(cfg, grad_output))
    }
}

/// Computes one spatial pass of `OCB` output-channel strips that share an
/// input-channel window: for every [`LANES`]-wide strip, each input tile is
/// loaded once and multiplied into `OCB` register accumulator rows.
///
/// Each `block` entry is `(chunk_idx, strip)` where `strip` covers the
/// plane's spatial range `[t0, t0 + strip.len())`. [`BlockedBackend`]
/// passes whole planes (`t0 = 0`); the tiled backend passes cache-sized
/// row strips.
///
/// `wtab`/`biases` come pre-broadcast from [`build_window_tables`]
/// (`wtab[j * OCB + b] = splat(weight[oc_b][j])`), so the hot loop is pure
/// loads + mul/add on fixed-width arrays — no scalar broadcasts, no index
/// arithmetic beyond `base + t0 + t`, and the only branches are the
/// (predictable) slice checks.
pub(super) fn forward_block<const OCB: usize>(
    block: &mut [(usize, &mut [f32])],
    t0: usize,
    bases: &[usize],
    image: &[f32],
    wtab: &[[f32; LANES]],
    biases: &[f32],
) {
    debug_assert_eq!(block.len(), OCB);
    debug_assert_eq!(wtab.len() % OCB, 0);
    debug_assert!(biases.len() >= OCB);
    let strip_len = block[0].1.len();
    let mut t = 0usize;
    while t + LANES <= strip_len {
        let mut acc = [[0.0f32; LANES]; OCB];
        for (&base, wv) in bases.iter().zip(wtab.chunks_exact(OCB)) {
            let at = base + t0 + t;
            let x: [f32; LANES] = image[at..at + LANES]
                .try_into()
                // lint: allow(panic) — the range is LANES wide by
                // construction; failure would mean the tiler itself is
                // broken, which must die loudly, not corrupt output.
                .expect("tile is LANES wide");
            for b in 0..OCB {
                let w = wv[b];
                let row = &mut acc[b];
                for l in 0..LANES {
                    row[l] += w[l] * x[l];
                }
            }
        }
        for (b, (_, out_strip)) in block.iter_mut().enumerate() {
            let bias = biases[b];
            for (dst, a) in out_strip[t..t + LANES].iter_mut().zip(acc[b]) {
                *dst = a + bias;
            }
        }
        t += LANES;
    }
    // Scalar tail for strip lengths that do not divide the tile width.
    while t < strip_len {
        for (b, (_, out_strip)) in block.iter_mut().enumerate() {
            let mut acc = biases[b];
            for (&base, wv) in bases.iter().zip(wtab.chunks_exact(OCB)) {
                acc += wv[b][0] * image[base + t0 + t];
            }
            out_strip[t] = acc;
        }
        t += 1;
    }
}

/// Pre-broadcast forward tables for one cyclic window: for each
/// [`OC_BLOCK`]-sized chunk of the window's output channels (in ascending
/// `oc` order, matching the chunk order both backends hand to
/// [`forward_blocks`]), the splat weight table
/// (`wtab[j * len + b] = [weight[oc_b][j]; LANES]`) and bias row. Built
/// once per forward call and reused across every image (blocked backend)
/// and every row strip (tiled backend) that reads the window.
pub(super) struct WindowTables {
    blocks: Vec<WindowBlock>,
}

struct WindowBlock {
    wtab: Vec<[f32; LANES]>,
    biases: [f32; OC_BLOCK],
    len: usize,
}

/// Builds the [`WindowTables`] for one window's output channels.
pub(super) fn build_window_tables(
    ocs: &[usize],
    w_data: &[f32],
    b_data: Option<&[f32]>,
    gw: usize,
) -> WindowTables {
    let blocks = ocs
        .chunks(OC_BLOCK)
        .map(|chunk| {
            let len = chunk.len();
            let mut wtab = vec![[0.0f32; LANES]; gw * len];
            let mut biases = [0.0f32; OC_BLOCK];
            for (b, &oc) in chunk.iter().enumerate() {
                biases[b] = b_data.map(|bd| bd[oc]).unwrap_or(0.0);
                for j in 0..gw {
                    wtab[j * len + b] = [w_data[oc * gw + j]; LANES];
                }
            }
            WindowBlock { wtab, biases, len }
        })
        .collect();
    WindowTables { blocks }
}

/// [`build_window_tables`] for every window: window `w` owns output
/// channels `oc ≡ w (mod cd)` in ascending order.
pub(super) fn build_all_window_tables(
    cd: usize,
    cout: usize,
    w_data: &[f32],
    b_data: Option<&[f32]>,
    gw: usize,
) -> Vec<WindowTables> {
    (0..cd)
        .map(|w| {
            let ocs: Vec<usize> = (w..cout).step_by(cd).collect();
            build_window_tables(&ocs, w_data, b_data, gw)
        })
        .collect()
}

/// Per-tap input-channel base offsets for every window of `map`, resolved
/// once per call.
pub(super) fn build_window_bases(
    map: &ChannelCycleMap,
    cd: usize,
    plane: usize,
) -> Vec<Vec<usize>> {
    (0..cd)
        .map(|w| {
            map.windows()[w]
                .channels()
                .iter()
                .map(|ic| ic * plane)
                .collect()
        })
        .collect()
}

/// Runs [`forward_block`] over `strips` in [`OC_BLOCK`]-sized pieces using
/// the window's pre-built tables, dispatching to the right monomorphisation
/// for each (possibly partial) block. `strips` must list the window's
/// output channels in the same ascending order `tables` was built from.
/// Shared by the blocked backend (whole planes, `t0 = 0`) and the tiled
/// backend (row strips at arbitrary `t0`).
pub(super) fn forward_blocks(
    strips: &mut [(usize, &mut [f32])],
    t0: usize,
    bases: &[usize],
    image: &[f32],
    tables: &WindowTables,
) {
    let mut rest = strips;
    for block_tables in &tables.blocks {
        if rest.is_empty() {
            break;
        }
        let take = block_tables.len;
        debug_assert!(take <= rest.len(), "tables and strips disagree");
        let (block, tail) = rest.split_at_mut(take);
        let wtab = &block_tables.wtab;
        let biases = &block_tables.biases[..];
        match take {
            6 => forward_block::<6>(block, t0, bases, image, wtab, biases),
            5 => forward_block::<5>(block, t0, bases, image, wtab, biases),
            4 => forward_block::<4>(block, t0, bases, image, wtab, biases),
            3 => forward_block::<3>(block, t0, bases, image, wtab, biases),
            2 => forward_block::<2>(block, t0, bases, image, wtab, biases),
            _ => forward_block::<1>(block, t0, bases, image, wtab, biases),
        }
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "strips left over after the table blocks");
}

/// Computes one input-gradient strip covering the plane range
/// `[t0, t0 + gi.len())`: every covering filter's contribution is pulled
/// into a register tile and the strip is written once (the naive kernel
/// re-reads and re-writes the plane once per covering filter).
pub(super) fn grad_input_strip(
    gi: &mut [f32],
    t0: usize,
    pairs: &[(usize, usize)],
    go_image: &[f32],
    plane: usize,
    w_data: &[f32],
    gw: usize,
) {
    let strip_len = gi.len();
    let mut t = 0usize;
    while t + LANES <= strip_len {
        let mut acc = [0.0f32; LANES];
        for &(oc, offset) in pairs {
            let wj = w_data[oc * gw + offset];
            let at = oc * plane + t0 + t;
            let g: [f32; LANES] = go_image[at..at + LANES]
                .try_into()
                // lint: allow(panic) — LANES-wide by construction (see the
                // forward kernel's identical conversion).
                .expect("strip is LANES wide");
            for l in 0..LANES {
                acc[l] += wj * g[l];
            }
        }
        gi[t..t + LANES].copy_from_slice(&acc);
        t += LANES;
    }
    while t < strip_len {
        let mut acc = 0.0f32;
        for &(oc, offset) in pairs {
            acc += w_data[oc * gw + offset] * go_image[oc * plane + t0 + t];
        }
        gi[t] = acc;
        t += 1;
    }
}

/// Accumulates one filter row's weight gradient over the plane range
/// `[t0, t1)`, dispatching [`TAP_BLOCK`]-sized tap groups to the right
/// [`grad_weight_taps`] monomorphisation. Shared by the blocked backend
/// (whole planes) and the tiled backend (row strips).
pub(super) fn grad_weight_tap_blocks(
    gw_row: &mut [f32],
    ics: &[usize],
    go_plane: &[f32],
    image: &[f32],
    plane: usize,
    t0: usize,
    t1: usize,
) {
    let gw = gw_row.len();
    let mut j = 0usize;
    while j < gw {
        let take = (gw - j).min(TAP_BLOCK);
        let taps = &ics[j..j + take];
        let row = &mut gw_row[j..j + take];
        match take {
            4 => grad_weight_taps::<4>(row, taps, go_plane, image, plane, t0, t1),
            3 => grad_weight_taps::<3>(row, taps, go_plane, image, plane, t0, t1),
            2 => grad_weight_taps::<2>(row, taps, go_plane, image, plane, t0, t1),
            _ => grad_weight_taps::<1>(row, taps, go_plane, image, plane, t0, t1),
        }
        j += take;
    }
}

/// Accumulates `TB` consecutive taps of one filter row over the plane range
/// `[t0, t1)`: the `grad_output` strip is loaded once per tile and dotted
/// against `TB` input-channel tiles, with per-tap `[f32; LANES]` partial
/// sums reduced at the end.
fn grad_weight_taps<const TB: usize>(
    row: &mut [f32],
    taps: &[usize],
    go_plane: &[f32],
    image: &[f32],
    plane: usize,
    t0: usize,
    t1: usize,
) {
    debug_assert_eq!(row.len(), TB);
    debug_assert_eq!(taps.len(), TB);
    debug_assert!(t0 <= t1 && t1 <= plane);
    let mut acc = [[0.0f32; LANES]; TB];
    let mut t = t0;
    while t + LANES <= t1 {
        let g: [f32; LANES] = go_plane[t..t + LANES]
            .try_into()
            // lint: allow(panic) — `t + LANES <= t1` is the loop guard, so
            // the strip is exactly LANES long.
            .expect("strip is LANES wide");
        for b in 0..TB {
            let base = taps[b] * plane + t;
            let x: [f32; LANES] = image[base..base + LANES]
                .try_into()
                // lint: allow(panic) — LANES-wide by construction, as above.
                .expect("tile is LANES wide");
            let lanes = &mut acc[b];
            for l in 0..LANES {
                lanes[l] += g[l] * x[l];
            }
        }
        t += LANES;
    }
    let mut tails = [0.0f32; TB];
    while t < t1 {
        let g = go_plane[t];
        for b in 0..TB {
            tails[b] += g * image[taps[b] * plane + t];
        }
        t += 1;
    }
    for b in 0..TB {
        row[b] += acc[b].iter().sum::<f32>() + tails[b];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{scc_backward_reference, scc_forward_reference};
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    fn check(cin: usize, cout: usize, cg: usize, co: f64, n: usize, h: usize, w: usize) {
        let cfg = SccConfig::new(cin, cout, cg, co).unwrap();
        let map = ChannelCycleMap::build(&cfg);
        let input = Tensor::randn(&[n, cin, h, w], 11);
        let weight = Tensor::randn(&[cout, cfg.group_width()], 12);
        let bias = Tensor::randn(&[cout], 13);
        let grad_out = Tensor::randn(&[n, cout, h, w], 14);
        let backend = BlockedBackend;

        let fwd = backend.forward(&cfg, &map, &input, &weight, Some(&bias), None);
        let ref_fwd = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        assert!(
            allclose(&fwd, &ref_fwd, TEST_TOLERANCE),
            "forward diverges for cin={cin} cout={cout} cg={cg} co={co} {h}x{w}"
        );

        let grads = backend.backward(&cfg, &map, &input, &weight, &grad_out, None);
        let (ref_gi, ref_gw, ref_gb) = scc_backward_reference(&cfg, &input, &weight, &grad_out);
        assert!(
            allclose(&grads.grad_input, &ref_gi, TEST_TOLERANCE),
            "grad_input"
        );
        assert!(
            allclose(&grads.grad_weight, &ref_gw, TEST_TOLERANCE),
            "grad_weight"
        );
        assert!(
            allclose(&grads.grad_bias, &ref_gb, TEST_TOLERANCE),
            "grad_bias"
        );
    }

    #[test]
    fn matches_reference_on_paper_settings() {
        check(16, 32, 2, 0.5, 2, 5, 5);
        check(16, 32, 4, 0.5, 1, 4, 4);
        check(16, 32, 8, 0.5, 1, 4, 4);
        check(12, 24, 2, 0.33, 2, 3, 3);
    }

    #[test]
    fn matches_reference_on_ragged_planes_and_non_square_dims() {
        // Plane sizes that do not divide LANES (scalar tail), including
        // planes smaller than one tile, and non-square spatial dims.
        check(8, 16, 2, 0.5, 2, 3, 5); // plane 15
        check(8, 16, 2, 0.5, 1, 1, 3); // plane 3 < LANES
        check(8, 12, 4, 0.25, 1, 7, 9); // plane 63
        check(8, 16, 2, 0.5, 1, 2, 4); // plane 8 == LANES exactly
    }

    #[test]
    fn matches_reference_when_output_channels_do_not_fill_blocks() {
        // cout chosen so window groups hold 1, 2, 3 and 5 planes — exercising
        // every forward_block monomorphisation including partial blocks.
        check(8, 4, 2, 0.5, 1, 4, 4); // 4 windows, 1 plane each
        check(8, 7, 2, 0.5, 1, 4, 4); // ragged: some windows get 2 planes
        check(4, 10, 2, 0.5, 1, 4, 4); // cyclic_dist 4 -> groups of 2 and 3
        check(4, 20, 2, 0.5, 1, 4, 4); // groups of 5: one full block + 1
    }

    #[test]
    fn pointwise_and_gpw_corners() {
        check(8, 12, 1, 0.0, 1, 4, 4); // pointwise: one shared window
        check(8, 12, 4, 0.0, 1, 4, 4); // GPW: disjoint windows
    }
}
