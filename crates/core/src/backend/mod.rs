//! Pluggable execution backends for the SCC kernels.
//!
//! The forward, input-gradient and weight-gradient kernels of the
//! sliding-channel convolution are defined once (the math of §IV-B) but can
//! be *executed* by different substrates. [`KernelBackend`] is the seam:
//!
//! * [`NaiveBackend`] — the straightforward chunked loops the reproduction
//!   started with. One pass over the output plane per window tap, AXPY
//!   inner loops. Kept as the correctness oracle and the baseline every
//!   other backend is benchmarked against.
//! * [`BlockedBackend`] — a register-blocked formulation in the spirit of
//!   Snytsar's sliding-window-sum kernels: the output plane is tiled into
//!   [`LANES`]-wide strips accumulated in fixed-size `[f32; LANES]` arrays
//!   (written so LLVM autovectorizes them — no `unsafe`, no intrinsics),
//!   and all output channels sharing one input-channel window are computed
//!   together so every input tile loaded from memory feeds
//!   [`OC_BLOCK`] accumulator rows.
//! * [`TiledBackend`] — the same register-tiled inner loops, scheduled as
//!   cache-sized `batch × channel-window × row-strip` tasks across the
//!   persistent work-stealing pool (`dsx_tensor::pool`), with a grain-size
//!   heuristic so small planes don't over-decompose. Tuned for large
//!   planes on multi-core hosts; bit-identical results at any thread
//!   count.
//! * [`SwsumBackend`] — the sliding-window-sum (conv-as-FIR) formulation.
//!   Its payoff is on dense spatial convolutions, where `dsx-nn`'s
//!   `Conv2d` routes the forward pass through a per-output-row FIR kernel
//!   with no im2col buffer; the pointwise SCC kernels delegate to the
//!   tiled schedule (see the module docs of `swsum`).
//!
//! Future SIMD-intrinsic or GPU-style backends slot under the same trait.
//!
//! Backends are stateless zero-sized types; [`BackendKind`] names them,
//! parses CLI flags (`--backend blocked`) and resolves to a `&'static dyn
//! KernelBackend`. A process-wide default ([`set_default_backend`]) lets
//! binaries flip every layer they construct afterwards without threading a
//! parameter through each call site; freshly constructed layers read it
//! once, so flipping the default never changes a live layer.

mod blocked;
mod naive;
mod swsum;
mod tiled;

pub use blocked::{BlockedBackend, LANES, OC_BLOCK, TAP_BLOCK};
pub use naive::NaiveBackend;
pub use swsum::SwsumBackend;
pub use tiled::{TiledBackend, TILE_F32};

use crate::backward::SccGradients;
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::stats::KernelStats;
use dsx_tensor::Tensor;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// An execution substrate for the SCC kernels.
///
/// Implementations must be numerically equivalent to the scalar reference
/// (`scc_forward_reference` / `scc_backward_reference`) within
/// `dsx_tensor::TEST_TOLERANCE`; the cross-backend property suite in
/// `crates/core/tests/backend_parity.rs` enforces this.
pub trait KernelBackend: std::fmt::Debug + Send + Sync {
    /// Which [`BackendKind`] this backend implements.
    fn kind(&self) -> BackendKind;

    /// Output-centric SCC forward pass.
    ///
    /// * `input`  — `[N, Cin, H, W]`
    /// * `weight` — `[Cout, group_width]`
    /// * `bias`   — optional `[Cout]`
    ///
    /// Returns `[N, Cout, H, W]`. Implementations validate shapes via
    /// `reference::validate_shapes` before touching any data.
    fn forward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor;

    /// Input-gradient kernel of the input-centric backward design
    /// (one writer per input-gradient plane, zero atomics).
    fn grad_input(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor;

    /// Weight- and bias-gradient kernels (one writer per filter row /
    /// output channel).
    fn grad_weight_bias(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor);

    /// Full input-centric backward pass: composes the three gradient
    /// kernels and accounts them in `stats` exactly like the historical
    /// `scc_backward_input_centric` (3 launches, zero atomics).
    fn backward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        grad_output: &Tensor,
        stats: Option<&KernelStats>,
    ) -> SccGradients {
        let grad_input = self.grad_input(cfg, map, weight, grad_output);
        let (grad_weight, grad_bias) = self.grad_weight_bias(cfg, map, input, grad_output);
        if let Some(s) = stats {
            let (n, _, h, w) = crate::reference::dims4(input);
            let plane = h * w;
            s.add_launches(3);
            s.add_macs(2 * n * cfg.cout() * plane * cfg.group_width() + n * cfg.cout() * plane);
            s.add_bytes_moved(grad_input.bytes() + grad_weight.bytes() + grad_bias.bytes());
        }
        SccGradients {
            grad_input,
            grad_weight,
            grad_bias,
        }
    }
}

/// Records the forward pass in the instrumentation counters: one fused
/// launch, the analytic MAC count, and only the output tensor moved (nothing
/// intermediate is materialised — the key contrast with the operator
/// compositions). Shared by every backend so the accounting never diverges.
pub(crate) fn record_forward_stats(
    cfg: &SccConfig,
    n: usize,
    plane: usize,
    output: &Tensor,
    stats: Option<&KernelStats>,
) {
    if let Some(s) = stats {
        s.add_launch();
        s.add_macs(n * cfg.cout() * plane * cfg.group_width());
        s.add_bytes_moved(output.bytes());
    }
}

/// Names the available [`KernelBackend`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The original chunked-loop kernels (correctness oracle).
    #[default]
    Naive,
    /// Register-blocked, autovectorized kernels.
    Blocked,
    /// The blocked inner loops scheduled as cache-sized tiles across the
    /// persistent work-stealing pool (tuned for large planes).
    Tiled,
    /// The sliding-window-sum (conv-as-FIR) formulation: dense `Conv2d`
    /// layers skip im2col entirely (kernel in `dsx-nn`); the pointwise SCC
    /// kernels delegate to the tiled schedule (see [`SwsumBackend`]).
    Swsum,
}

static NAIVE: NaiveBackend = NaiveBackend;
static BLOCKED: BlockedBackend = BlockedBackend;
static TILED: TiledBackend = TiledBackend;
static SWSUM: SwsumBackend = SwsumBackend;

impl BackendKind {
    /// All backends, naive first (the oracle, and the historical default).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Naive,
        BackendKind::Blocked,
        BackendKind::Tiled,
        BackendKind::Swsum,
    ];

    /// Stable lower-case name, used by `--backend` flags and bench reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Naive => "naive",
            BackendKind::Blocked => "blocked",
            BackendKind::Tiled => "tiled",
            BackendKind::Swsum => "swsum",
        }
    }

    /// Resolves the kind to its (stateless, static) backend implementation.
    pub fn backend(&self) -> &'static dyn KernelBackend {
        match self {
            BackendKind::Naive => &NAIVE,
            BackendKind::Blocked => &BLOCKED,
            BackendKind::Tiled => &TILED,
            BackendKind::Swsum => &SWSUM,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Ok(BackendKind::Naive),
            "blocked" | "simd" => Ok(BackendKind::Blocked),
            "tiled" | "pool" => Ok(BackendKind::Tiled),
            "swsum" | "fir" => Ok(BackendKind::Swsum),
            other => Err(format!(
                "unknown kernel backend '{other}' (expected one of: naive, blocked, tiled, swsum)"
            )),
        }
    }
}

/// Process-wide default backend, encoded as an index into
/// [`BackendKind::ALL`]. New layers read it at construction time.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default backend used by layers constructed
/// afterwards (e.g. from a `--backend` CLI flag, before any model is built).
/// Layers that already exist keep the backend they were built with.
pub fn set_default_backend(kind: BackendKind) {
    let idx = BackendKind::ALL
        .iter()
        .position(|k| *k == kind)
        // lint: allow(panic) — every `BackendKind` variant appears in
        // `ALL`; the exhaustive-listing test enforces it.
        .expect("kind is one of ALL") as u8;
    DEFAULT_BACKEND.store(idx, Ordering::SeqCst);
}

/// The current process-wide default backend ([`BackendKind::Naive`] unless
/// [`set_default_backend`] was called).
pub fn default_backend() -> BackendKind {
    BackendKind::ALL[DEFAULT_BACKEND.load(Ordering::SeqCst) as usize]
}

/// Serialises tests that flip the process-wide default backend: the test
/// harness runs tests on parallel threads, so two save/flip/restore
/// sequences would otherwise interleave and restore each other's
/// intermediate value.
#[cfg(test)]
pub(crate) fn test_default_backend_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{scc_backward_reference, scc_forward_reference};
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    #[test]
    fn kind_round_trips_through_name_and_from_str() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.backend().kind(), kind);
        }
        assert_eq!("SIMD".parse::<BackendKind>().unwrap(), BackendKind::Blocked);
        assert!("cuda".parse::<BackendKind>().is_err());
    }

    #[test]
    fn default_backend_starts_naive_and_can_be_flipped() {
        let _guard = test_default_backend_lock();
        // Restore at the end so test order never leaks a global.
        let original = default_backend();
        set_default_backend(BackendKind::Blocked);
        assert_eq!(default_backend(), BackendKind::Blocked);
        set_default_backend(original);
        assert_eq!(default_backend(), original);
    }

    #[test]
    fn every_backend_matches_the_scalar_reference() {
        let cfg = SccConfig::new(12, 20, 4, 0.5).unwrap();
        let map = ChannelCycleMap::build(&cfg);
        let input = Tensor::randn(&[2, 12, 5, 7], 41);
        let weight = Tensor::randn(&[20, cfg.group_width()], 42);
        let bias = Tensor::randn(&[20], 43);
        let grad_out = Tensor::randn(&[2, 20, 5, 7], 44);
        let ref_fwd = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        let (ref_gi, ref_gw, ref_gb) = scc_backward_reference(&cfg, &input, &weight, &grad_out);
        for kind in BackendKind::ALL {
            let backend = kind.backend();
            let fwd = backend.forward(&cfg, &map, &input, &weight, Some(&bias), None);
            assert!(allclose(&fwd, &ref_fwd, TEST_TOLERANCE), "{kind} forward");
            let grads = backend.backward(&cfg, &map, &input, &weight, &grad_out, None);
            assert!(
                allclose(&grads.grad_input, &ref_gi, TEST_TOLERANCE),
                "{kind} grad_input"
            );
            assert!(
                allclose(&grads.grad_weight, &ref_gw, TEST_TOLERANCE),
                "{kind} grad_weight"
            );
            assert!(
                allclose(&grads.grad_bias, &ref_gb, TEST_TOLERANCE),
                "{kind} grad_bias"
            );
        }
    }

    #[test]
    fn backward_records_three_launches_and_no_atomics() {
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let map = ChannelCycleMap::build(&cfg);
        let input = Tensor::randn(&[2, 8, 4, 4], 1);
        let weight = Tensor::randn(&[16, 4], 2);
        let grad_out = Tensor::randn(&[2, 16, 4, 4], 3);
        for kind in BackendKind::ALL {
            let stats = KernelStats::new();
            kind.backend()
                .backward(&cfg, &map, &input, &weight, &grad_out, Some(&stats));
            assert_eq!(stats.kernel_launches(), 3, "{kind}");
            assert_eq!(stats.atomic_updates(), 0, "{kind}");
        }
    }
}
