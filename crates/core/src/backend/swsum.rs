//! The sliding-window-sum (conv-as-FIR) execution substrate.
//!
//! [`SwsumBackend`] is the fourth [`super::BackendKind`], named after the
//! Snytsar sliding-window-sum formulation of convolution ("Sliding Window
//! Sum Algorithms for Deep Neural Networks"): instead of materialising an
//! im2col column matrix and multiplying, each output row is produced by
//! accumulating per-tap shifted input rows scaled by hoisted per-tap
//! weights — a FIR filter swept along the row. The formulation's win is
//! skipping the im2col buffer entirely, which only exists for *spatial*
//! (`K > 1`) convolutions: the dense sliding-window-sum kernel lives in
//! `dsx-nn` (`dsx_nn::swsum`), where `Conv2d` routes its no-cache forward
//! path through it.
//!
//! The SCC operator itself is pointwise (`1 × 1`, no spatial taps), so the
//! FIR formulation degenerates to exactly the register-tiled accumulation
//! the tiled backend already performs. For the SCC kernels this backend
//! therefore *delegates* to [`TiledBackend`] — same task decomposition,
//! same broadcast-table machinery, bit-identical results at any thread
//! count — and exists as a distinct [`super::BackendKind`] so one
//! `--backend swsum` flag flips both the SCC layers (to the tiled
//! schedule) and the dense `Conv2d` layers (to the FIR kernel) of a model.

use super::tiled::TiledBackend;
use super::{BackendKind, KernelBackend};
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::stats::KernelStats;
use dsx_tensor::Tensor;

/// The sliding-window-sum backend: FIR-formulated dense convolutions (in
/// `dsx-nn`), tiled-equivalent SCC kernels (delegated, see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwsumBackend;

/// The delegate executing the (pointwise) SCC kernels.
const TILED: TiledBackend = TiledBackend;

impl KernelBackend for SwsumBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Swsum
    }

    fn forward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        TILED.forward(cfg, map, input, weight, bias, stats)
    }

    fn grad_input(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        TILED.grad_input(cfg, map, weight, grad_output)
    }

    fn grad_weight_bias(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor) {
        TILED.grad_weight_bias(cfg, map, input, grad_output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_tensor::allclose;

    #[test]
    fn scc_kernels_match_the_tiled_delegate_bit_for_bit() {
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let map = ChannelCycleMap::build(&cfg);
        let input = Tensor::randn(&[2, 8, 5, 5], 61);
        let weight = Tensor::randn(&[16, cfg.group_width()], 62);
        let bias = Tensor::randn(&[16], 63);
        let grad_out = Tensor::randn(&[2, 16, 5, 5], 64);

        let swsum = SwsumBackend;
        assert_eq!(swsum.kind(), BackendKind::Swsum);
        let fwd = swsum.forward(&cfg, &map, &input, &weight, Some(&bias), None);
        let want = TILED.forward(&cfg, &map, &input, &weight, Some(&bias), None);
        assert_eq!(fwd.as_slice(), want.as_slice());

        let got = swsum.backward(&cfg, &map, &input, &weight, &grad_out, None);
        let want = TILED.backward(&cfg, &map, &input, &weight, &grad_out, None);
        assert!(allclose(&got.grad_input, &want.grad_input, 0.0));
        assert!(allclose(&got.grad_weight, &want.grad_weight, 0.0));
        assert!(allclose(&got.grad_bias, &want.grad_bias, 0.0));
    }
}
