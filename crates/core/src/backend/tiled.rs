//! Multi-threaded tile-scheduled SCC kernels on the persistent worker pool.
//!
//! [`TiledBackend`] keeps the register-tiled inner loops of
//! [`super::BlockedBackend`] (the `[f32; LANES]` accumulator strips LLVM
//! autovectorizes) but changes the *scheduling*: instead of handing each
//! worker a round-robin batch of whole output planes, the output is split
//! into cache-sized tiles —
//!
//! * **forward** — `batch × channel-window × row-strip` tasks. Every task
//!   computes all output channels sharing one cyclic input-channel window
//!   (so each input tile read from memory still feeds `OC_BLOCK`
//!   accumulator rows) but only over a [`TILE_F32`]-sized strip of the
//!   plane, so large planes decompose into many independent tasks the pool
//!   can steal across cores while each task's working set stays
//!   cache-resident.
//! * **grad-input** — `batch × input-channel × row-strip` tasks, each
//!   writing one strip of one input-gradient plane via the blocked
//!   register-strip pull loop.
//! * **grad-weight** — one task per filter row (there are only
//!   `cout × group_width` outputs), with the plane walked in the same row
//!   strips so the `grad_output` strip stays hot across all taps of the
//!   row.
//!
//! A grain-size heuristic (`grain_for`) batches several tasks per pool
//! claim when planes are small (CIFAR-scale feature maps produce hundreds
//! of tiny tasks), so the scheduler never over-decomposes the work it was
//! meant to speed up.
//!
//! Scheduling is **deterministic**: every output element is written by
//! exactly one task, and each task's accumulation order depends only on the
//! shape — never on the thread count or which worker claims the task — so
//! forward and backward results are bit-identical between 1 and N pool
//! threads (the determinism test in `crates/core/tests/backend_parity.rs`
//! pins this down).

use super::blocked::{
    build_all_window_tables, build_window_bases, forward_blocks, grad_input_strip,
    grad_weight_tap_blocks,
};
use super::{record_forward_stats, BackendKind, KernelBackend, LANES};
use crate::backward::naive_grad_bias;
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::reference::{dims4, validate_shapes};
use crate::stats::KernelStats;
use dsx_tensor::{par, Tensor};

/// Target `f32` elements per output row strip: 8 KiB, so an
/// `OC_BLOCK`-deep forward block holds ~48 KiB of output strips plus one
/// streamed input tile — a comfortable per-core L2 footprint, while the
/// per-strip setup (weight broadcast tables, block dispatch) amortises
/// over a strip twice as long as the L1-sized alternative measured ~5%
/// slower at one thread.
pub const TILE_F32: usize = 2048;

/// Pool-claim work target in output elements: tasks are batched per claim
/// until one claim covers at least this much output, so small planes don't
/// dissolve into per-claim scheduling overhead.
const GRAIN_TARGET_F32: usize = 8192;

/// Row-strip length for a plane of `plane` elements: planes up to the tile
/// target stay whole (no decomposition to amortise), larger planes split
/// into near-equal strips rounded up to [`LANES`] so only the final strip
/// of a ragged plane takes the scalar tail.
pub(super) fn strip_len_for(plane: usize) -> usize {
    if plane <= TILE_F32 {
        return plane.max(1);
    }
    let strips = plane.div_ceil(TILE_F32);
    plane.div_ceil(strips).div_ceil(LANES) * LANES
}

/// How many tasks one pool claim should cover so a claim amortises to at
/// least [`GRAIN_TARGET_F32`] output elements.
fn grain_for(num_tasks: usize, elems_per_task: usize) -> usize {
    (GRAIN_TARGET_F32 / elems_per_task.max(1)).clamp(1, num_tasks.max(1))
}

/// The tile-scheduled multi-threaded execution substrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct TiledBackend;

impl KernelBackend for TiledBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Tiled
    }

    fn forward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        validate_shapes(cfg, input, weight, bias);
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        let cd = map.cyclic_dist().max(1);

        let mut output = Tensor::zeros(&[n, cout, h, w]);
        if plane == 0 || n == 0 {
            record_forward_stats(cfg, n, plane, &output, stats);
            return output;
        }
        let in_data = input.as_slice();
        let w_data = weight.as_slice();
        let b_data = bias.map(|b| b.as_slice());

        let strip_len = strip_len_for(plane);
        let n_strips = plane.div_ceil(strip_len);
        // One task per (image, channel window, row strip); the task owns
        // that strip of every output-channel plane reading the window.
        let mut groups: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n * cd * n_strips);
        for img in 0..n {
            for window in 0..cd {
                for strip in 0..n_strips {
                    let t0 = strip * strip_len;
                    let len = (t0 + strip_len).min(plane) - t0;
                    groups.push(
                        (window..cout)
                            .step_by(cd)
                            .map(|oc| ((img * cout + oc) * plane + t0, len))
                            .collect(),
                    );
                }
            }
        }
        // Per-window tap offsets and pre-broadcast weight tables, resolved
        // once per call and reused by every (image, strip) task reading the
        // window.
        let window_bases = build_window_bases(map, cd, plane);
        let window_tables = build_all_window_tables(cd, cout, w_data, b_data, gw);
        let planes_per_window = cout.div_ceil(cd);
        let grain = grain_for(groups.len(), planes_per_window * strip_len.min(plane));
        par::parallel_for_tile_groups_mut(
            output.as_mut_slice(),
            &groups,
            grain,
            |group_idx, tiles| {
                if tiles.is_empty() {
                    return;
                }
                let img = group_idx / (cd * n_strips);
                let window_idx = (group_idx / n_strips) % cd;
                let t0 = tiles[0].0 % plane;
                let bases = &window_bases[window_idx];
                let image = &in_data[img * cin * plane..(img + 1) * cin * plane];
                // Recover each tile's output channel from its offset and
                // hand the strips to the blocked register-tiled inner loop.
                let mut strips: Vec<(usize, &mut [f32])> = tiles
                    .iter_mut()
                    .map(|(offset, strip)| ((*offset / plane) % cout, &mut **strip))
                    .collect();
                forward_blocks(&mut strips, t0, bases, image, &window_tables[window_idx]);
            },
        );

        record_forward_stats(cfg, n, plane, &output, stats);
        output
    }

    fn grad_input(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        let (n, cout, h, w) = dims4(grad_output);
        let cin = cfg.cin();
        let gw = cfg.group_width();
        let plane = h * w;
        let go_data = grad_output.as_slice();
        let w_data = weight.as_slice();
        let reverse = map.input_to_outputs();

        let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
        if plane == 0 || n == 0 {
            return grad_input;
        }
        let strip_len = strip_len_for(plane);
        let n_strips = plane.div_ceil(strip_len);
        // One single-tile task per (image, input channel, row strip).
        let groups: Vec<Vec<(usize, usize)>> = (0..n * cin * n_strips)
            .map(|task| {
                let strip = task % n_strips;
                let chunk = task / n_strips; // img * cin + ic
                let t0 = strip * strip_len;
                let len = (t0 + strip_len).min(plane) - t0;
                vec![(chunk * plane + t0, len)]
            })
            .collect();
        let grain = grain_for(groups.len(), strip_len.min(plane));
        par::parallel_for_tile_groups_mut(
            grad_input.as_mut_slice(),
            &groups,
            grain,
            |_group_idx, tiles| {
                let (offset, strip) = &mut tiles[0];
                let chunk = *offset / plane;
                let t0 = *offset % plane;
                let img = chunk / cin;
                let ic = chunk % cin;
                let go_image = &go_data[img * cout * plane..(img + 1) * cout * plane];
                grad_input_strip(strip, t0, &reverse[ic], go_image, plane, w_data, gw);
            },
        );
        grad_input
    }

    fn grad_weight_bias(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor) {
        let (n, cin, h, w) = dims4(input);
        let cout = cfg.cout();
        let gw = cfg.group_width();
        let plane = h * w;
        let in_data = input.as_slice();
        let go_data = grad_output.as_slice();
        let strip_len = strip_len_for(plane.max(1));
        let n_strips = plane.div_ceil(strip_len.max(1));

        let mut grad_weight = Tensor::zeros(&[cout, gw]);
        // Only cout rows of gw taps exist, so rows are the parallel unit
        // (grain 1 — a row's cost is plane-sized, not gw-sized); within a
        // row the plane is walked strip-by-strip so the grad_output strip
        // stays cache-hot across every tap block.
        par::parallel_for_each_chunk_mut_with_grain(
            grad_weight.as_mut_slice(),
            gw,
            1,
            |oc, gw_row| {
                let window = map.window_for_output(oc);
                let ics = window.channels();
                for img in 0..n {
                    let go_plane =
                        &go_data[(img * cout + oc) * plane..(img * cout + oc + 1) * plane];
                    let image = &in_data[img * cin * plane..(img + 1) * cin * plane];
                    for strip in 0..n_strips {
                        let t0 = strip * strip_len;
                        let t1 = (t0 + strip_len).min(plane);
                        grad_weight_tap_blocks(gw_row, &ics, go_plane, image, plane, t0, t1);
                    }
                }
            },
        );
        (grad_weight, naive_grad_bias(cfg, grad_output))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{scc_backward_reference, scc_forward_reference};
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    fn check(cin: usize, cout: usize, cg: usize, co: f64, n: usize, h: usize, w: usize) {
        let cfg = SccConfig::new(cin, cout, cg, co).unwrap();
        let map = ChannelCycleMap::build(&cfg);
        let input = Tensor::randn(&[n, cin, h, w], 21);
        let weight = Tensor::randn(&[cout, cfg.group_width()], 22);
        let bias = Tensor::randn(&[cout], 23);
        let grad_out = Tensor::randn(&[n, cout, h, w], 24);
        let backend = TiledBackend;

        let fwd = backend.forward(&cfg, &map, &input, &weight, Some(&bias), None);
        let ref_fwd = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        assert!(
            allclose(&fwd, &ref_fwd, TEST_TOLERANCE),
            "forward diverges for cin={cin} cout={cout} cg={cg} co={co} {h}x{w}"
        );

        let grads = backend.backward(&cfg, &map, &input, &weight, &grad_out, None);
        let (ref_gi, ref_gw, ref_gb) = scc_backward_reference(&cfg, &input, &weight, &grad_out);
        assert!(
            allclose(&grads.grad_input, &ref_gi, TEST_TOLERANCE),
            "grad_input"
        );
        assert!(
            allclose(&grads.grad_weight, &ref_gw, TEST_TOLERANCE),
            "grad_weight"
        );
        assert!(
            allclose(&grads.grad_bias, &ref_gb, TEST_TOLERANCE),
            "grad_bias"
        );
    }

    #[test]
    fn matches_reference_on_paper_settings() {
        check(16, 32, 2, 0.5, 2, 5, 5);
        check(16, 32, 4, 0.5, 1, 4, 4);
        check(16, 32, 8, 0.5, 1, 4, 4);
        check(12, 24, 2, 0.33, 2, 3, 3);
    }

    #[test]
    fn matches_reference_when_planes_split_into_strips() {
        // Planes above 2 * TILE_F32 actually exercise the strip path:
        // 64x64 = 4096 elements -> 4 strips; 48x47 = 2256 -> ragged strips.
        check(8, 16, 2, 0.5, 1, 64, 64);
        check(8, 16, 2, 0.5, 1, 48, 47);
        check(4, 10, 2, 0.5, 2, 52, 40);
    }

    #[test]
    fn matches_reference_on_ragged_planes_and_partial_blocks() {
        check(8, 16, 2, 0.5, 2, 3, 5); // plane 15, scalar tail
        check(8, 16, 2, 0.5, 1, 1, 3); // plane 3 < LANES
        check(8, 7, 2, 0.5, 1, 4, 4); // windows with ragged plane counts
        check(4, 20, 2, 0.5, 1, 4, 4); // groups of 5: partial OC blocks
        check(8, 12, 1, 0.0, 1, 4, 4); // pointwise: one shared window
        check(8, 12, 4, 0.0, 1, 4, 4); // GPW: disjoint windows
    }

    #[test]
    fn strip_lengths_round_to_lanes_and_cover_the_plane() {
        for plane in [1usize, 7, 256, 2048, 2049, 4096, 4100, 10_000] {
            let strip = strip_len_for(plane);
            assert!(strip >= 1 && strip <= plane.max(1));
            if plane > TILE_F32 {
                assert_eq!(strip % LANES, 0, "plane {plane}: strip {strip}");
                assert!(strip <= TILE_F32 + LANES, "plane {plane}: strip {strip}");
            } else {
                assert_eq!(strip, plane.max(1));
            }
            // Strips tile the plane: n_strips full-or-ragged pieces.
            let n_strips = plane.div_ceil(strip);
            assert!(n_strips * strip >= plane);
            assert!((n_strips - 1) * strip < plane.max(1));
        }
    }
}
