//! The original chunked-loop kernels, wrapped as a [`KernelBackend`].
//!
//! Delegates to the historical free functions in [`crate::forward`] and
//! [`crate::backward`], which stay where they are (with their tests) so the
//! public `scc_forward` / `scc_backward_input_centric` API is untouched.
//! This backend is the correctness oracle the blocked backend is proven
//! against, and the baseline of the CI perf gate.

use super::{BackendKind, KernelBackend};
use crate::backward::{naive_grad_bias, naive_grad_input, naive_grad_weight};
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::forward::scc_forward_with_map;
use crate::stats::KernelStats;
use dsx_tensor::Tensor;

/// The straightforward chunked-loop execution substrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

impl KernelBackend for NaiveBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Naive
    }

    fn forward(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stats: Option<&KernelStats>,
    ) -> Tensor {
        scc_forward_with_map(cfg, map, input, weight, bias, stats)
    }

    fn grad_input(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        weight: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        naive_grad_input(cfg, map, weight, grad_output)
    }

    fn grad_weight_bias(
        &self,
        cfg: &SccConfig,
        map: &ChannelCycleMap,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor) {
        (
            naive_grad_weight(cfg, map, input, grad_output),
            naive_grad_bias(cfg, grad_output),
        )
    }
}
