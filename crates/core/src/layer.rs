//! High-level sliding-channel convolution operator.
//!
//! [`SlidingChannelConv2d`] owns the layer's weights and cycle map and
//! dispatches forward/backward to one of the four implementations the paper
//! evaluates (Pytorch-Base, Pytorch-Opt, DSXplore-Var, DSXplore). It is the
//! type the `dsx-nn` layer stack and the examples use.

use crate::backend::{self, BackendKind};
use crate::backward::{scc_backward_output_centric, SccGradients};
use crate::compose::{ComposedScc, Composition};
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::stats::KernelStats;
use dsx_tensor::{init, Tensor};

/// Which of the paper's implementations executes the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SccImplementation {
    /// Channel-stack operator composition without the cyclic optimization
    /// (the paper's Pytorch-Base).
    PytorchBase,
    /// Convolution-stack operator composition with the cyclic optimization
    /// (the paper's Pytorch-Opt).
    PytorchOpt,
    /// DSXplore's forward kernel with the *output-centric* backward
    /// (the DSXplore-Var ablation of Fig. 9).
    DsxploreVar,
    /// The full DSXplore design: output-centric forward, input-centric
    /// backward, channel-cyclic index reuse.
    Dsxplore,
}

impl SccImplementation {
    /// All implementations, in the order the paper's figures list them.
    pub const ALL: [SccImplementation; 4] = [
        SccImplementation::PytorchBase,
        SccImplementation::PytorchOpt,
        SccImplementation::DsxploreVar,
        SccImplementation::Dsxplore,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            SccImplementation::PytorchBase => "Pytorch-Base",
            SccImplementation::PytorchOpt => "Pytorch-Opt",
            SccImplementation::DsxploreVar => "DSXplore-Var",
            SccImplementation::Dsxplore => "DSXplore",
        }
    }
}

/// A sliding-channel 1×1 convolution layer with owned parameters.
#[derive(Debug)]
pub struct SlidingChannelConv2d {
    cfg: SccConfig,
    map: ChannelCycleMap,
    weight: Tensor,
    bias: Option<Tensor>,
    implementation: SccImplementation,
    backend: BackendKind,
    stats: KernelStats,
}

impl SlidingChannelConv2d {
    /// Creates a layer with Kaiming-initialised weights, a zero bias and the
    /// DSXplore kernel implementation.
    pub fn new(cfg: SccConfig) -> Self {
        Self::with_seed(cfg, 0x5CC0)
    }

    /// Creates a layer with an explicit RNG seed for the weights.
    pub fn with_seed(cfg: SccConfig, seed: u64) -> Self {
        let weight = Tensor::from_vec(
            init::kaiming_normal(cfg.weight_params(), cfg.group_width(), seed),
            &[cfg.cout(), cfg.group_width()],
        );
        let bias = Some(Tensor::zeros(&[cfg.cout()]));
        let map = ChannelCycleMap::build(&cfg);
        SlidingChannelConv2d {
            cfg,
            map,
            weight,
            bias,
            implementation: SccImplementation::Dsxplore,
            backend: backend::default_backend(),
            stats: KernelStats::new(),
        }
    }

    /// Selects the implementation used by [`forward`](Self::forward) and
    /// [`backward`](Self::backward).
    pub fn with_implementation(mut self, implementation: SccImplementation) -> Self {
        self.implementation = implementation;
        self
    }

    /// Selects the kernel execution backend (naive loops vs blocked/SIMD).
    /// Layers start on [`backend::default_backend`].
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Removes the bias term.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// The layer's configuration.
    pub fn config(&self) -> &SccConfig {
        &self.cfg
    }

    /// The implementation currently selected.
    pub fn implementation(&self) -> SccImplementation {
        self.implementation
    }

    /// The kernel execution backend currently selected.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The channel-cycle map (Algorithm 1 output) of this layer.
    pub fn cycle_map(&self) -> &ChannelCycleMap {
        &self.map
    }

    /// Instrumentation counters accumulated across forward/backward calls.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The weight tensor, `[Cout, group_width]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable access to the weight tensor (used by optimizers).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias tensor, if the layer has one.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// Mutable access to the bias tensor.
    pub fn bias_mut(&mut self) -> Option<&mut Tensor> {
        self.bias.as_mut()
    }

    /// Replaces the weights (shape-checked).
    pub fn set_weight(&mut self, weight: Tensor) {
        assert_eq!(
            weight.shape(),
            &[self.cfg.cout(), self.cfg.group_width()],
            "weight must be [Cout, group_width]"
        );
        self.weight = weight;
    }

    /// Number of trainable parameters (weights + bias).
    pub fn num_params(&self) -> usize {
        self.cfg.weight_params() + self.bias.as_ref().map(|b| b.numel()).unwrap_or(0)
    }

    /// Forward pass; input is `[N, Cin, H, W]`, output `[N, Cout, H, W]`.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let _span = dsx_obs::span_arg(
            "scc",
            match self.implementation {
                SccImplementation::PytorchBase => "scc.forward.pytorch_base",
                SccImplementation::PytorchOpt => "scc.forward.pytorch_opt",
                SccImplementation::DsxploreVar => "scc.forward.dsxplore_var",
                SccImplementation::Dsxplore => "scc.forward.dsxplore",
            },
            "macs",
            self.cfg.forward_macs(input.shape()[0], input.shape()[3]) as u64,
        );
        match self.implementation {
            SccImplementation::PytorchBase => ComposedScc::pytorch_base(self.cfg)
                .with_backend(self.backend)
                .forward(input, &self.weight, self.bias.as_ref(), Some(&self.stats)),
            SccImplementation::PytorchOpt => ComposedScc::pytorch_opt(self.cfg)
                .with_backend(self.backend)
                .forward(input, &self.weight, self.bias.as_ref(), Some(&self.stats)),
            SccImplementation::DsxploreVar | SccImplementation::Dsxplore => {
                self.backend.backend().forward(
                    &self.cfg,
                    &self.map,
                    input,
                    &self.weight,
                    self.bias.as_ref(),
                    Some(&self.stats),
                )
            }
        }
    }

    /// Backward pass; returns gradients with respect to the input, weights
    /// and bias.
    pub fn backward(&self, input: &Tensor, grad_output: &Tensor) -> SccGradients {
        let _span = dsx_obs::span("scc", "scc.backward");
        match self.implementation {
            SccImplementation::PytorchBase => ComposedScc::pytorch_base(self.cfg)
                .with_backend(self.backend)
                .backward(input, &self.weight, grad_output, Some(&self.stats)),
            SccImplementation::PytorchOpt => ComposedScc::pytorch_opt(self.cfg)
                .with_backend(self.backend)
                .backward(input, &self.weight, grad_output, Some(&self.stats)),
            SccImplementation::DsxploreVar => scc_backward_output_centric(
                &self.cfg,
                input,
                &self.weight,
                grad_output,
                Some(&self.stats),
            ),
            SccImplementation::Dsxplore => self.backend.backend().backward(
                &self.cfg,
                &self.map,
                input,
                &self.weight,
                grad_output,
                Some(&self.stats),
            ),
        }
    }

    /// Applies a plain SGD update to the layer parameters.
    pub fn apply_gradients(&mut self, grads: &SccGradients, lr: f32) {
        self.weight.axpy(-lr, &grads.grad_weight);
        if let Some(b) = self.bias.as_mut() {
            b.axpy(-lr, &grads.grad_bias);
        }
    }

    /// The corresponding compose-based implementation (useful for memory
    /// studies); `None` for the kernel implementations.
    pub fn as_composition(&self) -> Option<ComposedScc> {
        match self.implementation {
            SccImplementation::PytorchBase => Some(ComposedScc::pytorch_base(self.cfg)),
            SccImplementation::PytorchOpt => Some(ComposedScc::pytorch_opt(self.cfg)),
            _ => None,
        }
    }

    /// Builds a composition with an explicit strategy/optimization choice
    /// sharing this layer's weights (used by the Fig. 10 memory experiment).
    pub fn composition(&self, composition: Composition, cyclic_opt: bool) -> ComposedScc {
        ComposedScc::new(self.cfg, composition, cyclic_opt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    fn layer() -> SlidingChannelConv2d {
        SlidingChannelConv2d::with_seed(SccConfig::new(8, 16, 2, 0.5).unwrap(), 99)
    }

    #[test]
    fn forward_shapes_are_correct_for_all_implementations() {
        let input = Tensor::randn(&[2, 8, 6, 6], 1);
        for implementation in SccImplementation::ALL {
            let l = layer().with_implementation(implementation);
            let out = l.forward(&input);
            assert_eq!(out.shape(), &[2, 16, 6, 6], "{}", implementation.name());
        }
    }

    #[test]
    fn all_implementations_agree_numerically() {
        let input = Tensor::randn(&[1, 8, 5, 5], 2);
        let reference = layer()
            .with_implementation(SccImplementation::Dsxplore)
            .forward(&input);
        for implementation in SccImplementation::ALL {
            let out = layer().with_implementation(implementation).forward(&input);
            assert!(
                allclose(&out, &reference, TEST_TOLERANCE),
                "{} forward mismatch",
                implementation.name()
            );
        }
    }

    #[test]
    fn backward_agrees_across_implementations() {
        let input = Tensor::randn(&[1, 8, 4, 4], 3);
        let grad_out = Tensor::randn(&[1, 16, 4, 4], 4);
        let reference = layer()
            .with_implementation(SccImplementation::Dsxplore)
            .backward(&input, &grad_out);
        for implementation in SccImplementation::ALL {
            let grads = layer()
                .with_implementation(implementation)
                .backward(&input, &grad_out);
            assert!(allclose(&grads.grad_input, &reference.grad_input, 1e-3));
            assert!(allclose(&grads.grad_weight, &reference.grad_weight, 1e-3));
            assert!(allclose(&grads.grad_bias, &reference.grad_bias, 1e-3));
        }
    }

    #[test]
    fn training_step_reduces_a_simple_loss() {
        // Minimise || output ||^2 for a fixed input: gradients should shrink
        // the weights and the loss must go down.
        let mut l = layer();
        let input = Tensor::randn(&[1, 8, 4, 4], 5);
        let mut last_loss = f32::INFINITY;
        for _ in 0..5 {
            let out = l.forward(&input);
            let loss = out.norm_sq();
            assert!(loss < last_loss * 1.0001, "loss must not increase");
            last_loss = loss;
            let grad_out = out.scale(2.0);
            let grads = l.backward(&input, &grad_out);
            l.apply_gradients(&grads, 0.01);
        }
    }

    #[test]
    fn blocked_backend_agrees_with_naive_across_implementations() {
        let input = Tensor::randn(&[2, 8, 5, 5], 21);
        let grad_out = Tensor::randn(&[2, 16, 5, 5], 22);
        let fwd_ref = layer().forward(&input);
        let bwd_ref = layer().backward(&input, &grad_out);
        for implementation in SccImplementation::ALL {
            let l = layer()
                .with_implementation(implementation)
                .with_backend(BackendKind::Blocked);
            assert_eq!(l.backend(), BackendKind::Blocked);
            assert!(
                allclose(&l.forward(&input), &fwd_ref, TEST_TOLERANCE),
                "{} forward diverges on the blocked backend",
                implementation.name()
            );
            let grads = l.backward(&input, &grad_out);
            assert!(allclose(&grads.grad_input, &bwd_ref.grad_input, 1e-3));
            assert!(allclose(&grads.grad_weight, &bwd_ref.grad_weight, 1e-3));
            assert!(allclose(&grads.grad_bias, &bwd_ref.grad_bias, 1e-3));
        }
    }

    #[test]
    fn layers_pick_up_the_process_default_backend_at_construction() {
        let _guard = crate::backend::test_default_backend_lock();
        let original = crate::backend::default_backend();
        crate::backend::set_default_backend(BackendKind::Blocked);
        let l = layer();
        crate::backend::set_default_backend(original);
        assert_eq!(l.backend(), BackendKind::Blocked);
        // Restoring the default never touches an existing layer.
        assert_eq!(layer().backend(), original);
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let l = layer();
        assert_eq!(l.num_params(), 16 * 4 + 16);
        let no_bias = layer().without_bias();
        assert_eq!(no_bias.num_params(), 16 * 4);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let l = layer();
        let input = Tensor::randn(&[1, 8, 4, 4], 6);
        l.forward(&input);
        l.forward(&input);
        assert_eq!(l.stats().kernel_launches(), 2);
    }

    #[test]
    fn set_weight_validates_shape() {
        let mut l = layer();
        l.set_weight(Tensor::zeros(&[16, 4]));
        assert_eq!(l.weight().sum(), 0.0);
    }

    #[test]
    #[should_panic]
    fn set_weight_rejects_bad_shape() {
        layer().set_weight(Tensor::zeros(&[16, 8]));
    }
}
