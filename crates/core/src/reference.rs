//! Naive scalar reference implementations of the sliding-channel convolution.
//!
//! These follow the mathematical definition directly (triple/quadruple nested
//! loops, no parallelism, no cyclic-index reuse) and exist purely as the
//! ground truth that the optimized kernels, the operator-composition
//! baselines and the property tests are checked against.

use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use dsx_tensor::Tensor;

/// Naive SCC forward pass.
///
/// * `input`  — `[N, Cin, H, W]`
/// * `weight` — `[Cout, group_width]` (1×1 filters)
/// * `bias`   — optional `[Cout]`
///
/// Returns `[N, Cout, H, W]`.
pub fn scc_forward_reference(
    cfg: &SccConfig,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Tensor {
    validate_shapes(cfg, input, weight, bias);
    let map = ChannelCycleMap::build(cfg);
    let (n, _cin, h, w) = dims4(input);
    let cout = cfg.cout();
    let gw = cfg.group_width();
    let mut out = Tensor::zeros(&[n, cout, h, w]);
    for img in 0..n {
        for oc in 0..cout {
            let window = map.window_for_output(oc);
            let b = bias.map(|t| t.as_slice()[oc]).unwrap_or(0.0);
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for j in 0..gw {
                        let ic = window.channel_at(j);
                        acc += weight.as_slice()[oc * gw + j] * input.at4(img, ic, y, x);
                    }
                    *out.at4_mut(img, oc, y, x) = acc;
                }
            }
        }
    }
    out
}

/// Naive SCC backward pass. Returns `(grad_input, grad_weight, grad_bias)`.
///
/// * `grad_output` — `[N, Cout, H, W]`
pub fn scc_backward_reference(
    cfg: &SccConfig,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    validate_shapes(cfg, input, weight, None);
    let map = ChannelCycleMap::build(cfg);
    let (n, cin, h, w) = dims4(input);
    let cout = cfg.cout();
    let gw = cfg.group_width();
    assert_eq!(grad_output.shape(), &[n, cout, h, w], "grad_output shape");

    let mut grad_input = Tensor::zeros(&[n, cin, h, w]);
    let mut grad_weight = Tensor::zeros(&[cout, gw]);
    let mut grad_bias = Tensor::zeros(&[cout]);

    for img in 0..n {
        for oc in 0..cout {
            let window = map.window_for_output(oc);
            for y in 0..h {
                for x in 0..w {
                    let go = grad_output.at4(img, oc, y, x);
                    grad_bias.as_mut_slice()[oc] += go;
                    for j in 0..gw {
                        let ic = window.channel_at(j);
                        // dL/dI = W * dL/dO (scatter)
                        *grad_input.at4_mut(img, ic, y, x) += weight.as_slice()[oc * gw + j] * go;
                        // dL/dW = I * dL/dO
                        grad_weight.as_mut_slice()[oc * gw + j] += input.at4(img, ic, y, x) * go;
                    }
                }
            }
        }
    }
    (grad_input, grad_weight, grad_bias)
}

/// Naive pointwise (1×1 standard) convolution used to cross-check the SCC
/// special case `cg = 1`.
pub fn pointwise_forward_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Tensor {
    let (n, cin, h, w) = dims4(input);
    let cout = weight.dim(0);
    assert_eq!(weight.dim(1), cin, "pointwise weight must be [Cout, Cin]");
    let mut out = Tensor::zeros(&[n, cout, h, w]);
    for img in 0..n {
        for oc in 0..cout {
            let b = bias.map(|t| t.as_slice()[oc]).unwrap_or(0.0);
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for ic in 0..cin {
                        acc += weight.as_slice()[oc * cin + ic] * input.at4(img, ic, y, x);
                    }
                    *out.at4_mut(img, oc, y, x) = acc;
                }
            }
        }
    }
    out
}

/// Naive group pointwise convolution (`cg` groups, no overlap) used to
/// cross-check the SCC special case `co = 0`.
///
/// The weight layout matches SCC: `[Cout, group_width]`, where output channel
/// `oc` belongs to group `oc / (cout / cg)` in the standard GPW definition.
/// Note that SCC with `co = 0` assigns windows *cyclically* (filter `i` reads
/// window `i % cg`), whereas classic GPW assigns them *block-wise* (the first
/// `cout/cg` filters read window 0). Both cover the same windows; the
/// block-wise variant is provided for the comparison experiments.
pub fn gpw_forward_reference_blockwise(
    cin: usize,
    cout: usize,
    cg: usize,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Tensor {
    assert_eq!(cin % cg, 0, "cin must divide by cg");
    assert_eq!(cout % cg, 0, "cout must divide by cg for block-wise GPW");
    let gw = cin / cg;
    let out_per_group = cout / cg;
    let (n, cin_t, h, w) = dims4(input);
    assert_eq!(cin_t, cin);
    assert_eq!(
        weight.shape(),
        &[cout, gw],
        "GPW weight must be [Cout, group_width]"
    );
    let mut out = Tensor::zeros(&[n, cout, h, w]);
    for img in 0..n {
        for oc in 0..cout {
            let group = oc / out_per_group;
            let start = group * gw;
            let b = bias.map(|t| t.as_slice()[oc]).unwrap_or(0.0);
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for j in 0..gw {
                        acc += weight.as_slice()[oc * gw + j] * input.at4(img, start + j, y, x);
                    }
                    *out.at4_mut(img, oc, y, x) = acc;
                }
            }
        }
    }
    out
}

pub(crate) fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.rank(),
        4,
        "expected an NCHW tensor, got shape {:?}",
        t.shape()
    );
    (t.dim(0), t.dim(1), t.dim(2), t.dim(3))
}

pub(crate) fn validate_shapes(
    cfg: &SccConfig,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) {
    let (_n, cin, _h, _w) = dims4(input);
    assert_eq!(
        cin,
        cfg.cin(),
        "input has {cin} channels but the SCC config expects {}",
        cfg.cin()
    );
    assert_eq!(
        weight.shape(),
        &[cfg.cout(), cfg.group_width()],
        "weight must be [Cout, group_width] = [{}, {}]",
        cfg.cout(),
        cfg.group_width()
    );
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[cfg.cout()], "bias must be [Cout]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsx_tensor::allclose;

    #[test]
    fn scc_with_cg1_equals_pointwise() {
        let cfg = SccConfig::pointwise(6, 10);
        let input = Tensor::randn(&[2, 6, 4, 4], 1);
        let weight = Tensor::randn(&[10, 6], 2);
        let bias = Tensor::randn(&[10], 3);
        let scc = scc_forward_reference(&cfg, &input, &weight, Some(&bias));
        let pw = pointwise_forward_reference(&input, &weight, Some(&bias));
        assert!(allclose(&scc, &pw, 1e-5));
    }

    #[test]
    fn scc_with_zero_overlap_covers_same_windows_as_gpw() {
        // With co = 0 SCC reads window (oc % cg); block-wise GPW reads window
        // (oc / out_per_group). Permuting output channels accordingly makes
        // them identical.
        let (cin, cout, cg) = (8, 8, 4);
        let cfg = SccConfig::group_pointwise(cin, cout, cg).unwrap();
        let input = Tensor::randn(&[1, cin, 3, 3], 4);
        let weight = Tensor::randn(&[cout, cin / cg], 5);

        let scc = scc_forward_reference(&cfg, &input, &weight, None);
        // Build a permuted weight for block-wise GPW: block-wise output
        // channel oc' = group * out_per_group + k corresponds to SCC output
        // channel oc with oc % cg == group.
        let out_per_group = cout / cg;
        let gw = cin / cg;
        let mut perm = vec![0usize; cout];
        let mut next_in_group = vec![0usize; cg];
        for (oc, p) in perm.iter_mut().enumerate() {
            let g = oc % cg;
            *p = g * out_per_group + next_in_group[g];
            next_in_group[g] += 1;
        }
        let mut w_block = Tensor::zeros(&[cout, gw]);
        for (oc, &p) in perm.iter().enumerate() {
            for j in 0..gw {
                w_block.as_mut_slice()[p * gw + j] = weight.as_slice()[oc * gw + j];
            }
        }
        let gpw = gpw_forward_reference_blockwise(cin, cout, cg, &input, &w_block, None);
        for (oc, &p) in perm.iter().enumerate() {
            for y in 0..3 {
                for x in 0..3 {
                    assert!(
                        (scc.at4(0, oc, y, x) - gpw.at4(0, p, y, x)).abs() < 1e-5,
                        "mismatch at oc={oc}"
                    );
                }
            }
        }
    }

    #[test]
    fn backward_reference_matches_numerical_gradient() {
        let cfg = SccConfig::new(4, 6, 2, 0.5).unwrap();
        let input = Tensor::randn(&[1, 4, 3, 3], 10);
        let weight = Tensor::randn(&[6, 2], 11);
        let grad_out = Tensor::ones(&[1, 6, 3, 3]);

        let (gi, gw_grad, gb) = scc_backward_reference(&cfg, &input, &weight, &grad_out);

        // Numerical gradient wrt a few weight entries: loss = sum(output).
        let eps = 1e-2f32;
        for &idx in &[0usize, 3, 7, 11] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = scc_forward_reference(&cfg, &input, &wp, None).sum();
            let lm = scc_forward_reference(&cfg, &input, &wm, None).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gw_grad.as_slice()[idx]).abs() < 1e-2,
                "weight grad mismatch at {idx}: numerical {num} vs analytic {}",
                gw_grad.as_slice()[idx]
            );
        }

        // Numerical gradient wrt a few input entries.
        for &idx in &[0usize, 10, 20, 35] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let lp = scc_forward_reference(&cfg, &ip, &weight, None).sum();
            let lm = scc_forward_reference(&cfg, &im, &weight, None).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gi.as_slice()[idx]).abs() < 1e-2,
                "input grad mismatch at {idx}"
            );
        }

        // Bias gradient with all-ones grad_output is just the pixel count.
        assert!(gb.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-5));
    }

    #[test]
    #[should_panic]
    fn forward_rejects_wrong_weight_shape() {
        let cfg = SccConfig::new(4, 6, 2, 0.5).unwrap();
        let input = Tensor::zeros(&[1, 4, 2, 2]);
        let weight = Tensor::zeros(&[6, 4]);
        scc_forward_reference(&cfg, &input, &weight, None);
    }

    #[test]
    #[should_panic]
    fn forward_rejects_wrong_input_channels() {
        let cfg = SccConfig::new(4, 6, 2, 0.5).unwrap();
        let input = Tensor::zeros(&[1, 8, 2, 2]);
        let weight = Tensor::zeros(&[6, 2]);
        scc_forward_reference(&cfg, &input, &weight, None);
    }
}
