//! Analytic workload profiles of one SCC layer under each implementation.
//!
//! The runtime figures of the paper (Figs. 7–14) cover ImageNet-scale layer
//! shapes and batch sizes that are far too large to execute on a laptop CPU.
//! To reproduce their *shape* we characterise every implementation by the
//! resource counts a GPU would observe — threads launched, multiply-
//! accumulates, bytes sliced/concatenated, kernel launches, atomic updates,
//! peak intermediate memory — using closed-form expressions that mirror
//! exactly what the instrumented CPU kernels in this crate count when they
//! actually run (the unit tests assert the two agree). The `dsx-gpusim`
//! crate then converts these profiles into estimated execution times on a
//! V100-like machine model.

use crate::backward::output_centric_atomic_count;
use crate::config::SccConfig;
use crate::cyclic::ChannelCycleMap;
use crate::layer::SccImplementation;

const F32: usize = std::mem::size_of::<f32>();

/// Resource counts of one kernel-level pass (forward or backward) of one SCC
/// layer under one implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpProfile {
    /// Logical GPU threads the pass launches (0 for host-driven loops).
    pub threads: usize,
    /// Multiply-accumulate operations.
    pub macs: usize,
    /// Bytes of intermediate tensors materialised (slices, concatenations,
    /// stacked inputs, transient gradients).
    pub bytes_materialized: usize,
    /// Bytes copied between buffers by slicing / concatenation / narrowing.
    pub bytes_moved: usize,
    /// Kernel launches / framework operator invocations.
    pub kernel_launches: usize,
    /// Atomic read-modify-write updates.
    pub atomic_updates: usize,
    /// Peak intermediate memory alive at any point of the pass, in bytes
    /// (what Fig. 10 reports).
    pub peak_bytes: usize,
}

impl OpProfile {
    /// Elementwise sum of two profiles (peak memory takes the max, which is
    /// the right composition for sequentially executed passes).
    pub fn merge(&self, other: &OpProfile) -> OpProfile {
        OpProfile {
            threads: self.threads + other.threads,
            macs: self.macs + other.macs,
            bytes_materialized: self.bytes_materialized + other.bytes_materialized,
            bytes_moved: self.bytes_moved + other.bytes_moved,
            kernel_launches: self.kernel_launches + other.kernel_launches,
            atomic_updates: self.atomic_updates + other.atomic_updates,
            peak_bytes: self.peak_bytes.max(other.peak_bytes),
        }
    }
}

/// Shape of one SCC layer invocation: batch size and spatial extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerShape {
    /// Batch size.
    pub batch: usize,
    /// Feature-map height.
    pub height: usize,
    /// Feature-map width.
    pub width: usize,
}

impl LayerShape {
    /// Convenience constructor for square feature maps.
    pub fn square(batch: usize, fw: usize) -> Self {
        LayerShape {
            batch,
            height: fw,
            width: fw,
        }
    }

    /// Pixels per channel plane.
    pub fn plane(&self) -> usize {
        self.height * self.width
    }
}

/// Analytic profile of the forward pass.
pub fn forward_profile(
    cfg: &SccConfig,
    shape: &LayerShape,
    implementation: SccImplementation,
) -> OpProfile {
    let map = ChannelCycleMap::build(cfg);
    let n = shape.batch;
    let plane = shape.plane();
    let (cin, cout, gw, cd) = (cfg.cin(), cfg.cout(), cfg.group_width(), map.cyclic_dist());

    let input_bytes = n * cin * plane * F32;
    let window_bytes = n * gw * plane * F32;
    let out_bytes = n * cout * plane * F32;
    let out1_bytes = n * plane * F32;
    let cycle_bytes = n * cd * gw * plane * F32;
    let stacked_bytes = n * cout * gw * plane * F32;
    let macs = n * cout * plane * gw;

    match implementation {
        SccImplementation::Dsxplore | SccImplementation::DsxploreVar => OpProfile {
            threads: n * cout * plane,
            macs,
            bytes_materialized: 0,
            bytes_moved: input_bytes + out_bytes,
            kernel_launches: 1,
            atomic_updates: 0,
            peak_bytes: input_bytes + out_bytes,
        },
        SccImplementation::PytorchBase => OpProfile {
            threads: 0,
            macs,
            bytes_materialized: cout * window_bytes + stacked_bytes + out_bytes,
            // Every window is gathered with advanced indexing (read input,
            // read index, write slice), then read again for the concat, and
            // the stacked tensor is written and re-read by the grouped conv.
            bytes_moved: 3 * cout * window_bytes + 2 * stacked_bytes,
            kernel_launches: cout + 2,
            atomic_updates: 0,
            peak_bytes: input_bytes + cout * window_bytes + stacked_bytes + out_bytes,
        },
        SccImplementation::PytorchOpt => OpProfile {
            threads: 0,
            macs,
            bytes_materialized: cd * window_bytes + cycle_bytes + cout * out1_bytes + out_bytes,
            bytes_moved: 2 * cd * window_bytes + cycle_bytes + cout * window_bytes,
            // Slicing the first cycle, concatenating it, one small convolution
            // per output channel (the per-filter narrow is a zero-copy view),
            // and the final concatenation.
            kernel_launches: cd + 1 + cout + 1,
            atomic_updates: 0,
            peak_bytes: input_bytes + cycle_bytes + cout * out1_bytes + out_bytes,
        },
    }
}

/// Analytic profile of the backward pass.
pub fn backward_profile(
    cfg: &SccConfig,
    shape: &LayerShape,
    implementation: SccImplementation,
) -> OpProfile {
    let map = ChannelCycleMap::build(cfg);
    let n = shape.batch;
    let plane = shape.plane();
    let (cin, cout, gw, cd) = (cfg.cin(), cfg.cout(), cfg.group_width(), map.cyclic_dist());

    let input_bytes = n * cin * plane * F32;
    let window_bytes = n * gw * plane * F32;
    let out_bytes = n * cout * plane * F32;
    let cycle_bytes = n * cd * gw * plane * F32;
    let stacked_bytes = n * cout * gw * plane * F32;
    let weight_bytes = cout * gw * F32;
    // grad_input + grad_weight (+ grad_bias, negligible)
    let grad_macs = 2 * n * cout * plane * gw + n * cout * plane;

    match implementation {
        SccImplementation::Dsxplore => OpProfile {
            threads: n * cin * plane + cout * gw + cout,
            macs: grad_macs,
            bytes_materialized: 0,
            bytes_moved: input_bytes + out_bytes + input_bytes + weight_bytes,
            kernel_launches: 3,
            atomic_updates: 0,
            peak_bytes: 2 * input_bytes + out_bytes + weight_bytes,
        },
        SccImplementation::DsxploreVar => OpProfile {
            threads: n * cout * plane,
            macs: grad_macs,
            bytes_materialized: 0,
            bytes_moved: input_bytes + out_bytes + input_bytes + weight_bytes,
            kernel_launches: 1,
            atomic_updates: output_centric_atomic_count(cfg, n, shape.height, shape.width),
            peak_bytes: 2 * input_bytes + out_bytes + weight_bytes,
        },
        SccImplementation::PytorchBase => OpProfile {
            threads: 0,
            macs: grad_macs,
            // Rebuild / keep the stacked input plus its gradient, then
            // scatter back per window (index_add per window).
            bytes_materialized: cout * window_bytes + 2 * stacked_bytes + input_bytes,
            bytes_moved: 3 * cout * window_bytes + 4 * stacked_bytes,
            kernel_launches: cout + 2 + 2 + cout,
            atomic_updates: 0,
            peak_bytes: input_bytes + 2 * stacked_bytes + out_bytes + input_bytes,
        },
        SccImplementation::PytorchOpt => OpProfile {
            threads: 0,
            macs: grad_macs,
            // One transient window gradient at a time plus the cached cycle
            // tensor.
            bytes_materialized: cd * window_bytes + cycle_bytes + cout * window_bytes + input_bytes,
            bytes_moved: 2 * cd * window_bytes + cycle_bytes + 2 * cout * window_bytes,
            // Per small convolution: one grad-input kernel and one
            // grad-weight kernel (the scatter back into the input gradient is
            // fused into index_add on the view).
            kernel_launches: cd + 1 + 2 * cout,
            atomic_updates: 0,
            peak_bytes: input_bytes + cycle_bytes + window_bytes + out_bytes + input_bytes,
        },
    }
}

/// Profile of one full training step (forward + backward) of the layer.
pub fn training_step_profile(
    cfg: &SccConfig,
    shape: &LayerShape,
    implementation: SccImplementation,
) -> OpProfile {
    forward_profile(cfg, shape, implementation).merge(&backward_profile(cfg, shape, implementation))
}

/// Peak intermediate memory of the *stacking* structures only, with and
/// without the channel-cyclic optimization (the Fig. 10 comparison). Returns
/// `(without_cc, with_cc)` in bytes for the given composition-based
/// implementation.
pub fn stacking_memory_bytes(cfg: &SccConfig, shape: &LayerShape) -> (usize, usize) {
    let map = ChannelCycleMap::build(cfg);
    let n = shape.batch;
    let plane = shape.plane();
    let (cout, gw, cd) = (cfg.cout(), cfg.group_width(), map.cyclic_dist());
    let window_bytes = n * gw * plane * F32;
    // Without the optimization every filter's window is sliced and kept for
    // the concatenated tensor; with it only the first cycle's windows are.
    let without = cout * window_bytes;
    let with = cd.min(cout) * window_bytes;
    (without, with)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::ComposedScc;
    use crate::forward::scc_forward;
    use crate::stats::KernelStats;
    use dsx_tensor::Tensor;

    fn cfg() -> SccConfig {
        SccConfig::new(16, 32, 2, 0.5).unwrap()
    }

    #[test]
    fn forward_profile_macs_match_instrumented_kernel() {
        let cfg = cfg();
        let shape = LayerShape::square(2, 6);
        let input = Tensor::randn(&[2, 16, 6, 6], 1);
        let weight = Tensor::randn(&[32, 8], 2);
        let stats = KernelStats::new();
        scc_forward(&cfg, &input, &weight, None, Some(&stats));
        let profile = forward_profile(&cfg, &shape, SccImplementation::Dsxplore);
        assert_eq!(profile.macs, stats.macs());
        assert_eq!(profile.kernel_launches, stats.kernel_launches());
        assert_eq!(profile.atomic_updates, 0);
    }

    #[test]
    fn pytorch_base_profile_matches_instrumented_composition() {
        let cfg = cfg();
        let shape = LayerShape::square(2, 6);
        let input = Tensor::randn(&[2, 16, 6, 6], 3);
        let weight = Tensor::randn(&[32, 8], 4);
        let stats = KernelStats::new();
        ComposedScc::pytorch_base(cfg).forward(&input, &weight, None, Some(&stats));
        let profile = forward_profile(&cfg, &shape, SccImplementation::PytorchBase);
        assert_eq!(profile.macs, stats.macs());
        assert_eq!(profile.kernel_launches, stats.kernel_launches());
        assert_eq!(profile.bytes_materialized, stats.bytes_materialized());
    }

    #[test]
    fn pytorch_opt_materializes_less_than_base() {
        let cfg = cfg();
        let shape = LayerShape::square(8, 32);
        let base = forward_profile(&cfg, &shape, SccImplementation::PytorchBase);
        let opt = forward_profile(&cfg, &shape, SccImplementation::PytorchOpt);
        let kernel = forward_profile(&cfg, &shape, SccImplementation::Dsxplore);
        assert!(opt.bytes_materialized < base.bytes_materialized);
        assert!(kernel.bytes_materialized < opt.bytes_materialized);
        assert!(base.peak_bytes > opt.peak_bytes);
    }

    #[test]
    fn dsxplore_backward_has_zero_atomics_and_var_has_many() {
        let cfg = cfg();
        let shape = LayerShape::square(4, 16);
        let dsx = backward_profile(&cfg, &shape, SccImplementation::Dsxplore);
        let var = backward_profile(&cfg, &shape, SccImplementation::DsxploreVar);
        assert_eq!(dsx.atomic_updates, 0);
        assert!(var.atomic_updates > 0);
        // Reduction is more than 90% (it is 100% here), as the paper reports.
        assert!(dsx.atomic_updates * 10 < var.atomic_updates);
    }

    #[test]
    fn training_step_profile_sums_passes() {
        let cfg = cfg();
        let shape = LayerShape::square(2, 8);
        let f = forward_profile(&cfg, &shape, SccImplementation::Dsxplore);
        let b = backward_profile(&cfg, &shape, SccImplementation::Dsxplore);
        let t = training_step_profile(&cfg, &shape, SccImplementation::Dsxplore);
        assert_eq!(t.macs, f.macs + b.macs);
        assert_eq!(t.kernel_launches, f.kernel_launches + b.kernel_launches);
        assert_eq!(t.peak_bytes, f.peak_bytes.max(b.peak_bytes));
    }

    #[test]
    fn stacking_memory_reduction_matches_paper_range() {
        // Fig. 10 reports 72.88% - 83.33% memory savings from the cyclic
        // optimization; the saving is 1 - cyclic_dist/cout for the stacked
        // windows, which for deep-layer shapes falls in that range.
        let cfg = SccConfig::new(512, 512, 2, 0.5).unwrap();
        let shape = LayerShape::square(64, 14);
        let (without, with) = stacking_memory_bytes(&cfg, &shape);
        assert!(without > with);
        let saving = 1.0 - with as f64 / without as f64;
        assert!(saving > 0.5, "saving {saving}");
    }

    #[test]
    fn profiles_scale_linearly_with_batch() {
        let cfg = cfg();
        let p1 = forward_profile(
            &cfg,
            &LayerShape::square(1, 16),
            SccImplementation::Dsxplore,
        );
        let p4 = forward_profile(
            &cfg,
            &LayerShape::square(4, 16),
            SccImplementation::Dsxplore,
        );
        assert_eq!(p4.macs, 4 * p1.macs);
        assert_eq!(p4.threads, 4 * p1.threads);
    }
}
