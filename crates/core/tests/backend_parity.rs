//! Cross-backend parity property suite.
//!
//! Asserts `BlockedBackend`, `TiledBackend` and `SwsumBackend` match `NaiveBackend` *and*
//! the scalar reference within `TEST_TOLERANCE` (no tolerance widening)
//! across `cg ∈ {1, 2, 4, 8}`, `co ∈ {0, 0.25, 0.33, 0.5, 0.75}`,
//! non-square spatial dims, and plane sizes that do not divide the blocked
//! kernel's tile width (`LANES`), plus a determinism check that the tiled
//! backend produces bit-identical results at 1 and N pool threads.

use dsx_core::backend::LANES;
use dsx_core::reference::{scc_backward_reference, scc_forward_reference};
use dsx_core::{BackendKind, ChannelCycleMap, SccConfig, SccGradients};
use dsx_tensor::{allclose, Tensor, TEST_TOLERANCE};
use proptest::prelude::*;

struct Case {
    cfg: SccConfig,
    map: ChannelCycleMap,
    input: Tensor,
    weight: Tensor,
    bias: Tensor,
    grad_output: Tensor,
}

#[allow(clippy::too_many_arguments)]
fn build_case(
    cg: usize,
    cin_mult: usize,
    cout: usize,
    co: f64,
    n: usize,
    h: usize,
    w: usize,
    seed: u64,
) -> Option<Case> {
    let cin = cg * cin_mult;
    let cfg = SccConfig::new(cin, cout, cg, co).ok()?;
    let map = ChannelCycleMap::build(&cfg);
    Some(Case {
        input: Tensor::randn(&[n, cin, h, w], seed),
        weight: Tensor::randn(&[cout, cfg.group_width()], seed + 1),
        bias: Tensor::randn(&[cout], seed + 2),
        grad_output: Tensor::randn(&[n, cout, h, w], seed + 3),
        cfg,
        map,
    })
}

fn forward_of(case: &Case, kind: BackendKind) -> Tensor {
    kind.backend().forward(
        &case.cfg,
        &case.map,
        &case.input,
        &case.weight,
        Some(&case.bias),
        None,
    )
}

fn backward_of(case: &Case, kind: BackendKind) -> SccGradients {
    kind.backend().backward(
        &case.cfg,
        &case.map,
        &case.input,
        &case.weight,
        &case.grad_output,
        None,
    )
}

/// Property-test case count: full natively, minimal under Miri or
/// `DSX_TEST_FAST` (sanitizer/interpreter runs need the coverage, not
/// the volume).
fn prop_cases(full: u32) -> u32 {
    if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
        2
    } else {
        full
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(48)))]

    /// Forward parity: blocked == naive == scalar reference, TEST_TOLERANCE.
    #[test]
    fn prop_forward_parity(
        cg in prop::sample::select(vec![1usize, 2, 4, 8]),
        cin_mult in 1usize..4,
        cout in 1usize..24,
        co in prop::sample::select(vec![0.0f64, 0.25, 0.33, 0.5, 0.75]),
        n in 1usize..3,
        h in 1usize..8,
        w in 1usize..8,
        seed in 0u64..1000,
    ) {
        let Some(case) = build_case(cg, cin_mult, cout, co, n, h, w, seed) else {
            return Ok(()); // degenerate (cg, co) combination
        };
        let naive = forward_of(&case, BackendKind::Naive);
        let reference =
            scc_forward_reference(&case.cfg, &case.input, &case.weight, Some(&case.bias));
        for kind in [BackendKind::Blocked, BackendKind::Tiled, BackendKind::Swsum] {
            let got = forward_of(&case, kind);
            prop_assert!(
                allclose(&got, &naive, TEST_TOLERANCE),
                "{kind} != naive for {:?} {h}x{w}", case.cfg
            );
            prop_assert!(
                allclose(&got, &reference, TEST_TOLERANCE),
                "{kind} != reference for {:?} {h}x{w}", case.cfg
            );
        }
    }

    /// Backward parity: all three gradients agree across backends and with
    /// the scalar reference, TEST_TOLERANCE.
    #[test]
    fn prop_backward_parity(
        cg in prop::sample::select(vec![1usize, 2, 4, 8]),
        cin_mult in 1usize..3,
        cout in 1usize..16,
        co in prop::sample::select(vec![0.0f64, 0.25, 0.33, 0.5, 0.75]),
        h in 1usize..7,
        w in 1usize..7,
        seed in 0u64..1000,
    ) {
        let Some(case) = build_case(cg, cin_mult, cout, co, 1, h, w, seed) else {
            return Ok(());
        };
        let naive = backward_of(&case, BackendKind::Naive);
        let (ref_gi, ref_gw, ref_gb) =
            scc_backward_reference(&case.cfg, &case.input, &case.weight, &case.grad_output);
        for kind in [BackendKind::Blocked, BackendKind::Tiled, BackendKind::Swsum] {
            let got = backward_of(&case, kind);
            prop_assert!(allclose(&got.grad_input, &naive.grad_input, TEST_TOLERANCE), "{kind}");
            prop_assert!(allclose(&got.grad_weight, &naive.grad_weight, TEST_TOLERANCE), "{kind}");
            prop_assert!(allclose(&got.grad_bias, &naive.grad_bias, TEST_TOLERANCE), "{kind}");
            prop_assert!(allclose(&got.grad_input, &ref_gi, TEST_TOLERANCE), "{kind}");
            prop_assert!(allclose(&got.grad_weight, &ref_gw, TEST_TOLERANCE), "{kind}");
            prop_assert!(allclose(&got.grad_bias, &ref_gb, TEST_TOLERANCE), "{kind}");
        }
    }
}

/// Deterministic sweep of the exact grid the issue names, including plane
/// sizes straddling the tile width on both sides.
#[test]
fn parity_grid_over_cg_co_and_ragged_planes() {
    let spatial = [
        (1usize, 1usize),
        (1, LANES - 1),
        (1, LANES),
        (3, 5),
        (5, 7),
        (4, LANES),
    ];
    for cg in [1usize, 2, 4, 8] {
        for co in [0.0f64, 0.25, 0.33, 0.5, 0.75] {
            let cin = cg * 2;
            let cout = cin + 2; // not a multiple of most cycle lengths
            let Ok(cfg) = SccConfig::new(cin, cout, cg, co) else {
                continue;
            };
            let map = ChannelCycleMap::build(&cfg);
            for (h, w) in spatial {
                let input = Tensor::randn(&[2, cin, h, w], 77);
                let weight = Tensor::randn(&[cout, cfg.group_width()], 78);
                let grad_out = Tensor::randn(&[2, cout, h, w], 79);
                let naive_f = BackendKind::Naive
                    .backend()
                    .forward(&cfg, &map, &input, &weight, None, None);
                let naive_b = BackendKind::Naive
                    .backend()
                    .backward(&cfg, &map, &input, &weight, &grad_out, None);
                for kind in [BackendKind::Blocked, BackendKind::Tiled, BackendKind::Swsum] {
                    let fwd = kind
                        .backend()
                        .forward(&cfg, &map, &input, &weight, None, None);
                    assert!(
                        allclose(&fwd, &naive_f, TEST_TOLERANCE),
                        "{kind} forward parity fails for cg={cg} co={co} {h}x{w}"
                    );
                    let bwd = kind
                        .backend()
                        .backward(&cfg, &map, &input, &weight, &grad_out, None);
                    for (got, want, name) in [
                        (&bwd.grad_input, &naive_b.grad_input, "grad_input"),
                        (&bwd.grad_weight, &naive_b.grad_weight, "grad_weight"),
                        (&bwd.grad_bias, &naive_b.grad_bias, "grad_bias"),
                    ] {
                        assert!(
                            allclose(got, want, TEST_TOLERANCE),
                            "{kind} {name} parity fails for cg={cg} co={co} {h}x{w}"
                        );
                    }
                }
            }
        }
    }
}

/// Same seed, 1 pool thread vs N pool threads: the tiled backend's task
/// decomposition (and each task's accumulation order) depends only on the
/// shape, so forward *and* backward outputs must be bit-identical — not
/// merely within tolerance.
///
/// (Flipping the global thread count mid-suite is safe: the other tests in
/// this binary are thread-count agnostic — every parallel entry point is
/// correct at any count — so the only effect is which scheduling path they
/// exercise while this test runs.)
#[test]
fn tiled_results_are_bit_identical_across_pool_thread_counts() {
    // 64x64 planes split into 4 strips each, so the pool genuinely
    // decomposes the work instead of degenerating to one task per plane.
    let cfg = SccConfig::new(16, 24, 2, 0.5).unwrap();
    let map = ChannelCycleMap::build(&cfg);
    let input = Tensor::randn(&[2, 16, 64, 64], 91);
    let weight = Tensor::randn(&[24, cfg.group_width()], 92);
    let bias = Tensor::randn(&[24], 93);
    let grad_out = Tensor::randn(&[2, 24, 64, 64], 94);
    let backend = BackendKind::Tiled.backend();

    let run = || {
        let fwd = backend.forward(&cfg, &map, &input, &weight, Some(&bias), None);
        let grads = backend.backward(&cfg, &map, &input, &weight, &grad_out, None);
        (fwd, grads)
    };
    dsx_tensor::set_num_threads(1);
    let (fwd_single, grads_single) = run();
    dsx_tensor::set_num_threads(4);
    let (fwd_pooled, grads_pooled) = run();
    dsx_tensor::set_num_threads(0);

    assert_eq!(
        fwd_single.as_slice(),
        fwd_pooled.as_slice(),
        "forward must be bit-identical at 1 vs 4 pool threads"
    );
    for (single, pooled, name) in [
        (
            &grads_single.grad_input,
            &grads_pooled.grad_input,
            "grad_input",
        ),
        (
            &grads_single.grad_weight,
            &grads_pooled.grad_weight,
            "grad_weight",
        ),
        (
            &grads_single.grad_bias,
            &grads_pooled.grad_bias,
            "grad_bias",
        ),
    ] {
        assert_eq!(
            single.as_slice(),
            pooled.as_slice(),
            "{name} must be bit-identical at 1 vs 4 pool threads"
        );
    }
}
