//! Cross-backend parity property suite.
//!
//! Asserts `BlockedBackend` matches `NaiveBackend` *and* the scalar
//! reference within `TEST_TOLERANCE` (no tolerance widening) across
//! `cg ∈ {1, 2, 4, 8}`, `co ∈ {0, 0.25, 0.33, 0.5, 0.75}`, non-square
//! spatial dims, and plane sizes that do not divide the blocked kernel's
//! tile width (`LANES`).

use dsx_core::backend::LANES;
use dsx_core::reference::{scc_backward_reference, scc_forward_reference};
use dsx_core::{BackendKind, ChannelCycleMap, SccConfig, SccGradients};
use dsx_tensor::{allclose, Tensor, TEST_TOLERANCE};
use proptest::prelude::*;

struct Case {
    cfg: SccConfig,
    map: ChannelCycleMap,
    input: Tensor,
    weight: Tensor,
    bias: Tensor,
    grad_output: Tensor,
}

#[allow(clippy::too_many_arguments)]
fn build_case(
    cg: usize,
    cin_mult: usize,
    cout: usize,
    co: f64,
    n: usize,
    h: usize,
    w: usize,
    seed: u64,
) -> Option<Case> {
    let cin = cg * cin_mult;
    let cfg = SccConfig::new(cin, cout, cg, co).ok()?;
    let map = ChannelCycleMap::build(&cfg);
    Some(Case {
        input: Tensor::randn(&[n, cin, h, w], seed),
        weight: Tensor::randn(&[cout, cfg.group_width()], seed + 1),
        bias: Tensor::randn(&[cout], seed + 2),
        grad_output: Tensor::randn(&[n, cout, h, w], seed + 3),
        cfg,
        map,
    })
}

fn forward_of(case: &Case, kind: BackendKind) -> Tensor {
    kind.backend().forward(
        &case.cfg,
        &case.map,
        &case.input,
        &case.weight,
        Some(&case.bias),
        None,
    )
}

fn backward_of(case: &Case, kind: BackendKind) -> SccGradients {
    kind.backend().backward(
        &case.cfg,
        &case.map,
        &case.input,
        &case.weight,
        &case.grad_output,
        None,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward parity: blocked == naive == scalar reference, TEST_TOLERANCE.
    #[test]
    fn prop_forward_parity(
        cg in prop::sample::select(vec![1usize, 2, 4, 8]),
        cin_mult in 1usize..4,
        cout in 1usize..24,
        co in prop::sample::select(vec![0.0f64, 0.25, 0.33, 0.5, 0.75]),
        n in 1usize..3,
        h in 1usize..8,
        w in 1usize..8,
        seed in 0u64..1000,
    ) {
        let Some(case) = build_case(cg, cin_mult, cout, co, n, h, w, seed) else {
            return Ok(()); // degenerate (cg, co) combination
        };
        let naive = forward_of(&case, BackendKind::Naive);
        let blocked = forward_of(&case, BackendKind::Blocked);
        let reference =
            scc_forward_reference(&case.cfg, &case.input, &case.weight, Some(&case.bias));
        prop_assert!(
            allclose(&blocked, &naive, TEST_TOLERANCE),
            "blocked != naive for {:?} {h}x{w}", case.cfg
        );
        prop_assert!(
            allclose(&blocked, &reference, TEST_TOLERANCE),
            "blocked != reference for {:?} {h}x{w}", case.cfg
        );
    }

    /// Backward parity: all three gradients agree across backends and with
    /// the scalar reference, TEST_TOLERANCE.
    #[test]
    fn prop_backward_parity(
        cg in prop::sample::select(vec![1usize, 2, 4, 8]),
        cin_mult in 1usize..3,
        cout in 1usize..16,
        co in prop::sample::select(vec![0.0f64, 0.25, 0.33, 0.5, 0.75]),
        h in 1usize..7,
        w in 1usize..7,
        seed in 0u64..1000,
    ) {
        let Some(case) = build_case(cg, cin_mult, cout, co, 1, h, w, seed) else {
            return Ok(());
        };
        let naive = backward_of(&case, BackendKind::Naive);
        let blocked = backward_of(&case, BackendKind::Blocked);
        let (ref_gi, ref_gw, ref_gb) =
            scc_backward_reference(&case.cfg, &case.input, &case.weight, &case.grad_output);
        prop_assert!(allclose(&blocked.grad_input, &naive.grad_input, TEST_TOLERANCE));
        prop_assert!(allclose(&blocked.grad_weight, &naive.grad_weight, TEST_TOLERANCE));
        prop_assert!(allclose(&blocked.grad_bias, &naive.grad_bias, TEST_TOLERANCE));
        prop_assert!(allclose(&blocked.grad_input, &ref_gi, TEST_TOLERANCE));
        prop_assert!(allclose(&blocked.grad_weight, &ref_gw, TEST_TOLERANCE));
        prop_assert!(allclose(&blocked.grad_bias, &ref_gb, TEST_TOLERANCE));
    }
}

/// Deterministic sweep of the exact grid the issue names, including plane
/// sizes straddling the tile width on both sides.
#[test]
fn parity_grid_over_cg_co_and_ragged_planes() {
    let spatial = [
        (1usize, 1usize),
        (1, LANES - 1),
        (1, LANES),
        (3, 5),
        (5, 7),
        (4, LANES),
    ];
    for cg in [1usize, 2, 4, 8] {
        for co in [0.0f64, 0.25, 0.33, 0.5, 0.75] {
            let cin = cg * 2;
            let cout = cin + 2; // not a multiple of most cycle lengths
            let Ok(cfg) = SccConfig::new(cin, cout, cg, co) else {
                continue;
            };
            let map = ChannelCycleMap::build(&cfg);
            for (h, w) in spatial {
                let input = Tensor::randn(&[2, cin, h, w], 77);
                let weight = Tensor::randn(&[cout, cfg.group_width()], 78);
                let grad_out = Tensor::randn(&[2, cout, h, w], 79);
                let naive_f = BackendKind::Naive
                    .backend()
                    .forward(&cfg, &map, &input, &weight, None, None);
                let blocked_f = BackendKind::Blocked
                    .backend()
                    .forward(&cfg, &map, &input, &weight, None, None);
                assert!(
                    allclose(&blocked_f, &naive_f, TEST_TOLERANCE),
                    "forward parity fails for cg={cg} co={co} {h}x{w}"
                );
                let naive_b = BackendKind::Naive
                    .backend()
                    .backward(&cfg, &map, &input, &weight, &grad_out, None);
                let blocked_b = BackendKind::Blocked
                    .backend()
                    .backward(&cfg, &map, &input, &weight, &grad_out, None);
                for (got, want, name) in [
                    (&blocked_b.grad_input, &naive_b.grad_input, "grad_input"),
                    (&blocked_b.grad_weight, &naive_b.grad_weight, "grad_weight"),
                    (&blocked_b.grad_bias, &naive_b.grad_bias, "grad_bias"),
                ] {
                    assert!(
                        allclose(got, want, TEST_TOLERANCE),
                        "{name} parity fails for cg={cg} co={co} {h}x{w}"
                    );
                }
            }
        }
    }
}
