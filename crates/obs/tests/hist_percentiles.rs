//! Property test pinning `dsx_obs::Histogram` percentile estimates
//! against exact sorted-sample percentiles.
//!
//! The estimator's contract (see `Histogram::percentile`): the estimate
//! lands in the *same log bucket* as the exact nearest-rank sample (so its
//! absolute error is below that bucket's width, ~19–25% relative), never
//! exceeds the observed maximum, is exact for sub-16 values, and is
//! monotone in `q`.

use dsx_obs::hist::{bucket_floor, bucket_index, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

/// Deterministic sample generator (splitmix64) so each proptest case is
/// reproducible from its seed.
fn samples(seed: u64, len: usize, scale_bits: u32) -> Vec<u64> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out.push(z >> (64 - scale_bits.clamp(1, 63)));
    }
    out
}

/// Exact nearest-rank percentile using the *same* rank formula as the
/// histogram estimator: rank = ceil(q * n) clamped to [1, n].
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Width of the bucket holding `value` (the estimator's error bound).
fn bucket_width(value: u64) -> u64 {
    let idx = bucket_index(value);
    if idx + 1 < HIST_BUCKETS {
        bucket_floor(idx + 1) - bucket_floor(idx)
    } else {
        u64::MAX - bucket_floor(idx)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentile_estimates_stay_within_one_bucket_of_exact(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        scale_bits in 3u32..40,
    ) {
        let mut values = samples(seed, len, scale_bits);
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let max = *values.last().unwrap();
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.max(), max);

        let qs = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];
        let mut previous = 0u64;
        for &q in &qs {
            let estimate = hist.percentile(q);
            let exact = exact_percentile(&values, q);

            // Same log bucket as the exact sample → error < bucket width.
            prop_assert!(
                bucket_index(estimate) == bucket_index(exact),
                "q={} estimate={} exact={} land in different buckets",
                q,
                estimate,
                exact
            );
            prop_assert!(
                estimate.abs_diff(exact) < bucket_width(exact).max(1),
                "q={} estimate={} exact={} width={}",
                q,
                estimate,
                exact,
                bucket_width(exact)
            );
            // Never above the observed maximum, and monotone in q.
            prop_assert!(estimate <= max);
            prop_assert!(estimate >= previous, "q={} {} < {}", q, estimate, previous);
            previous = estimate;
        }
    }

    #[test]
    fn sub_16_percentiles_are_exact(
        seed in 0u64..1_000_000,
        len in 1usize..200,
    ) {
        // scale_bits = 4 keeps every sample below 16, where each value has
        // its own bucket and the estimator must reproduce the exact
        // nearest-rank percentile.
        let mut values = samples(seed, len, 4);
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(hist.percentile(q), exact_percentile(&values, q));
        }
    }
}
