//! Golden-schema test: an exported trace file must be valid Chrome
//! trace-event JSON with well-formed `ph` / `ts` / `dur` / `tid` fields.
//!
//! The validator is a minimal recursive-descent JSON parser (the workspace
//! is dependency-free by design), so this test fails on any malformed
//! escaping or structure, not just on missing substrings.

use dsx_obs::trace;

// ---------------------------------------------------------------------
// Minimal JSON parser. Supports exactly what the trace writer can emit:
// objects, arrays, strings with \" \\ \uXXXX escapes, numbers, booleans.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn parse(text: &str) -> Json {
    let mut parser = Parser::new(text);
    let value = parser.value().expect("trace JSON must parse");
    parser.skip_ws();
    assert_eq!(parser.pos, parser.bytes.len(), "trailing bytes after JSON");
    value
}

// ---------------------------------------------------------------------
// The golden-schema assertions.
// ---------------------------------------------------------------------

#[test]
fn exported_trace_file_is_well_formed_chrome_trace_json() {
    trace::enable(true);
    {
        let _outer = trace::span_arg("schema", "schema.outer", "n", 3);
        let _inner = trace::span("schema", "schema.inner\"quoted\\name");
        trace::instant("schema", "schema.marker");
    }
    let worker = std::thread::Builder::new()
        .name("schema-worker".to_owned())
        .spawn(|| {
            let _g = trace::span("schema", "schema.worker");
        })
        .unwrap();
    worker.join().unwrap();
    trace::enable(false);

    let path = std::env::temp_dir().join(format!("dsx-obs-schema-{}.json", std::process::id()));
    let exported = trace::export_chrome_trace(&path).expect("export succeeds");
    assert!(exported >= 4, "expected >= 4 events, exported {exported}");

    let text = std::fs::read_to_string(&path).unwrap();
    let doc = parse(&text);
    let events = match doc.get("traceEvents") {
        Some(Json::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());

    let mut span_events = 0usize;
    let mut seen_tids = std::collections::BTreeSet::new();
    for event in events {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a string ph");
        assert!(
            matches!(ph, "M" | "X" | "i"),
            "unexpected phase {ph:?} in {event:?}"
        );
        let tid = event
            .get("tid")
            .and_then(Json::as_num)
            .expect("every event has a numeric tid");
        assert!(
            tid >= 1.0 && tid.fract() == 0.0,
            "tid {tid} must be a positive integer"
        );
        assert!(
            event.get("pid").and_then(Json::as_num).is_some(),
            "every event has a numeric pid"
        );
        match ph {
            "M" => {
                assert_eq!(
                    event.get("name").and_then(Json::as_str),
                    Some("thread_name")
                );
                assert!(event.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" => {
                span_events += 1;
                seen_tids.insert(tid as u64);
                let ts = event.get("ts").and_then(Json::as_num).expect("ts");
                let dur = event.get("dur").and_then(Json::as_num).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                assert!(!event
                    .get("name")
                    .and_then(Json::as_str)
                    .expect("name")
                    .is_empty());
                assert!(!event
                    .get("cat")
                    .and_then(Json::as_str)
                    .expect("cat")
                    .is_empty());
            }
            _ => {
                // Instant events carry a scope and a timestamp.
                assert_eq!(event.get("s").and_then(Json::as_str), Some("t"));
                assert!(event.get("ts").and_then(Json::as_num).is_some());
            }
        }
    }
    assert!(
        span_events >= 3,
        "expected >= 3 X events, got {span_events}"
    );
    assert!(
        seen_tids.len() >= 2,
        "spans from two threads must carry distinct tids: {seen_tids:?}"
    );

    // The escaped name round-trips through export + parse.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"schema.inner\"quoted\\name"), "{names:?}");

    // The span argument survives as a numeric args field.
    let outer = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("schema.outer"))
        .expect("outer span present");
    assert_eq!(
        outer
            .get("args")
            .and_then(|a| a.get("n"))
            .and_then(Json::as_num),
        Some(3.0)
    );

    std::fs::remove_file(&path).ok();
}
