//! Per-thread lock-free span/event recording, exported as Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`).
//!
//! # Design
//!
//! Recording is **off by default** and gated on one relaxed atomic load:
//! a [`span`] call while disabled is a load, a branch and a `None` — cheap
//! enough to sit inside GEMM entry points and the pool's job loop
//! unconditionally, with no feature flags or rebuilds to turn tracing on.
//!
//! When enabled, each thread appends finished spans to its own
//! fixed-capacity buffer of write-once slots (`OnceLock<TraceEvent>`),
//! registered once in a process-global list. The owning thread is the only
//! writer (a plain head index it alone advances), readers walk the
//! write-once slots, and a full buffer *drops* new events (counting them)
//! instead of wrapping — so there is no writer/reader race on slot reuse
//! and no `unsafe` anywhere in the crate. Buffers are never reset: the
//! binaries enable once at startup and export once at exit.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Per-thread event capacity. At ~64 bytes a slot this is ~1 MiB per
/// recording thread; beyond it new events are dropped and counted (see
/// [`dropped_events`]), which a short smoke run never hits.
const RING_CAPACITY: usize = 16_384;

/// One finished span (`dur_ns` set) or instant event (`dur_ns` `None`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Category, e.g. `pool`, `gemm`, `layer`, `serve`, `net`.
    pub cat: &'static str,
    /// Event name, e.g. `pool.run` or an interned layer name.
    pub name: &'static str,
    /// Start time in nanoseconds since the trace epoch (first `enable`).
    pub ts_ns: u64,
    /// Span duration in nanoseconds; `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Stable per-thread id (dense, assigned at first record).
    pub tid: u64,
    /// Optional single numeric argument, rendered under `args` in the
    /// Chrome JSON (e.g. `("batch", 8)` or `("macs", 1234567)`).
    pub arg: Option<(&'static str, u64)>,
}

struct ThreadRing {
    tid: u64,
    thread_name: String,
    slots: Box<[OnceLock<TraceEvent>]>,
    /// Next free slot. Only the owning thread writes it.
    head: AtomicUsize,
    dropped: AtomicU64,
}

impl ThreadRing {
    fn push(&self, event: TraceEvent) {
        let idx = self.head.load(Ordering::Relaxed); // ORDER: single-writer head — only the owning thread stores it, and slot publication goes through OnceLock::set (release) / get (acquire)
        if idx < self.slots.len() {
            // Write-once slot: OnceLock::set publishes the event with
            // release semantics, so readers that see it via get() see it
            // fully initialised.
            let _ = self.slots[idx].set(event);
            self.head.store(idx + 1, Ordering::Relaxed); // ORDER: single-writer head (see load above)
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter — reports only
        }
    }
}

/// Master recording switch.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Trace time zero, set once by the first [`enable`] call.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Dense thread-id allocator for trace `tid`s.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Every thread that ever recorded, in registration order.
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
/// Interned dynamic names (layer names are `String`s; Chrome events want
/// `&'static str`). Leaked once per distinct name, deduplicated.
static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    static RING: Arc<ThreadRing> = register_thread();
}

/// Locks a registry mutex, recovering from poisoning: the lists only
/// ever grow and hold leaked/shared data that stays valid regardless of
/// what a panicking holder was doing.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn register_thread() -> Arc<ThreadRing> {
    let ring = Arc::new(ThreadRing {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed), // ORDER: unique-id allocator — only uniqueness matters, no other memory is guarded
        thread_name: std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_owned(),
        slots: (0..RING_CAPACITY).map(|_| OnceLock::new()).collect(),
        head: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
    });
    lock(&RINGS).push(Arc::clone(&ring));
    ring
}

/// Turns recording on or off. The first enable fixes the trace epoch
/// (`ts` zero). Spans already open when the flag flips still record on
/// drop; buffers are never cleared.
pub fn enable(on: bool) {
    if on {
        let _ = EPOCH.set(Instant::now());
    }
    ENABLED.store(on, Ordering::Relaxed); // ORDER: advisory flag — a stale read delays (or records one extra) span, it cannot break safety
}

/// Whether recording is currently on. Callers use this to skip *argument
/// construction* (e.g. formatting a layer name) on the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) // ORDER: advisory flag (see enable)
}

fn now_ns() -> u64 {
    // The epoch is set before ENABLED flips on, and spans only start when
    // enabled, so get() is always Some here; fall back to 0 defensively.
    EPOCH
        .get()
        .map(|epoch| Instant::now().duration_since(*epoch).as_nanos() as u64)
        .unwrap_or(0)
}

fn record(event: TraceEvent) {
    // try_with: recording from a thread mid-teardown (destructor order)
    // silently drops the event instead of panicking.
    let _ = RING.try_with(|ring| ring.push(event));
}

/// An RAII span: construction (via [`span`] and friends) takes the start
/// timestamp, drop records the finished event. When tracing is disabled
/// the guard is empty and drop is a no-op.
#[must_use = "a span measures the scope it lives in; dropping it immediately records a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    cat: &'static str,
    name: &'static str,
    arg: Option<(&'static str, u64)>,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let end_ns = now_ns();
            record(TraceEvent {
                cat: open.cat,
                name: open.name,
                ts_ns: open.start_ns,
                dur_ns: Some(end_ns.saturating_sub(open.start_ns)),
                tid: 0, // overwritten with the ring's tid at collection time
                arg: open.arg,
            });
        }
    }
}

/// Starts a span in category `cat` named `name`. One relaxed load + branch
/// when tracing is disabled.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_inner(cat, name, None)
}

/// Starts a span carrying one numeric argument (rendered under `args` in
/// the exported JSON).
#[inline]
pub fn span_arg(cat: &'static str, name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    span_inner(cat, name, Some((key, value)))
}

/// Starts a span whose name is computed (and interned) only when tracing
/// is enabled — for dynamic names like layer labels, where even the
/// `String` construction must stay off the disabled path.
#[inline]
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    span_inner(cat, intern(&name()), None)
}

fn span_inner(
    cat: &'static str,
    name: &'static str,
    arg: Option<(&'static str, u64)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    SpanGuard {
        open: Some(OpenSpan {
            cat,
            name,
            arg,
            start_ns: now_ns(),
        }),
    }
}

/// Records an instant event (Chrome `ph:"i"`, thread scope).
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        cat,
        name,
        ts_ns: now_ns(),
        dur_ns: None,
        tid: 0,
        arg: None,
    });
}

/// Interns a dynamic name, returning a `&'static str` (leaked once per
/// distinct name; the table is tiny — layer labels and the like).
pub fn intern(name: &str) -> &'static str {
    let mut table = lock(&INTERNED);
    if let Some(existing) = table.iter().find(|s| **s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

/// All events recorded so far, across every thread, sorted by start time.
/// The per-event `tid` is the recording thread's dense trace id.
pub fn collected_events() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = lock(&RINGS).clone();
    let mut events = Vec::new();
    for ring in &rings {
        for slot in ring.slots.iter() {
            match slot.get() {
                Some(event) => events.push(TraceEvent {
                    tid: ring.tid,
                    ..event.clone()
                }),
                None => break,
            }
        }
    }
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// Events dropped because a thread's buffer filled up.
pub fn dropped_events() -> u64 {
    lock(&RINGS)
        .iter()
        .map(|ring| ring.dropped.load(Ordering::Relaxed)) // ORDER: racy-tolerant counter — reports only
        .sum()
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_us(ns: u64, out: &mut String) {
    // Chrome trace timestamps are microseconds; keep nanosecond precision
    // as a decimal fraction.
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Renders every recorded event as a Chrome trace-event JSON document
/// (`{"traceEvents":[...]}`), including one `thread_name` metadata record
/// per recording thread.
pub fn chrome_trace_json() -> String {
    let pid = std::process::id();
    let rings: Vec<Arc<ThreadRing>> = lock(&RINGS).clone();
    let events = collected_events();
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for ring in &rings {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            ring.tid
        ));
        escape_json(&ring.thread_name, &mut out);
        out.push_str("\"}}");
    }
    for event in &events {
        if !first {
            out.push(',');
        }
        first = false;
        let ph = if event.dur_ns.is_some() { "X" } else { "i" };
        out.push_str(&format!(
            "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{},\"ts\":",
            event.tid
        ));
        push_us(event.ts_ns, &mut out);
        if let Some(dur_ns) = event.dur_ns {
            out.push_str(",\"dur\":");
            push_us(dur_ns, &mut out);
        } else {
            // Instant events need an explicit scope; "t" = thread.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"cat\":\"");
        escape_json(event.cat, &mut out);
        out.push_str("\",\"name\":\"");
        escape_json(event.name, &mut out);
        out.push('"');
        if let Some((key, value)) = event.arg {
            out.push_str(",\"args\":{\"");
            escape_json(key, &mut out);
            out.push_str(&format!("\":{value}}}"));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`, returning the number of span /
/// instant events exported (metadata records excluded).
pub fn export_chrome_trace(path: &Path) -> io::Result<usize> {
    let count = collected_events().len();
    let json = chrome_trace_json();
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())?;
    file.flush()?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in this binary share the global recorder; each test uses
    // unique event names and only makes additive assertions.

    #[test]
    fn disabled_spans_record_nothing() {
        enable(false);
        {
            let _g = span("test", "test.disabled.span");
            instant("test", "test.disabled.instant");
        }
        let names: Vec<&str> = collected_events().iter().map(|e| e.name).collect();
        assert!(!names.contains(&"test.disabled.span"));
        assert!(!names.contains(&"test.disabled.instant"));
    }

    #[test]
    fn enabled_spans_record_with_duration_and_tid() {
        enable(true);
        {
            let _g = span_arg("test", "test.enabled.span", "n", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        instant("test", "test.enabled.instant");
        enable(false);

        let events = collected_events();
        let span_ev = events
            .iter()
            .find(|e| e.name == "test.enabled.span")
            .expect("span recorded");
        assert_eq!(span_ev.cat, "test");
        assert!(span_ev.dur_ns.unwrap() >= 1_000_000, "{:?}", span_ev.dur_ns);
        assert!(span_ev.tid > 0);
        assert_eq!(span_ev.arg, Some(("n", 7)));
        let inst = events
            .iter()
            .find(|e| e.name == "test.enabled.instant")
            .expect("instant recorded");
        assert_eq!(inst.dur_ns, None);
    }

    #[test]
    fn span_with_skips_name_construction_when_disabled() {
        enable(false);
        let _g = span_with("test", || {
            // lint: allow(panic) — test: must not run while disabled
            panic!("name closure ran on the disabled path")
        });
    }

    #[test]
    fn interning_deduplicates() {
        let a = intern("test.intern.layer-0");
        let b = intern("test.intern.layer-0");
        assert!(std::ptr::eq(a, b));
        let c = intern("test.intern.layer-1");
        assert_ne!(a, c);
    }

    #[test]
    fn spans_from_spawned_threads_get_distinct_tids() {
        enable(true);
        let handle = std::thread::Builder::new()
            .name("obs-test-worker".to_owned())
            .spawn(|| {
                let _g = span("test", "test.threaded.span");
            })
            .unwrap();
        handle.join().unwrap();
        let _g = span("test", "test.main.span");
        drop(_g);
        enable(false);

        let events = collected_events();
        let worker = events
            .iter()
            .find(|e| e.name == "test.threaded.span")
            .expect("worker span recorded");
        let main = events
            .iter()
            .find(|e| e.name == "test.main.span")
            .expect("main span recorded");
        assert_ne!(worker.tid, main.tid);
        // The worker thread's name shows up as a thread_name metadata
        // record in the JSON.
        assert!(chrome_trace_json().contains("obs-test-worker"));
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn events_are_sorted_by_start_time() {
        enable(true);
        for _ in 0..3 {
            let _g = span("test", "test.sorted.span");
        }
        enable(false);
        let events = collected_events();
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
