//! End-to-end observability for the DSXplore runtime.
//!
//! Three pieces, all dependency-free so every crate in the workspace
//! (including `dsx-tensor`'s thread pool, the bottom of the graph) can
//! record into them:
//!
//! - [`Histogram`]: the 256-bucket log-spaced latency histogram with
//!   sub-bucket interpolated percentiles, promoted out of
//!   `dsx_serve::stats` so serve, netload and pool stats share one tested
//!   implementation.
//! - [`metrics`]: a process-global registry of named [`Counter`]s,
//!   [`Gauge`]s and histograms, snapshotted into a flat, wire-serializable
//!   [`MetricsSnapshot`] (the payload of the DSXN `Stats` frame).
//! - [`trace`]: per-thread lock-free span/event buffers behind a
//!   relaxed-atomic enable flag, exported as Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`).
//!
//! The hot-path contract: when tracing is disabled (the default), a span
//! call is one relaxed atomic load and a branch — cheap enough to leave in
//! GEMM inner entry points and the pool's job loop unconditionally.

#![forbid(unsafe_code)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::Histogram;
pub use metrics::{
    counter, gauge, snapshot, Counter, Gauge, MetricEntry, MetricsSnapshot, SnapshotDecodeError,
};
pub use trace::{
    enable, enabled, export_chrome_trace, instant, span, span_arg, span_with, SpanGuard, TraceEvent,
};
