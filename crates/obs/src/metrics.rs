//! A process-global registry of named counters, gauges and histograms,
//! and the flat wire-serializable snapshot the DSXN `Stats` frame carries.
//!
//! Handles are registered lazily by name and leaked (`&'static`), so hot
//! paths cache them in a `OnceLock` and pay one relaxed atomic increment
//! per event — no lock, no lookup. The registry lock is only taken at
//! registration and snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::hist::Histogram;

/// A monotonically increasing counter.
///
/// **Memory ordering.** Counters are racy-tolerant by design: nothing
/// guards other memory on their value and readers only produce reports,
/// so every access is `Relaxed` (each `// ORDER:` tag points here).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }
}

/// A last-write-wins gauge (same relaxed-ordering argument as [`Counter`]).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed); // ORDER: racy-tolerant counter (see Counter doc)
    }

    /// Keeps the maximum of the current and given value.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed); // ORDER: racy-tolerant counter (see Counter doc)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see Counter doc)
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Name → metric table. A linear-scan `Vec` is deliberate: registration
/// happens once per call site (hot paths cache the returned `&'static`
/// handle in a `OnceLock`), and snapshots walk the whole table anyway.
static REGISTRY: Mutex<Vec<(&'static str, Metric)>> = Mutex::new(Vec::new());

/// Locks the registry, recovering from a poisoned lock: the table holds
/// only leaked references, which stay valid whatever a panicking holder
/// was doing.
fn registry() -> MutexGuard<'static, Vec<(&'static str, Metric)>> {
    match REGISTRY.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Returns the process-global counter registered under `name`, creating
/// (and leaking) it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry();
    for (n, m) in reg.iter() {
        if *n == name {
            match m {
                Metric::Counter(c) => return c,
                // lint: allow(panic) — contract: a metric name maps to one kind
                _ => panic!("metric {name:?} already registered as a non-counter"),
            }
        }
    }
    let handle: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.push((name, Metric::Counter(handle)));
    handle
}

/// Returns the process-global gauge registered under `name`, creating
/// (and leaking) it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry();
    for (n, m) in reg.iter() {
        if *n == name {
            match m {
                Metric::Gauge(g) => return g,
                // lint: allow(panic) — contract: a metric name maps to one kind
                _ => panic!("metric {name:?} already registered as a non-gauge"),
            }
        }
    }
    let handle: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.push((name, Metric::Gauge(handle)));
    handle
}

/// Returns the process-global histogram registered under `name`, creating
/// (and leaking) it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry();
    for (n, m) in reg.iter() {
        if *n == name {
            match m {
                Metric::Histogram(h) => return h,
                // lint: allow(panic) — contract: a metric name maps to one kind
                _ => panic!("metric {name:?} already registered as a non-histogram"),
            }
        }
    }
    let handle: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.push((name, Metric::Histogram(handle)));
    handle
}

/// One `name = value` pair in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Dotted metric name, e.g. `pool.steals` or `serve.latency.p99_us`.
    pub name: String,
    /// The value at snapshot time.
    pub value: u64,
}

/// A flat, point-in-time dump of every registered metric, sorted by name.
///
/// Histograms expand into `.count`, `.mean`, `.p50`, `.p95`, `.p99` and
/// `.max` entries so the wire format stays a plain `(name, u64)` list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The entries, sorted by name.
    pub entries: Vec<MetricEntry>,
}

/// Decode cap on the entry count: a snapshot bigger than this is
/// hostile, not real.
pub const MAX_SNAPSHOT_ENTRIES: u32 = 65_536;
/// Decode cap on a single metric name's byte length.
pub const MAX_NAME_LEN: u16 = 512;

/// Why [`MetricsSnapshot::decode`] rejected a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The payload ended before the declared entries did.
    Truncated,
    /// The declared entry count exceeds [`MAX_SNAPSHOT_ENTRIES`].
    TooManyEntries(u32),
    /// A name length exceeds [`MAX_NAME_LEN`].
    NameTooLong(u16),
    /// A name was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the declared entries.
    TrailingBytes(usize),
}

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDecodeError::Truncated => write!(f, "snapshot payload truncated"),
            SnapshotDecodeError::TooManyEntries(n) => {
                write!(
                    f,
                    "snapshot declares {n} entries (cap {MAX_SNAPSHOT_ENTRIES})"
                )
            }
            SnapshotDecodeError::NameTooLong(n) => {
                write!(f, "metric name of {n} bytes (cap {MAX_NAME_LEN})")
            }
            SnapshotDecodeError::BadUtf8 => write!(f, "metric name is not valid UTF-8"),
            SnapshotDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last entry")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

impl MetricsSnapshot {
    /// An empty snapshot (what a stats *request* carries on the wire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry (keeps insertion order; call [`sort`](Self::sort)
    /// after a batch of pushes if ordering matters).
    pub fn push(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push(MetricEntry {
            name: name.into(),
            value,
        });
    }

    /// Sorts entries by name (stable output for tests and diffing).
    pub fn sort(&mut self) {
        self.entries.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// The value recorded under `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// Serializes to the DSXN stats payload:
    /// `u32 LE count | (u16 LE name_len | name bytes | u64 LE value)*`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * 24);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for entry in &self.entries {
            let name = entry.name.as_bytes();
            // Names are program constants well under the cap; truncate
            // defensively rather than producing an undecodable payload.
            let len = name.len().min(MAX_NAME_LEN as usize);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&name[..len]);
            out.extend_from_slice(&entry.value.to_le_bytes());
        }
        out
    }

    /// Parses a payload produced by [`encode`](Self::encode), enforcing
    /// the entry-count and name-length caps against hostile inputs.
    pub fn decode(payload: &[u8]) -> Result<Self, SnapshotDecodeError> {
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotDecodeError> {
            if buf.len() < n {
                return Err(SnapshotDecodeError::Truncated);
            }
            let (head, tail) = buf.split_at(n);
            *buf = tail;
            Ok(head)
        }

        let mut buf = payload;
        let count_bytes: [u8; 4] = take(&mut buf, 4)?
            .try_into()
            .map_err(|_| SnapshotDecodeError::Truncated)?;
        let count = u32::from_le_bytes(count_bytes);
        if count > MAX_SNAPSHOT_ENTRIES {
            return Err(SnapshotDecodeError::TooManyEntries(count));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let len_bytes: [u8; 2] = take(&mut buf, 2)?
                .try_into()
                .map_err(|_| SnapshotDecodeError::Truncated)?;
            let name_len = u16::from_le_bytes(len_bytes);
            if name_len > MAX_NAME_LEN {
                return Err(SnapshotDecodeError::NameTooLong(name_len));
            }
            let name_bytes = take(&mut buf, name_len as usize)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| SnapshotDecodeError::BadUtf8)?
                .to_owned();
            let value_bytes: [u8; 8] = take(&mut buf, 8)?
                .try_into()
                .map_err(|_| SnapshotDecodeError::Truncated)?;
            entries.push(MetricEntry {
                name,
                value: u64::from_le_bytes(value_bytes),
            });
        }
        if !buf.is_empty() {
            return Err(SnapshotDecodeError::TrailingBytes(buf.len()));
        }
        Ok(MetricsSnapshot { entries })
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// One-line `name=value name=value ...` rendering (the `--stats-every`
    /// output format).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", entry.name, entry.value)?;
        }
        Ok(())
    }
}

/// Dumps every registered metric into a sorted [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    {
        let reg = registry();
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(c) => snap.push(*name, c.get()),
                Metric::Gauge(g) => snap.push(*name, g.get()),
                Metric::Histogram(h) => {
                    snap.push(format!("{name}.count"), h.count());
                    snap.push(format!("{name}.mean"), h.mean().round() as u64);
                    snap.push(format!("{name}.p50"), h.percentile(0.50));
                    snap.push(format!("{name}.p95"), h.percentile(0.95));
                    snap.push(format!("{name}.p99"), h.percentile(0.99));
                    snap.push(format!("{name}.max"), h.max());
                }
            }
        }
    }
    snap.sort();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let c = counter("test.metrics.hits");
        c.inc();
        c.add(4);
        // A second lookup returns the same leaked handle.
        assert_eq!(counter("test.metrics.hits").get(), 5);

        let g = gauge("test.metrics.depth");
        g.set(7);
        g.set_max(3); // lower — ignored
        g.set_max(11);
        assert_eq!(gauge("test.metrics.depth").get(), 11);

        let h = histogram("test.metrics.lat");
        h.record(40);
        assert_eq!(histogram("test.metrics.lat").count(), 1);

        let snap = snapshot();
        assert_eq!(snap.get("test.metrics.hits"), Some(5));
        assert_eq!(snap.get("test.metrics.depth"), Some(11));
        assert_eq!(snap.get("test.metrics.lat.count"), Some(1));
        assert_eq!(snap.get("test.metrics.lat.max"), Some(40));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        counter("test.sorted.zz").inc();
        counter("test.sorted.aa").inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn wire_round_trip_preserves_entries() {
        let mut snap = MetricsSnapshot::new();
        snap.push("pool.steals", 42);
        snap.push("serve.latency.p99", u64::MAX);
        snap.push("", 0); // empty names survive too
        let decoded = MetricsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn empty_snapshot_encodes_to_four_zero_bytes() {
        let snap = MetricsSnapshot::new();
        assert_eq!(snap.encode(), vec![0, 0, 0, 0]);
        assert_eq!(MetricsSnapshot::decode(&[0, 0, 0, 0]).unwrap(), snap);
    }

    #[test]
    fn hostile_payloads_are_rejected() {
        // Too short for the count.
        assert_eq!(
            MetricsSnapshot::decode(&[1, 0]),
            Err(SnapshotDecodeError::Truncated)
        );
        // Declares one entry, provides none.
        assert_eq!(
            MetricsSnapshot::decode(&[1, 0, 0, 0]),
            Err(SnapshotDecodeError::Truncated)
        );
        // Entry count above the cap.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            MetricsSnapshot::decode(&huge),
            Err(SnapshotDecodeError::TooManyEntries(u32::MAX))
        );
        // Name length above the cap.
        let mut long_name = Vec::new();
        long_name.extend_from_slice(&1u32.to_le_bytes());
        long_name.extend_from_slice(&1000u16.to_le_bytes());
        assert_eq!(
            MetricsSnapshot::decode(&long_name),
            Err(SnapshotDecodeError::NameTooLong(1000))
        );
        // Invalid UTF-8 name.
        let mut bad_utf8 = Vec::new();
        bad_utf8.extend_from_slice(&1u32.to_le_bytes());
        bad_utf8.extend_from_slice(&2u16.to_le_bytes());
        bad_utf8.extend_from_slice(&[0xff, 0xfe]);
        bad_utf8.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            MetricsSnapshot::decode(&bad_utf8),
            Err(SnapshotDecodeError::BadUtf8)
        );
        // Trailing garbage after a valid body.
        let mut trailing = MetricsSnapshot::new().encode();
        trailing.push(0xab);
        assert_eq!(
            MetricsSnapshot::decode(&trailing),
            Err(SnapshotDecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn display_renders_one_line() {
        let mut snap = MetricsSnapshot::new();
        snap.push("a", 1);
        snap.push("b", 2);
        assert_eq!(format!("{snap}"), "a=1 b=2");
        assert_eq!(format!("{}", MetricsSnapshot::new()), "");
    }
}
